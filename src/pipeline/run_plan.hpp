// Declarative description of one end-to-end DSspy job.
//
// The paper's Figure 4 draws DSspy as a single pipeline — instrumentation
// -> runtime profile -> pattern detection -> use-case classification ->
// recommendation.  A RunPlan is that pipeline as data: what to profile (an
// evaluation app, a recorded trace, or a corpus program), how to capture
// it, which analysis engine to run, and which outputs to emit.  The
// PipelineRunner (runner.hpp) executes a plan; the CLI is a thin parser
// that builds plans, and the batch driver (batch.hpp) executes many of
// them concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/detector_config.hpp"
#include "core/dsspy.hpp"
#include "core/incremental.hpp"
#include "runtime/session.hpp"
#include "runtime/trace_io.hpp"
#include "runtime/trace_mmap.hpp"

namespace dsspy::pipeline {

/// Where the job's events come from.
enum class InputKind {
    App,            ///< One of the seven evaluation apps, run instrumented.
    TraceFile,      ///< A recorded trace (CSV or DST1, auto-detected).
    CorpusProgram,  ///< An empirical-study workload replay.
};

/// Which analysis engine executes the plan.
enum class EngineChoice {
    Auto,        ///< Postmortem for live runs; streaming for plain trace reads.
    Postmortem,  ///< Materialize every event, analyze the finalized store.
    Incremental, ///< Fold events as they arrive; memory stays bounded.
};

/// The self-telemetry document printed to stdout when the job finishes.
enum class MetricsDoc {
    None,        ///< No metrics document on stdout.
    Prometheus,  ///< Prometheus text exposition format.
    Json,        ///< The JSON metrics document.
};

/// Which reports a job emits, in the fixed emission order: summary, report,
/// plan, advice, json, csv-usecases, csv-instances, csv-patterns, html,
/// metrics.
struct OutputSelection {
    bool summary = false;        ///< One-line-per-instance table.
    bool report = false;         ///< Table V style use-case report.
    bool plan = false;           ///< Transformation plan.
    bool advice = false;         ///< Structured advice as JSON.
    bool json = false;           ///< Full analysis as JSON.
    bool csv_usecases = false;
    bool csv_instances = false;
    bool csv_patterns = false;
    std::string html_path;       ///< Self-contained HTML report file.
    MetricsDoc metrics_doc = MetricsDoc::None;
    std::string metrics_out;     ///< Metrics JSON snapshot file.
    /// Chrome trace-event / Perfetto JSON span-tree file
    /// (`--trace-spans-out`).  Written by the caller AFTER the run's root
    /// span closes — it is not a ReportSink because sinks run inside the
    /// run while the root span is still open.
    std::string trace_spans_out;

    /// Outputs only the post-mortem engine can produce (they need
    /// materialized per-pattern data or the full event store).
    [[nodiscard]] bool needs_postmortem() const noexcept {
        return json || csv_patterns || plan || !html_path.empty();
    }

    /// True when at least one analysis output (not metrics) is requested.
    [[nodiscard]] bool any_analysis_output() const noexcept {
        return summary || report || plan || advice || json ||
               csv_usecases || csv_instances || csv_patterns ||
               !html_path.empty();
    }
};

/// How the runner narrates a trace re-emission on stderr.
enum class TraceNoteStyle {
    TraceNote,    ///< "Wrote trace to PATH" (run/corpus --trace).
    ConvertNote,  ///< "Wrote N events (fmt) to PATH" (dsspy convert).
};

/// One job, declaratively.  Field defaults reproduce `dsspy run <app>`.
struct RunPlan {
    InputKind input = InputKind::App;
    std::string target;  ///< App name | trace path | corpus program name.
    std::string label;   ///< Display name; defaults to `target` when empty.

    EngineChoice engine = EngineChoice::Auto;
    /// Run the workload with live incremental snapshots (App input only;
    /// forces the incremental engine).
    bool watch = false;
    int snapshot_interval_ms = 500;

    /// Re-emit the raw trace to this path (needs the post-mortem engine).
    std::string trace_out;
    std::optional<runtime::TraceFormat> trace_format;
    TraceNoteStyle trace_note = TraceNoteStyle::TraceNote;

    core::DetectorConfig config{};
    OutputSelection outputs{};

    [[nodiscard]] const std::string& display_name() const noexcept {
        return label.empty() ? target : label;
    }

    /// The engine the runner will actually use for this plan.
    [[nodiscard]] EngineChoice resolved_engine() const noexcept {
        if (watch) return EngineChoice::Incremental;
        if (engine != EngineChoice::Auto) return engine;
        if (input == InputKind::TraceFile)
            return outputs.needs_postmortem() || !trace_out.empty()
                       ? EngineChoice::Postmortem
                       : EngineChoice::Incremental;
        return EngineChoice::Postmortem;
    }
};

/// Process exit conventions shared by the runner and the CLI: usage and
/// plan-validation errors exit 2, runtime failures exit 1.
inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntimeError = 1;
inline constexpr int kExitUsageError = 2;

/// Typed result of executing one RunPlan.  Exactly one of `analysis` /
/// `stream` is engaged on success (postmortem vs incremental engine); the
/// outcome owns the session/trace backing them, because an AnalysisResult
/// holds spans into its session's ProfileStore.
struct RunOutcome {
    int exit_code = kExitOk;
    std::string label;       ///< The plan's display name.
    std::string error;       ///< Diagnostic when exit_code != 0.

    bool has_checksum = false;
    double checksum = 0.0;        ///< Workload checksum (App input).
    std::uint64_t events = 0;     ///< Events analyzed (or converted).
    std::size_t orphan_events = 0;
    std::uint64_t wall_ns = 0;    ///< Wall-clock of the whole job.

    std::optional<core::AnalysisResult> analysis;  ///< Post-mortem result.
    std::optional<core::StreamReport> stream;      ///< Incremental result.

    /// Backing storage for `analysis` (live runs / trace loads).  Binary
    /// traces analyzed without event-level outputs load as columns only
    /// (`column_trace`, DESIGN.md §11); everything else fills `trace` or
    /// `session`.
    std::unique_ptr<runtime::ProfilingSession> session;
    std::unique_ptr<runtime::Trace> trace;
    std::unique_ptr<runtime::ColumnTrace> column_trace;

    [[nodiscard]] bool ok() const noexcept { return exit_code == kExitOk; }
};

}  // namespace dsspy::pipeline
