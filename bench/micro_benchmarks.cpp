// Micro benchmarks (google-benchmark): instrumentation overhead per
// operation, event-channel throughput, analysis throughput, and the
// parallel primitives behind the recommended actions.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/dsspy.hpp"
#include "ds/ds.hpp"
#include "parallel/algorithms.hpp"
#include "runtime/session.hpp"
#include "runtime/spsc_ring.hpp"
#include "support/rng.hpp"

namespace {

using namespace dsspy;

// --- instrumentation overhead ----------------------------------------------

void BM_ListAdd_Plain(benchmark::State& state) {
    for (auto _ : state) {
        ds::List<std::int64_t> list;
        for (int i = 0; i < 1024; ++i) list.add(i);
        benchmark::DoNotOptimize(list.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ListAdd_Plain);

void BM_ListAdd_ProfiledNullSession(benchmark::State& state) {
    for (auto _ : state) {
        ds::ProfiledList<std::int64_t> list(nullptr, {"B", "M", 1});
        for (int i = 0; i < 1024; ++i) list.add(i);
        benchmark::DoNotOptimize(list.raw().data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ListAdd_ProfiledNullSession);

void BM_ListAdd_Buffered(benchmark::State& state) {
    runtime::ProfilingSession session(runtime::CaptureMode::Buffered);
    for (auto _ : state) {
        ds::ProfiledList<std::int64_t> list(&session, {"B", "M", 1});
        for (int i = 0; i < 1024; ++i) list.add(i);
        benchmark::DoNotOptimize(list.raw().data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ListAdd_Buffered);

void BM_ListAdd_Streaming(benchmark::State& state) {
    runtime::ProfilingSession session(runtime::CaptureMode::Streaming);
    for (auto _ : state) {
        ds::ProfiledList<std::int64_t> list(&session, {"B", "M", 1});
        for (int i = 0; i < 1024; ++i) list.add(i);
        benchmark::DoNotOptimize(list.raw().data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ListAdd_Streaming);

// Raw record() hot path, without the container proxy around it.
void BM_Record_Buffered(benchmark::State& state) {
    runtime::ProfilingSession session(runtime::CaptureMode::Buffered);
    const runtime::InstanceId id = session.register_instance(
        runtime::DsKind::List, "List<Int64>", {"B", "M", 1});
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            session.record(id, runtime::OpKind::Add, i,
                           static_cast<std::uint32_t>(i + 1));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Record_Buffered);

void BM_Record_Streaming(benchmark::State& state) {
    runtime::ProfilingSession session(runtime::CaptureMode::Streaming);
    const runtime::InstanceId id = session.register_instance(
        runtime::DsKind::List, "List<Int64>", {"B", "M", 1});
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            session.record(id, runtime::OpKind::Add, i,
                           static_cast<std::uint32_t>(i + 1));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Record_Streaming);

void BM_ListGet_Buffered(benchmark::State& state) {
    runtime::ProfilingSession session(runtime::CaptureMode::Buffered);
    ds::ProfiledList<std::int64_t> list(&session, {"B", "M", 1});
    for (int i = 0; i < 1024; ++i) list.add(i);
    for (auto _ : state) {
        std::int64_t sum = 0;
        for (std::size_t i = 0; i < list.count(); ++i) sum += list.get(i);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ListGet_Buffered);

// --- event channel ----------------------------------------------------------

void BM_SpscRing_PushPop(benchmark::State& state) {
    runtime::SpscRing<runtime::AccessEvent> ring(4096);
    runtime::AccessEvent ev;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i) {
            ev.seq = static_cast<std::uint64_t>(i);
            benchmark::DoNotOptimize(ring.try_push(ev));
        }
        std::array<runtime::AccessEvent, 256> batch;
        std::size_t drained = 0;
        while (drained < 1024) drained += ring.pop_into(batch);
        benchmark::DoNotOptimize(drained);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SpscRing_PushPop);

// --- analysis throughput -----------------------------------------------------

void BM_PatternDetection(benchmark::State& state) {
    const auto n = static_cast<int>(state.range(0));
    runtime::ProfilingSession session;
    runtime::InstanceId id;
    {
        ds::ProfiledList<int> list(&session, {"B", "M", 1});
        for (int round = 0; round < 4; ++round) {
            for (int i = 0; i < n / 8; ++i) list.add(i);
            for (std::size_t i = 0; i < list.count(); ++i)
                benchmark::DoNotOptimize(list.get(i));
            list.clear();
        }
        id = list.instance_id();
    }
    session.stop();
    const core::RuntimeProfile profile(session.registry().info(id),
                                       session.store().events(id));
    const core::PatternDetector detector;
    for (auto _ : state) {
        auto patterns = detector.detect(profile);
        benchmark::DoNotOptimize(patterns.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(profile.total_events()));
}
BENCHMARK(BM_PatternDetection)->Arg(1 << 12)->Arg(1 << 16);

void BM_FullAnalysis(benchmark::State& state) {
    runtime::ProfilingSession session;
    {
        for (int inst = 0; inst < 16; ++inst) {
            ds::ProfiledList<int> list(
                &session, {"B", "M", static_cast<std::uint32_t>(inst)});
            for (int i = 0; i < 2000; ++i) list.add(i);
            for (std::size_t i = 0; i < list.count(); ++i)
                benchmark::DoNotOptimize(list.get(i));
        }
    }
    session.stop();
    const core::Dsspy analyzer;
    for (auto _ : state) {
        auto result = analyzer.analyze(session);
        benchmark::DoNotOptimize(result.total_instances());
    }
}
BENCHMARK(BM_FullAnalysis);

// Parallel post-mortem analysis over a shared session; Arg = pool threads
// (0 = sequential baseline).
void BM_FullAnalysis_Pool(benchmark::State& state) {
    static runtime::ProfilingSession* session = [] {
        auto* s = new runtime::ProfilingSession();
        for (int inst = 0; inst < 64; ++inst) {
            ds::ProfiledList<int> list(
                s, {"B", "M", static_cast<std::uint32_t>(inst)});
            for (int i = 0; i < 2000; ++i) list.add(i);
            for (std::size_t i = 0; i < list.count(); ++i)
                benchmark::DoNotOptimize(list.get(i));
        }
        s->stop();
        return s;
    }();
    const core::Dsspy analyzer;
    const auto threads = static_cast<unsigned>(state.range(0));
    std::unique_ptr<par::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<par::ThreadPool>(threads);
    for (auto _ : state) {
        auto result = analyzer.analyze(*session, pool.get());
        benchmark::DoNotOptimize(result.total_instances());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(session->store().total_events()));
}
BENCHMARK(BM_FullAnalysis_Pool)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

// --- parallel primitives (the recommended actions) ---------------------------

void BM_SequentialMaxScan(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<double> data(n);
    support::Rng rng(1);
    for (auto& v : data) v = rng.next_double();
    for (auto _ : state) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < data.size(); ++i)
            if (data[best] < data[i]) best = i;
        benchmark::DoNotOptimize(best);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SequentialMaxScan)->Arg(100'000)->Arg(1'000'000);

void BM_ParallelMaxIndex(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<double> data(n);
    support::Rng rng(1);
    for (auto& v : data) v = rng.next_double();
    par::ThreadPool& pool = par::ThreadPool::default_pool();
    for (auto _ : state) {
        benchmark::DoNotOptimize(par::parallel_max_index<double>(pool, data));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelMaxIndex)->Arg(100'000)->Arg(1'000'000);

void BM_SequentialSort(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    support::Rng rng(3);
    std::vector<std::int64_t> base(n);
    for (auto& v : base) v = static_cast<std::int64_t>(rng.next());
    for (auto _ : state) {
        state.PauseTiming();
        std::vector<std::int64_t> data = base;
        state.ResumeTiming();
        ds::detail::introsort(data.data(), data.data() + data.size());
        benchmark::DoNotOptimize(data.data());
    }
}
BENCHMARK(BM_SequentialSort)->Arg(1 << 18);

// --- data-structure choice (the Frequent-Search recommendation) -------------
// "it might be useful to change the data structure to one that is
// optimized for searches.  Binary trees might be better suited."

void BM_Search_ListIndexOf(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    ds::List<std::int64_t> list;
    for (std::size_t i = 0; i < n; ++i)
        list.add(static_cast<std::int64_t>(i) * 3);
    support::Rng rng(1);
    for (auto _ : state) {
        const auto needle =
            static_cast<std::int64_t>(rng.next_below(n)) * 3;
        benchmark::DoNotOptimize(list.index_of(needle));
    }
}
BENCHMARK(BM_Search_ListIndexOf)->Arg(1 << 10)->Arg(1 << 14);

void BM_Search_SortedListBinarySearch(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    ds::SortedList<std::int64_t, std::int64_t> sorted;
    for (std::size_t i = 0; i < n; ++i)
        sorted.add(static_cast<std::int64_t>(i) * 3,
                   static_cast<std::int64_t>(i));
    support::Rng rng(1);
    for (auto _ : state) {
        const auto needle =
            static_cast<std::int64_t>(rng.next_below(n)) * 3;
        benchmark::DoNotOptimize(sorted.index_of_key(needle));
    }
}
BENCHMARK(BM_Search_SortedListBinarySearch)->Arg(1 << 10)->Arg(1 << 14);

void BM_Search_SortedSetAvl(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    ds::SortedSet<std::int64_t> set;
    for (std::size_t i = 0; i < n; ++i)
        set.add(static_cast<std::int64_t>(i) * 3);
    support::Rng rng(1);
    for (auto _ : state) {
        const auto needle =
            static_cast<std::int64_t>(rng.next_below(n)) * 3;
        benchmark::DoNotOptimize(set.contains(needle));
    }
}
BENCHMARK(BM_Search_SortedSetAvl)->Arg(1 << 10)->Arg(1 << 14);

void BM_Search_DictionaryHash(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    ds::Dictionary<std::int64_t, std::int64_t> dict;
    for (std::size_t i = 0; i < n; ++i)
        dict.set(static_cast<std::int64_t>(i) * 3,
                 static_cast<std::int64_t>(i));
    support::Rng rng(1);
    for (auto _ : state) {
        const auto needle =
            static_cast<std::int64_t>(rng.next_below(n)) * 3;
        benchmark::DoNotOptimize(dict.contains_key(needle));
    }
}
BENCHMARK(BM_Search_DictionaryHash)->Arg(1 << 10)->Arg(1 << 14);

void BM_ParallelSort(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    support::Rng rng(3);
    std::vector<std::int64_t> base(n);
    for (auto& v : base) v = static_cast<std::int64_t>(rng.next());
    par::ThreadPool& pool = par::ThreadPool::default_pool();
    for (auto _ : state) {
        state.PauseTiming();
        std::vector<std::int64_t> data = base;
        state.ResumeTiming();
        par::parallel_sort<std::int64_t>(pool, data);
        benchmark::DoNotOptimize(data.data());
    }
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 18);

}  // namespace
