// Table VI — comparison of sequential and parallelizable runtime fractions.
//
// "We analyzed the original program and determined what parts need to be
// executed sequentially and what parts might profit from parallelization.
// After this we determined the runtime share of both parts."  Each app
// times the regions its DSspy recommendations target; the sequential
// fraction explains the speedup ceiling (Amdahl).
#include <iostream>

#include "apps/app_registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
    using namespace dsspy;
    using support::Table;

    // The four programs of Table VI.
    const char* kNames[] = {"CPU Benchmarks", "Gpdotnet", "Mandelbrot",
                            "WordWheelSolver"};
    const double kPaperFraction[] = {0.9429, 0.0389, 0.0909, 0.2821};

    par::ThreadPool& pool = par::ThreadPool::default_pool();

    constexpr unsigned kPaperCores = 8;  // AMD FX 8120 testbed

    std::cout << "Table VI - Sequential vs parallelizable runtime "
                 "fractions\n\n";
    Table table({"Name", "Seq. runtime (ms)", "Parallelizable (ms)",
                 "Seq. fraction", "(paper)", "Amdahl bound @8",
                 "Measured speedup"});

    for (std::size_t i = 0; i < 4; ++i) {
        const apps::AppInfo* app = apps::find_app(kNames[i]);
        if (app == nullptr) continue;
        const apps::RunResult seq = app->run_sequential(nullptr);
        const apps::RunResult par_run = app->run_parallel(pool);

        const double seq_ms =
            static_cast<double>(seq.total_ns - seq.parallelizable_ns) / 1e6;
        const double par_ms =
            static_cast<double>(seq.parallelizable_ns) / 1e6;
        const double fraction = seq.sequential_fraction();
        const double bound = support::amdahl_speedup(fraction, kPaperCores);
        const double measured = support::speedup(
            static_cast<double>(seq.total_ns),
            static_cast<double>(par_run.total_ns));

        table.add_row({app->name, Table::fmt(seq_ms), Table::fmt(par_ms),
                       Table::pct(fraction), Table::pct(kPaperFraction[i]),
                       Table::fmt(bound), Table::fmt(measured)});
    }
    table.print(std::cout);

    std::cout << "\nPaper fractions: CPU Benchmarks 94.29%, Gpdotnet "
                 "3.89%, Mandelbrot 9.09%, WordWheelSolver 28.21%.\n"
              << "Shape to check: CPU Benchmarks is sequential-dominated "
                 "(speedup stuck near 1.2x); the other three have small "
                 "sequential fractions and real speedups.\n";
    return 0;
}
