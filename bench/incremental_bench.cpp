// Incremental vs post-mortem analysis: peak memory and throughput.
//
// DESIGN.md §8's central claim is that the incremental analyzer bounds
// memory by the live-instance state instead of the event count.  This
// bench runs the same deterministic ≥10M-event workload in three isolated
// child processes (fork + exec of /proc/self/exe, so each child's RSS is
// clean) and records each child's peak RSS via wait4()'s rusage:
//
//   * postmortem_buffered  — Buffered capture, store everything, analyze.
//   * postmortem_streaming — Streaming capture, store everything, analyze.
//   * incremental_streaming — Streaming capture, AnalysisMode::Incremental
//     with an attached IncrementalAnalyzer; the store stays empty.
//
// Every child prints a digest of its full rendered report (use-case
// report, summaries, CSVs); the parent asserts all three digests are
// identical — the memory saving is only interesting if the verdicts are
// bit-identical — and writes BENCH_incremental.json with peak-RSS and
// events/sec per mode plus the postmortem/incremental RSS ratio.
//
// Usage: incremental_bench [output.json] [events]
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/dsspy.hpp"
#include "core/export.hpp"
#include "core/incremental.hpp"
#include "core/report.hpp"
#include "runtime/session.hpp"

namespace {

using namespace dsspy;
using Clock = std::chrono::steady_clock;

// --- deterministic ≥10M-event workload --------------------------------------

/// Eight instances cycling through insert/sort, scan/search, queue, and
/// write-tail phases so several use-case rules fire on real pattern state.
void drive_workload(runtime::ProfilingSession& session,
                    std::uint64_t target_events) {
    constexpr std::size_t kInstances = 8;
    std::vector<runtime::InstanceId> ids;
    std::vector<std::uint32_t> sizes(kInstances, 0);
    for (std::size_t i = 0; i < kInstances; ++i)
        ids.push_back(session.register_instance(
            i % 4 == 3 ? runtime::DsKind::Array : runtime::DsKind::List,
            "List<Int64>",
            {"Bench.Incremental", "Drive", static_cast<std::uint32_t>(i)}));

    std::uint64_t emitted = 0;
    std::uint64_t round = 0;
    while (emitted < target_events) {
        for (std::size_t i = 0; i < kInstances && emitted < target_events;
             ++i) {
            const runtime::InstanceId id = ids[i];
            std::uint32_t& size = sizes[i];
            switch ((round + i) % 4) {
                case 0:  // Long insertion phase, then a sort (LI + SAI).
                    for (int k = 0; k < 1500; ++k) {
                        session.record(id, runtime::OpKind::Add, size,
                                       size + 1);
                        ++size;
                    }
                    session.record(id, runtime::OpKind::Sort,
                                   runtime::kWholeContainer, size);
                    emitted += 1501;
                    break;
                case 1: {  // Full read sweeps plus searches (FLR + FS).
                    const std::uint32_t n = size == 0 ? 1 : size;
                    for (int sweep = 0; sweep < 2; ++sweep)
                        for (std::uint32_t p = 0; p < n && p < 600; ++p)
                            session.record(id, runtime::OpKind::Get, p, size);
                    for (int k = 0; k < 300; ++k)
                        session.record(id, runtime::OpKind::IndexOf,
                                       k % static_cast<int>(n), size);
                    emitted += 2 * std::min<std::uint32_t>(n, 600) + 300;
                    break;
                }
                case 2:  // Two-end traffic (IQ).
                    for (int k = 0; k < 400 && size > 0; ++k) {
                        session.record(id, runtime::OpKind::Add, size,
                                       size + 1);
                        ++size;
                        session.record(id, runtime::OpKind::Get, 0, size);
                        session.record(id, runtime::OpKind::Get, size - 1,
                                       size);
                        --size;
                        session.record(id, runtime::OpKind::RemoveAt, 0,
                                       size);
                        emitted += 4;
                    }
                    break;
                default:  // Covering write tail (WWR-shaped), then reset.
                    for (std::uint32_t p = 0; p < size && p < 800; ++p)
                        session.record(id, runtime::OpKind::Set, p, size);
                    emitted += std::min<std::uint32_t>(size, 800);
                    if (size > 60000) {
                        session.record(id, runtime::OpKind::Clear,
                                       runtime::kWholeContainer, 0);
                        size = 0;
                        ++emitted;
                    }
                    break;
            }
        }
        ++round;
    }
}

// --- report digest -----------------------------------------------------------

template <typename Report>
std::uint64_t digest(const Report& report) {
    std::ostringstream os;
    core::print_use_case_report(os, report);
    core::print_instance_summary(os, report);
    core::write_use_cases_csv(os, report);
    core::write_instances_csv(os, report);
    const std::string text = os.str();
    std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64.
    for (const char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 1099511628211ull;
    }
    return hash;
}

// --- child: run one mode, print one RESULT line ------------------------------

int run_child(const std::string& mode, std::uint64_t events) {
    const auto t0 = Clock::now();
    std::uint64_t report_digest = 0;
    std::size_t flagged = 0;
    std::uint64_t recorded = 0;

    if (mode == "incremental_streaming") {
        runtime::ProfilingSession session(runtime::CaptureMode::Streaming,
                                          64 * 1024,
                                          runtime::AnalysisMode::Incremental);
        core::IncrementalAnalyzer analyzer;
        core::attach_incremental(session, analyzer);
        drive_workload(session, events);
        session.stop();
        if (session.store().total_events() != 0) {
            std::fprintf(stderr, "incremental store not empty\n");
            return 1;
        }
        const core::StreamReport report =
            core::Dsspy::finish(analyzer, session);
        report_digest = digest(report);
        flagged = report.flagged_instances();
        recorded = session.events_recorded();
    } else {
        const runtime::CaptureMode capture =
            mode == "postmortem_streaming" ? runtime::CaptureMode::Streaming
                                           : runtime::CaptureMode::Buffered;
        runtime::ProfilingSession session(capture);
        drive_workload(session, events);
        session.stop();
        const core::AnalysisResult result = core::Dsspy{}.analyze(session);
        report_digest = digest(result);
        flagged = result.flagged_instances();
        recorded = session.events_recorded();
    }

    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - t0)
                             .count();
    std::printf("RESULT mode=%s events=%llu elapsed_ns=%lld flagged=%zu "
                "digest=%016llx\n",
                mode.c_str(), static_cast<unsigned long long>(recorded),
                static_cast<long long>(elapsed), flagged,
                static_cast<unsigned long long>(report_digest));
    return 0;
}

// --- parent: fork/exec each mode, gather rusage ------------------------------

struct ModeResult {
    std::string mode;
    std::uint64_t events = 0;
    std::uint64_t elapsed_ns = 0;
    std::size_t flagged = 0;
    std::string digest;
    long peak_rss_kb = 0;

    [[nodiscard]] double events_per_sec() const {
        return elapsed_ns == 0 ? 0.0
                               : static_cast<double>(events) * 1e9 /
                                     static_cast<double>(elapsed_ns);
    }
};

bool run_mode(const std::string& mode, std::uint64_t events,
              ModeResult& out) {
    int fds[2];
    if (pipe(fds) != 0) return false;
    const pid_t pid = fork();
    if (pid < 0) return false;
    if (pid == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        const std::string count = std::to_string(events);
        execl("/proc/self/exe", "incremental_bench", "--child", mode.c_str(),
              count.c_str(), static_cast<char*>(nullptr));
        std::perror("execl");
        _exit(127);
    }
    close(fds[1]);
    std::string output;
    char buf[4096];
    ssize_t got = 0;
    while ((got = read(fds[0], buf, sizeof(buf))) > 0)
        output.append(buf, static_cast<std::size_t>(got));
    close(fds[0]);

    int status = 0;
    rusage usage{};
    if (wait4(pid, &status, 0, &usage) != pid) return false;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "child %s failed: %s\n", mode.c_str(),
                     output.c_str());
        return false;
    }

    unsigned long long ev = 0, ns = 0;
    char digest_hex[32] = {0};
    std::size_t flagged = 0;
    const char* line = std::strstr(output.c_str(), "RESULT ");
    if (line == nullptr ||
        std::sscanf(line,
                    "RESULT mode=%*s events=%llu elapsed_ns=%llu "
                    "flagged=%zu digest=%31s",
                    &ev, &ns, &flagged, digest_hex) != 4) {
        std::fprintf(stderr, "unparseable child output: %s\n",
                     output.c_str());
        return false;
    }
    out.mode = mode;
    out.events = ev;
    out.elapsed_ns = ns;
    out.flagged = flagged;
    out.digest = digest_hex;
    out.peak_rss_kb = usage.ru_maxrss;  // Linux: kilobytes.
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 4 && std::strcmp(argv[1], "--child") == 0)
        return run_child(argv[2],
                         std::strtoull(argv[3], nullptr, 10));

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_incremental.json";
    const std::uint64_t events =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10'000'000ull;

    const std::vector<std::string> modes = {
        "postmortem_buffered", "postmortem_streaming",
        "incremental_streaming"};
    std::vector<ModeResult> results;
    for (const std::string& mode : modes) {
        ModeResult r;
        std::fprintf(stderr, "running %s (%llu events)...\n", mode.c_str(),
                     static_cast<unsigned long long>(events));
        if (!run_mode(mode, events, r)) return 1;
        std::fprintf(stderr,
                     "  peak_rss=%ld KB  events/sec=%.3g  flagged=%zu  "
                     "digest=%s\n",
                     r.peak_rss_kb, r.events_per_sec(), r.flagged,
                     r.digest.c_str());
        results.push_back(r);
    }

    bool identical = true;
    for (const ModeResult& r : results)
        identical = identical && r.digest == results.front().digest &&
                    r.events == results.front().events &&
                    r.flagged == results.front().flagged;
    if (!identical) {
        std::fprintf(stderr, "FAIL: verdict digests differ across modes\n");
        return 1;
    }

    long postmortem_rss = results[0].peak_rss_kb;
    for (const ModeResult& r : results)
        if (r.mode != "incremental_streaming")
            postmortem_rss = std::min(postmortem_rss, r.peak_rss_kb);
    const long incremental_rss = results.back().peak_rss_kb;
    const double reduction =
        incremental_rss == 0 ? 0.0
                             : static_cast<double>(postmortem_rss) /
                                   static_cast<double>(incremental_rss);

    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"incremental_vs_postmortem\",\n");
    std::fprintf(out, "  \"events\": %llu,\n",
                 static_cast<unsigned long long>(results.front().events));
    std::fprintf(out, "  \"verdicts_identical\": true,\n");
    std::fprintf(out, "  \"verdict_digest\": \"%s\",\n",
                 results.front().digest.c_str());
    std::fprintf(out, "  \"flagged_instances\": %zu,\n",
                 results.front().flagged);
    std::fprintf(out, "  \"peak_rss_reduction\": %.2f,\n", reduction);
    std::fprintf(out, "  \"modes\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ModeResult& r = results[i];
        std::fprintf(out,
                     "    \"%s\": {\"peak_rss_kb\": %ld, "
                     "\"elapsed_ns\": %llu, \"events_per_sec\": %.1f}%s\n",
                     r.mode.c_str(), r.peak_rss_kb,
                     static_cast<unsigned long long>(r.elapsed_ns),
                     r.events_per_sec(), i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);

    std::fprintf(stderr, "peak-RSS reduction: %.2fx -> %s\n", reduction,
                 out_path.c_str());
    if (reduction < 5.0) {
        std::fprintf(stderr,
                     "FAIL: expected >=5x peak-RSS reduction, got %.2fx\n",
                     reduction);
        return 1;
    }
    return 0;
}
