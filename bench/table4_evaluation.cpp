// Table IV — the main evaluation: per app, the dynamic-analysis slowdown,
// the search-space reduction, the detected use cases, and the speedup from
// following the recommended actions.
//
// Methodology (Section V):
//   * runtime / profiling-slowdown: the *same* app code runs with a null
//     session (plain) and with a live session (instrumented); the paper
//     averaged ten runs, we average DSSPY_RUNS (default 3).
//   * search-space reduction: 1 - flagged/total over list+array instances.
//   * speedup: plain sequential runtime over recommendation-parallelized
//     runtime on the default thread pool.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/dsspy.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

int runs_from_env() {
    if (const char* env = std::getenv("DSSPY_RUNS")) {
        const int n = std::atoi(env);
        if (n > 0) return n;
    }
    return 3;
}

unsigned threads_from_env() {
    if (const char* env = std::getenv("DSSPY_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0) return static_cast<unsigned>(n);
    }
    return 0;  // hardware concurrency
}

/// The paper's testbed core count (8-core AMD FX 8120).  The "Sim@8"
/// column simulates that machine with the virtual-time scheduler (chunk
/// durations measured sequentially, replayed on 8 virtual workers — load
/// imbalance included); "Amdahl@8" is the coarser projection from the
/// sequential/parallelizable split.
constexpr unsigned kPaperCores = 8;

}  // namespace

int main() {
    using namespace dsspy;
    using support::Table;

    const int kRuns = runs_from_env();
    par::ThreadPool pool(threads_from_env());

    std::cout << "Table IV - Evaluation of DSspy: slowdown, search space "
                 "reduction, detected use cases, speedup\n"
              << "(averaged over " << kRuns << " runs; DSSPY_RUNS / "
              << "DSSPY_THREADS override; pool: " << pool.thread_count()
              << " threads)\n"
              << "'Sim@8' replays the recommendation regions on 8 virtual "
                 "workers (virtual-time scheduling, imbalance included); "
                 "'Amdahl@8' projects from the measured fractions.\n\n";

    Table table({"Name", "LOC", "Runtime (ms)", "Profiling (ms)",
                 "Slowdown", "DS", "Flagged", "UCs", "Reduction",
                 "(paper)", "Speedup", "Sim@8", "Amdahl@8", "(paper)"});

    double slowdown_sum = 0.0;
    std::vector<double> speedups;
    std::vector<double> projected;
    std::size_t total_instances = 0;
    std::size_t total_flagged = 0;

    for (const apps::AppInfo& app : apps::evaluation_apps()) {
        std::vector<double> plain_ms;
        std::vector<double> instr_ms;
        std::vector<double> par_ms;
        std::vector<double> seq_fraction;
        std::size_t instances = 0;
        std::size_t flagged = 0;
        std::size_t use_cases = 0;

        for (int run = 0; run < kRuns; ++run) {
            const apps::RunResult plain = app.run_sequential(nullptr);
            plain_ms.push_back(static_cast<double>(plain.total_ns) / 1e6);
            seq_fraction.push_back(plain.sequential_fraction());

            runtime::ProfilingSession session;
            const apps::RunResult instrumented =
                app.run_sequential(&session);
            session.stop();
            instr_ms.push_back(static_cast<double>(instrumented.total_ns) /
                               1e6);

            if (run == 0) {
                const core::AnalysisResult analysis =
                    core::Dsspy{}.analyze(session);
                instances = analysis.list_array_instances();
                flagged = analysis.flagged_instances();
                for (const core::UseCase& uc : analysis.all_use_cases())
                    if (uc.parallel_potential()) ++use_cases;
            }

            const apps::RunResult parallel = app.run_parallel(pool);
            par_ms.push_back(static_cast<double>(parallel.total_ns) / 1e6);
        }

        const double plain_mean = support::summarize(plain_ms).mean;
        const double instr_mean = support::summarize(instr_ms).mean;
        const double par_mean = support::summarize(par_ms).mean;
        const double slowdown = support::speedup(instr_mean, plain_mean) > 0
                                    ? instr_mean / plain_mean
                                    : 0.0;
        const double reduction =
            instances == 0 ? 0.0
                           : 1.0 - static_cast<double>(flagged) /
                                       static_cast<double>(instances);
        const double sp = support::speedup(plain_mean, par_mean);
        const double amdahl = support::amdahl_speedup(
            support::summarize(seq_fraction).mean, kPaperCores);

        // Virtual-time simulation of the paper's 8-core machine.
        std::vector<double> sim_ms;
        for (int run = 0; run < kRuns; ++run) {
            const apps::RunResult simulated = app.run_simulated(kPaperCores);
            sim_ms.push_back(static_cast<double>(simulated.total_ns) / 1e6);
        }
        const double sim =
            support::speedup(plain_mean, support::summarize(sim_ms).mean);

        table.add_row({app.name,
                       Table::with_commas(
                           static_cast<long long>(app.paper_loc)),
                       Table::fmt(plain_mean), Table::fmt(instr_mean),
                       Table::fmt(slowdown), std::to_string(instances),
                       std::to_string(flagged), std::to_string(use_cases),
                       Table::pct(reduction), Table::pct(app.paper_reduction),
                       Table::fmt(sp), Table::fmt(sim), Table::fmt(amdahl),
                       Table::fmt(app.paper_speedup)});

        slowdown_sum += slowdown;
        speedups.push_back(sp);
        projected.push_back(sim);
        total_instances += instances;
        total_flagged += flagged;
    }

    table.add_separator();
    const double total_reduction =
        1.0 - static_cast<double>(total_flagged) /
                  static_cast<double>(total_instances);
    double speedup_sum = 0.0;
    for (double s : speedups) speedup_sum += s;
    double projected_sum = 0.0;
    for (double s : projected) projected_sum += s;
    table.add_row({"Total", "15,550", "", "",
                   Table::fmt(slowdown_sum / 7.0),
                   std::to_string(total_instances),
                   std::to_string(total_flagged), "",
                   Table::pct(total_reduction), "76.92%",
                   Table::fmt(speedup_sum / static_cast<double>(
                                                speedups.size())),
                   Table::fmt(projected_sum / static_cast<double>(
                                                  projected.size())),
                   "", "2.13"});
    table.print(std::cout);

    std::cout << "\nPaper: instances 104 -> 24 flagged (76.92% reduction), "
                 "average slowdown 47.13 (18.88 w/o gpdotnet outlier), "
                 "average speedup 2.13 on 8 cores.\n"
              << "Slowdown depends on the event volume the workload "
                 "generates; the paper's shape to check is: profiling is a "
                 "one-time multiple-x cost, reduction is large, speedups "
                 "are >1 except for the Amdahl-limited CPU Benchmarks.\n"
              << "'Speedup' is measured wall clock with "
              << pool.thread_count()
              << " worker thread(s) on this host; 'Sim@8' replays the "
                 "measured chunk durations on 8 virtual workers.\n";
    return 0;
}
