// Trace persistence benchmark: CSV vs DST1 binary on a 1M-event trace.
//
// Builds a synthetic but realistically shaped trace (64 instances worked
// in phases: append bursts, read sweeps, occasional clears, a few
// threads, amortized-timestamp plateaus — the patterns the capture path
// actually produces), then measures serialized size and write/read
// throughput for both formats plus the parallel binary decode.  Results
// land as machine-readable JSON (default: BENCH_trace.json) so the
// storage-format trajectory is tracked across PRs; DESIGN.md §7 quotes
// these numbers.
//
// Usage: trace_io_bench [output.json] [rounds] [events]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "runtime/trace_binary.hpp"
#include "runtime/trace_io.hpp"

namespace {

using namespace dsspy;
using runtime::AccessEvent;
using runtime::InstanceId;
using runtime::InstanceInfo;
using runtime::OpKind;
using runtime::Trace;
using runtime::TraceFormat;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kInstances = 64;
constexpr unsigned kThreads = 4;
constexpr std::uint64_t kTimestampStride = 64;  // capture-path plateau

/// Synthesize `target_events` events shaped like a real capture: each
/// instance is filled in append bursts, swept by reads, occasionally
/// cleared; seq is globally contiguous, timestamps plateau and advance
/// ~25ns per event, threads switch per phase.
Trace build_trace(std::size_t target_events) {
    Trace trace;
    for (InstanceId id = 0; id < kInstances; ++id) {
        InstanceInfo info;
        info.id = id;
        info.kind = id % 3 == 0 ? runtime::DsKind::Array
                                : runtime::DsKind::List;
        info.type_name = id % 2 == 0 ? "List<Int64>" : "List<Customer>";
        info.location = {"Bench.TraceIo", "phase" + std::to_string(id % 7),
                         id};
        trace.instances.push_back(std::move(info));
    }

    std::vector<AccessEvent> batch;
    batch.reserve(1 << 16);
    std::uint64_t seq = 0;
    std::uint64_t time_ns = 1'000'000'000;
    const auto emit = [&](InstanceId inst, OpKind op, std::int64_t pos,
                          std::uint32_t size, std::uint16_t thread) {
        AccessEvent ev;
        ev.seq = seq++;
        if (seq % kTimestampStride == 0) time_ns += 25 * kTimestampStride;
        ev.time_ns = time_ns;
        ev.instance = inst;
        ev.op = op;
        ev.position = pos;
        ev.size = size;
        ev.thread = thread;
        batch.push_back(ev);
        if (batch.size() == batch.capacity()) {
            trace.store.append(batch);
            batch.clear();
        }
    };

    std::size_t round = 0;
    while (seq < target_events) {
        const auto inst = static_cast<InstanceId>(round % kInstances);
        const auto thread = static_cast<std::uint16_t>(round % kThreads);
        const std::uint32_t burst = 512 + 64 * (round % 5);
        // Append burst.
        for (std::uint32_t i = 0; i < burst; ++i)
            emit(inst, OpKind::Add, i, i + 1, thread);
        // Two read sweeps (one forward, one with a search sprinkled in).
        for (std::uint32_t i = 0; i < burst; ++i)
            emit(inst, OpKind::Get, i, burst, thread);
        for (std::uint32_t i = 0; i < burst; ++i)
            emit(inst, i % 97 == 0 ? OpKind::IndexOf : OpKind::Get, i, burst,
                 thread);
        // Every few rounds the instance is cleared for the next phase.
        if (round % 3 == 2) emit(inst, OpKind::Clear, -1, 0, thread);
        ++round;
    }
    trace.store.append(batch);
    trace.store.finalize();
    return trace;
}

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/// Best-of-`rounds` milliseconds for `body()` (min is the most
/// noise-robust statistic on a shared machine).
template <typename Body>
double best_ms(int rounds, Body body) {
    double best = 1e100;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = Clock::now();
        body();
        best = std::min(best, ms_since(t0));
    }
    return best;
}

double mb_per_s(std::size_t bytes, double ms) {
    return ms > 0 ? static_cast<double>(bytes) / 1e6 / (ms / 1e3) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_trace.json";
    const int rounds = argc > 2 ? std::atoi(argv[2]) : 5;
    const std::size_t events =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 1'000'000;

    std::printf("building %zu-event synthetic trace...\n", events);
    const Trace trace = build_trace(events);
    const std::size_t total = trace.store.total_events();

    // Serialize once for sizes and as read input.
    std::string csv_bytes, bin_bytes;
    {
        std::ostringstream csv;
        write_trace(csv, trace.instances, trace.store, TraceFormat::Csv);
        csv_bytes = std::move(csv).str();
        std::ostringstream bin;
        write_trace(bin, trace.instances, trace.store, TraceFormat::Binary);
        bin_bytes = std::move(bin).str();
    }

    const double csv_write_ms = best_ms(rounds, [&] {
        std::ostringstream os;
        write_trace(os, trace.instances, trace.store, TraceFormat::Csv);
    });
    const double bin_write_ms = best_ms(rounds, [&] {
        std::ostringstream os;
        write_trace(os, trace.instances, trace.store, TraceFormat::Binary);
    });
    const double csv_read_ms = best_ms(rounds, [&] {
        std::istringstream is(csv_bytes);
        (void)runtime::read_trace(is);
    });
    const double bin_read_ms = best_ms(rounds, [&] {
        std::istringstream is(bin_bytes);
        (void)runtime::read_trace(is);
    });
    par::ThreadPool pool;
    const double bin_read_par_ms = best_ms(rounds, [&] {
        std::istringstream is(bin_bytes);
        (void)runtime::read_trace(is, &pool);
    });

    // Bit-identical discipline: the parallel decode must reproduce the
    // sequential decode exactly.
    bool par_identical = true;
    {
        const Trace seq_trace = runtime::read_trace_binary(bin_bytes);
        const Trace par_trace = runtime::read_trace_binary(bin_bytes, &pool);
        par_identical = seq_trace.instances == par_trace.instances &&
                        seq_trace.store.total_events() ==
                            par_trace.store.total_events();
        for (std::size_t id = 0;
             par_identical && id < seq_trace.store.instance_slots(); ++id) {
            const auto a = seq_trace.store.events(static_cast<InstanceId>(id));
            const auto b = par_trace.store.events(static_cast<InstanceId>(id));
            par_identical = std::equal(a.begin(), a.end(), b.begin(), b.end());
        }
    }

    const double ev = static_cast<double>(total);
    const double size_ratio =
        static_cast<double>(csv_bytes.size()) /
        static_cast<double>(bin_bytes.size());
    const double read_speedup = csv_read_ms / bin_read_ms;

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("trace_io_bench: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"trace_io\",\n");
    std::fprintf(f, "  \"events\": %zu,\n", total);
    std::fprintf(f, "  \"instances\": %zu,\n", trace.instances.size());
    std::fprintf(f, "  \"rounds\": %d,\n", rounds);
    std::fprintf(f, "  \"pool_threads\": %u,\n", pool.thread_count());
    std::fprintf(f, "  \"parallel_decode_bit_identical\": %s,\n",
                 par_identical ? "true" : "false");
    std::fprintf(f, "  \"csv_over_binary_size\": %.2f,\n", size_ratio);
    std::fprintf(f, "  \"csv_over_binary_read_time\": %.2f,\n", read_speedup);
    std::fprintf(f, "  \"results\": [\n");
    const auto row = [&](const char* name, std::size_t bytes, double write_ms,
                         double read_ms, bool last) {
        std::fprintf(f,
                     "    {\"format\": \"%s\", \"bytes\": %zu, "
                     "\"bytes_per_event\": %.2f, \"write_ms\": %.1f, "
                     "\"write_mb_s\": %.1f, \"read_ms\": %.1f, "
                     "\"read_mb_s\": %.1f}%s\n",
                     name, bytes, static_cast<double>(bytes) / ev, write_ms,
                     mb_per_s(bytes, write_ms), read_ms,
                     mb_per_s(bytes, read_ms), last ? "" : ",");
    };
    row("csv", csv_bytes.size(), csv_write_ms, csv_read_ms, false);
    row("binary", bin_bytes.size(), bin_write_ms, bin_read_ms, false);
    row("binary_parallel", bin_bytes.size(), bin_write_ms, bin_read_par_ms,
        true);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    std::printf("events            %zu\n", total);
    std::printf("csv               %9zu bytes  (%.2f B/event)\n",
                csv_bytes.size(), static_cast<double>(csv_bytes.size()) / ev);
    std::printf("binary            %9zu bytes  (%.2f B/event, %.1fx smaller)\n",
                bin_bytes.size(), static_cast<double>(bin_bytes.size()) / ev,
                size_ratio);
    std::printf("csv write         %8.1f ms   read %8.1f ms\n", csv_write_ms,
                csv_read_ms);
    std::printf("binary write      %8.1f ms   read %8.1f ms (%.1fx faster)\n",
                bin_write_ms, bin_read_ms, read_speedup);
    std::printf("binary read (par) %8.1f ms\n", bin_read_par_ms);
    std::printf("parallel decode bit-identical: %s\n",
                par_identical ? "yes" : "NO");
    std::printf("wrote %s\n", out_path.c_str());
    return (par_identical && size_ratio >= 5.0 && read_speedup >= 3.0) ? 0 : 1;
}
