// Table V — example DSspy output for GPdotNET: the five use cases with
// class, method, position, data structure, and category.
#include <iostream>

#include "apps/gpdotnet.hpp"
#include "core/dsspy.hpp"
#include "core/report.hpp"

int main() {
    using namespace dsspy;

    runtime::ProfilingSession session;
    (void)apps::run_gpdotnet(&session);
    session.stop();

    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);

    std::cout << "Table V - Example DSspy use cases for GPdotNET\n"
              << "(paper reports: GenerateTerminalSet FLR; CHPopulation "
                 ".ctor FLR + LI; FitnessProportionateSelection FLR + "
                 "LI)\n\n";
    core::print_use_case_report(std::cout, analysis, /*parallel_only=*/true);

    std::cout << "Instance summary:\n";
    core::print_instance_summary(std::cout, analysis);
    return 0;
}
