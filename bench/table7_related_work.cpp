// Table VII — qualitative comparison of related-work disciplines.
// (Static table from the paper; printed for completeness so every table
// has a bench target.)
#include <iostream>

#include "support/table.hpp"

int main() {
    using dsspy::support::Table;

    std::cout << "Table VII - Comparison of related work\n"
              << "(+ full support, o partial, - none)\n\n";

    Table table({"Capability", "Parallel Libraries", "Prog. Assistance",
                 "SW Visualization", "Data Layout Opt.",
                 "Memory Access Analysis", "DS Optimization",
                 "Auto Parallelization", "This work"});
    table.set_alignment({dsspy::support::Align::Left});
    table.add_row({"Chronological order of data", "+", "-", "+", "o", "+",
                   "-", "-", "o"});
    table.add_row({"Collection of data accesses", "-", "-", "o", "+", "-",
                   "-", "-", "+"});
    table.add_row({"Detection of parallel potential", "-", "-", "-", "-",
                   "-", "+", "+", "+"});
    table.add_row({"Deduction of use cases", "-", "-", "-", "-", "-", "-",
                   "-", "+"});
    table.print(std::cout);

    std::cout << "\nDSspy is the only approach that both collects "
                 "chronological data-structure accesses and deduces use "
                 "cases with recommended actions from them.\n";
    return 0;
}
