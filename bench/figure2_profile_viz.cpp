// Figure 2 — runtime profile of the paper's 10-element list example:
//
//   List<int> list = new List<int>(10);
//   for (int i = 0; i < 10; i++)  list.Add(i);
//   for (int i = 9; i >= 0; i--)  Debug.Write(list[i]);
//
// Prints the captured five-field events, the ASCII chart, and writes the
// SVG rendition to figure2_profile.svg.
#include <iostream>

#include "core/dsspy.hpp"
#include "ds/ds.hpp"
#include "support/table.hpp"
#include "viz/ascii_chart.hpp"
#include "viz/svg.hpp"

int main() {
    using namespace dsspy;
    using support::Table;

    runtime::ProfilingSession session;
    runtime::InstanceId id;
    {
        // The exact snippet from the paper.
        ds::ProfiledList<int> list(&session, {"Paper.Example", "Main", 1},
                                   10);
        for (int i = 0; i < 10; ++i) list.add(i);
        for (int i = 9; i >= 0; --i)
            (void)list.get(static_cast<std::size_t>(i));
        id = list.instance_id();
    }
    session.stop();

    const core::RuntimeProfile profile(session.registry().info(id),
                                       session.store().events(id));

    std::cout << "Figure 2 - Runtime profile for the example list\n\n";
    Table table({"#", "Op", "Type", "Position", "Size", "Thread"});
    std::size_t i = 0;
    for (const runtime::AccessEvent& ev : profile.events()) {
        table.add_row({std::to_string(i++),
                       std::string(runtime::op_name(ev.op)),
                       std::string(core::access_type_name(
                           core::derive_access_type(ev.op))),
                       std::to_string(ev.position),
                       std::to_string(ev.size),
                       std::to_string(ev.thread)});
    }
    table.print(std::cout);

    std::cout << "\nProfile chart (bars = accessed index, '.' = size):\n";
    viz::ChartOptions options;
    options.max_width = 40;
    options.max_height = 11;
    std::cout << viz::render_profile_bars(profile, options);

    const std::string svg = viz::profile_to_svg(profile);
    if (viz::write_file("figure2_profile.svg", svg))
        std::cout << "\nWrote figure2_profile.svg\n";

    // The two patterns the paper points out in this profile.
    const auto patterns = core::PatternDetector{}.detect(profile);
    std::cout << "\nDetected patterns (paper: two separate access "
                 "patterns):\n";
    for (const core::Pattern& p : patterns)
        std::cout << "  " << core::pattern_name(p.kind) << " of length "
                  << p.length << " (positions " << p.start_pos << " -> "
                  << p.end_pos << ")\n";
    return 0;
}
