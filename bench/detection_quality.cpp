// Detection quality: precision AND recall against ground truth.
//
// The paper reports precision (66.67 %) but explicitly cannot report
// recall: "We are unable to provide this information with certainty,
// because we did not evaluate how many of the data structures that were
// not part of the result in fact yielded a speedup."  With synthetic
// labeled workloads the ground truth IS known, so this bench measures the
// full confusion matrix per use-case category — the paper's stated future
// work ("We will now work on improving the detection accuracy").
//
// The workload mixes three difficulty tiers per category:
//   * clear positives   — evidence well above the thresholds,
//   * borderline cases  — evidence randomized around the thresholds
//                         (labeled by what the evidence actually is),
//   * negatives         — pattern-free noise and below-threshold traffic.
// A final threshold sweep shows the precision/recall trade-off the
// paper's tuning navigated.
#include <array>
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "core/dsspy.hpp"
#include "corpus/workload.hpp"
#include "ds/ds.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace dsspy;
using core::UseCaseKind;

/// Ground truth per instance: the set of expected parallel use cases.
using Label = std::set<UseCaseKind>;

struct LabeledSession {
    runtime::ProfilingSession session;
    std::map<runtime::InstanceId, Label> truth;
};

/// Borderline Long-Insert: one insertion run whose length straddles the
/// 100-event threshold; reads keep the share near (but above) 30%.
void drive_borderline_li(LabeledSession& ls, std::uint32_t position,
                         support::Rng& rng) {
    const std::size_t run = 80 + rng.next_below(40);  // 80..119
    ds::ProfiledList<std::int64_t> list(
        &ls.session, {"Quality.Borderline", "LI", position});
    for (std::size_t i = 0; i < run; ++i)
        list.add(static_cast<std::int64_t>(i));
    std::size_t pos = 0;
    const std::size_t reads = run / 2;
    for (std::size_t i = 0; i < reads; ++i) {
        (void)list.get(pos);
        pos = (pos + 7) % list.count();
    }
    // Truth by the rule's definition: a long phase needs >= 100 events.
    Label label;
    if (run >= 100) label.insert(UseCaseKind::LongInsert);
    ls.truth[list.instance_id()] = label;
}

/// Borderline Frequent-Long-Read: sweep count straddles the >10 rule.
void drive_borderline_flr(LabeledSession& ls, std::uint32_t position,
                          support::Rng& rng) {
    const std::size_t sweeps = 8 + rng.next_below(6);  // 8..13
    ds::ProfiledList<std::int64_t> list(
        &ls.session, {"Quality.Borderline", "FLR", position}, 60);
    for (std::size_t i = 0; i < 60; ++i)
        list.add(static_cast<std::int64_t>(i));
    for (std::size_t s = 0; s < sweeps; ++s)
        for (std::size_t i = 0; i < list.count(); ++i) (void)list.get(i);
    Label label;
    if (sweeps > 10) label.insert(UseCaseKind::FrequentLongRead);
    ls.truth[list.instance_id()] = label;
}

/// Run one labeled mixed workload into `ls` (sessions are not movable).
void build_workload(LabeledSession& ls, std::uint64_t seed) {
    support::Rng rng(seed);
    std::uint32_t position = 0;

    auto labeled = [&ls](runtime::InstanceId id, Label label) {
        ls.truth[id] = std::move(label);
    };

    // Clear positives via the corpus drivers (instance id = last
    // registered instance).
    auto last_id = [&ls] {
        return static_cast<runtime::InstanceId>(
            ls.session.registry().size() - 1);
    };
    for (int i = 0; i < 3; ++i) {
        corpus::drive_long_insert(&ls.session,
                                  {"Quality.Clear", "LI", ++position}, rng);
        labeled(last_id(), {UseCaseKind::LongInsert});
        corpus::drive_frequent_long_read(
            &ls.session, {"Quality.Clear", "FLR", ++position}, rng);
        labeled(last_id(), {UseCaseKind::FrequentLongRead});
        corpus::drive_implement_queue(
            &ls.session, {"Quality.Clear", "IQ", ++position}, rng);
        labeled(last_id(), {UseCaseKind::ImplementQueue});
        corpus::drive_frequent_search(
            &ls.session, {"Quality.Clear", "FS", ++position}, rng);
        labeled(last_id(), {UseCaseKind::FrequentSearch});
        corpus::drive_sort_after_insert(
            &ls.session, {"Quality.Clear", "SAI", ++position}, rng);
        labeled(last_id(), {UseCaseKind::SortAfterInsert});
    }

    // Borderline cases.
    for (int i = 0; i < 10; ++i) {
        drive_borderline_li(ls, ++position, rng);
        drive_borderline_flr(ls, ++position, rng);
    }

    // Negatives.
    for (int i = 0; i < 12; ++i) {
        corpus::drive_noise_list(&ls.session,
                                 {"Quality.Noise", "List", ++position}, rng);
        labeled(last_id(), {});
        if (i % 2 == 0) {
            corpus::drive_regularity_only(
                &ls.session, {"Quality.Noise", "Reg", ++position}, rng);
            labeled(last_id(), {});
        }
    }
}

struct Counts {
    std::size_t tp = 0;
    std::size_t fp = 0;
    std::size_t fn = 0;

    [[nodiscard]] double precision() const {
        return tp + fp == 0 ? 1.0
                            : static_cast<double>(tp) /
                                  static_cast<double>(tp + fp);
    }
    [[nodiscard]] double recall() const {
        return tp + fn == 0 ? 1.0
                            : static_cast<double>(tp) /
                                  static_cast<double>(tp + fn);
    }
};

/// Evaluate one configuration over `rounds` seeds.
std::array<Counts, core::kUseCaseKindCount> evaluate(
    const core::DetectorConfig& config, int rounds) {
    std::array<Counts, core::kUseCaseKindCount> counts{};
    const core::Dsspy analyzer(config);
    for (int round = 0; round < rounds; ++round) {
        LabeledSession ls;
        build_workload(ls, 1000 + static_cast<std::uint64_t>(round));
        ls.session.stop();
        const core::AnalysisResult analysis = analyzer.analyze(ls.session);
        for (const core::InstanceAnalysis& ia : analysis.instances()) {
            const auto it = ls.truth.find(ia.profile.info().id);
            if (it == ls.truth.end()) continue;  // unlabeled helper
            const Label& expected = it->second;
            Label detected;
            for (const core::UseCase& uc : ia.use_cases)
                if (uc.parallel_potential()) detected.insert(uc.kind);
            for (std::size_t k = 0; k < core::kUseCaseKindCount; ++k) {
                const auto kind = static_cast<UseCaseKind>(k);
                const bool want = expected.contains(kind);
                const bool got = detected.contains(kind);
                if (want && got) ++counts[k].tp;
                if (!want && got) ++counts[k].fp;
                if (want && !got) ++counts[k].fn;
            }
        }
    }
    return counts;
}

void print_counts(const std::array<Counts, core::kUseCaseKindCount>& counts) {
    using support::Table;
    Table table({"Category", "TP", "FP", "FN", "Precision", "Recall"});
    Counts total;
    for (std::size_t k = 0; k < core::kUseCaseKindCount; ++k) {
        const auto kind = static_cast<UseCaseKind>(k);
        if (!core::has_parallel_potential(kind)) continue;
        const Counts& c = counts[k];
        if (c.tp + c.fp + c.fn == 0) continue;
        table.add_row({std::string(core::use_case_name(kind)),
                       std::to_string(c.tp), std::to_string(c.fp),
                       std::to_string(c.fn), Table::pct(c.precision()),
                       Table::pct(c.recall())});
        total.tp += c.tp;
        total.fp += c.fp;
        total.fn += c.fn;
    }
    table.add_separator();
    table.add_row({"All", std::to_string(total.tp),
                   std::to_string(total.fp), std::to_string(total.fn),
                   Table::pct(total.precision()),
                   Table::pct(total.recall())});
    table.print(std::cout);
}

}  // namespace

int main() {
    using support::Table;
    constexpr int kRounds = 12;

    std::cout << "Detection quality vs ground truth (" << kRounds
              << " labeled workload rounds; borderline cases straddle the "
                 "thresholds)\n\n";

    std::cout << "Paper defaults:\n";
    print_counts(evaluate(core::DetectorConfig{}, kRounds));

    std::cout << "\nPrecision/recall trade-off: scaling the Long-Insert "
                 "phase threshold\n";
    Table sweep({"li_min_phase_events", "Precision (LI)", "Recall (LI)"});
    for (const std::size_t v : {60u, 80u, 100u, 120u, 160u}) {
        core::DetectorConfig config;
        config.li_min_phase_events = v;
        const auto counts = evaluate(config, kRounds);
        const Counts& li =
            counts[static_cast<std::size_t>(UseCaseKind::LongInsert)];
        sweep.add_row({std::to_string(v), Table::pct(li.precision()),
                       Table::pct(li.recall())});
    }
    sweep.print(std::cout);
    std::cout << "\nNote: borderline labels follow the rule's published "
                 "definition (>=100-event phases), so precision/recall are "
                 "both 100% exactly at the paper's threshold and degrade "
                 "away from it — the behaviour the paper's tuning "
                 "optimized for.\n";
    return 0;
}
