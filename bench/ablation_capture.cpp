// Ablation: event-capture design (Section IV).
//
// The paper motivates asynchronous intra-process event shipping: "I/O is
// time consuming and for in-memory the log size can be a limiting factor."
// This bench measures capture throughput (events/s) for:
//   * Buffered capture (per-thread buffers, merged at stop), and
//   * Streaming capture (SPSC rings + collector thread) across ring sizes,
// with 1..4 recording threads — quantifying the cost of the design the
// paper chose and the backpressure effect of undersized rings.
#include <iostream>
#include <thread>
#include <vector>

#include "runtime/session.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using namespace dsspy;

double measure(runtime::CaptureMode mode, std::size_t ring_capacity,
               unsigned threads, std::size_t events_per_thread) {
    runtime::ProfilingSession session(mode, ring_capacity);
    std::vector<runtime::InstanceId> ids;
    for (unsigned t = 0; t < threads; ++t)
        ids.push_back(session.register_instance(
            runtime::DsKind::List, "List<Int64>", {"Bench", "M", t}));

    support::Stopwatch sw;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&session, &ids, t, events_per_thread] {
            const runtime::InstanceId id = ids[t];
            for (std::size_t i = 0; i < events_per_thread; ++i)
                session.record(id, runtime::OpKind::Add,
                               static_cast<std::int64_t>(i),
                               static_cast<std::uint32_t>(i + 1));
        });
    }
    for (auto& w : workers) w.join();
    session.stop();
    const double seconds = sw.elapsed_s();
    const double total =
        static_cast<double>(events_per_thread) * threads;
    return total / seconds;
}

}  // namespace

int main() {
    using support::Table;

    constexpr std::size_t kEventsPerThread = 400'000;

    std::cout << "Ablation - capture-mode throughput ("
              << kEventsPerThread << " events/thread)\n\n";

    Table table({"Mode", "Ring capacity", "Threads", "Events/s (M)"});
    for (const unsigned threads : {1u, 2u, 4u}) {
        table.add_row({"Buffered", "-", std::to_string(threads),
                       Table::fmt(measure(runtime::CaptureMode::Buffered, 0,
                                          threads, kEventsPerThread) /
                                  1e6)});
    }
    table.add_separator();
    for (const std::size_t ring : {1u << 10, 1u << 14, 1u << 18}) {
        for (const unsigned threads : {1u, 2u, 4u}) {
            table.add_row(
                {"Streaming", std::to_string(ring), std::to_string(threads),
                 Table::fmt(measure(runtime::CaptureMode::Streaming, ring,
                                    threads, kEventsPerThread) /
                            1e6)});
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: Buffered has no hot-path synchronization but "
                 "holds every event in producer-side buffers until stop(); "
                 "Streaming pays for the ring hand-off but bounds producer "
                 "memory and overlaps analysis-side work with capture — the "
                 "paper's log-size vs I/O trade-off.  Undersized rings "
                 "throttle producers via backpressure; which mode wins on "
                 "wall clock depends on allocator pressure and core count.\n";
    return 0;
}
