// Capture-path overhead benchmark.
//
// Times the record() hot path in both capture modes, single- and
// multi-threaded, against the uninstrumented baseline, and writes the
// results as machine-readable JSON (default: BENCH_capture.json) so the
// perf trajectory of the capture path is tracked across PRs.  The paper
// reports an average 47x capture slowdown (Table IV); this file is the
// regression guard for our low-overhead reimplementation.
//
// It also measures the self-telemetry layer's own cost: the same record()
// loop with the metrics registry disabled vs enabled, written as
// BENCH_obs.json — the acceptance bound is that enabling telemetry stays
// within single-digit percent of the uninstrumented capture path.
//
// A third pass measures the span-tracing recorder the same way: record()
// with TraceRecorder off vs on, written as BENCH_trace_obs.json — the
// acceptance bound is <=2% on the hot path (spans only ride cold
// branches, so the delta should be indistinguishable from noise).
//
// Usage: capture_overhead [output.json] [rounds] [obs_output.json]
//                         [trace_output.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ds/profiled_list.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/session.hpp"

namespace {

using namespace dsspy;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kOpsPerRound = 1u << 16;

double ns_per_op(Clock::time_point t0, Clock::time_point t1,
                 std::size_t ops) {
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
           static_cast<double>(ops);
}

/// Run `body(ops)` `rounds` times; return the fastest ns/op observed (the
/// minimum is the most noise-robust statistic on a shared machine).
template <typename Body>
double best_ns_per_op(int rounds, Body body) {
    double best = 1e100;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = Clock::now();
        body(kOpsPerRound);
        const auto t1 = Clock::now();
        best = std::min(best, ns_per_op(t0, t1, kOpsPerRound));
    }
    return best;
}

double bench_plain_list(int rounds) {
    return best_ns_per_op(rounds, [](std::size_t ops) {
        ds::List<std::int64_t> list;
        for (std::size_t i = 0; i < ops; ++i)
            list.add(static_cast<std::int64_t>(i));
    });
}

double bench_null_session(int rounds) {
    return best_ns_per_op(rounds, [](std::size_t ops) {
        ds::ProfiledList<std::int64_t> list(nullptr, {"Bench", "Null", 1});
        for (std::size_t i = 0; i < ops; ++i)
            list.add(static_cast<std::int64_t>(i));
    });
}

/// Times only the record() loop; session setup and stop()/finalize stay
/// outside the timed window (they are not the per-event hot path).
double bench_record(runtime::CaptureMode mode, int rounds) {
    double best = 1e100;
    for (int r = 0; r < rounds; ++r) {
        runtime::ProfilingSession session(mode);
        const runtime::InstanceId id = session.register_instance(
            runtime::DsKind::List, "List<Int64>", {"Bench", "Record", 1});
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOpsPerRound; ++i)
            session.record(id, runtime::OpKind::Add,
                           static_cast<std::int64_t>(i),
                           static_cast<std::uint32_t>(i + 1));
        const auto t1 = Clock::now();
        session.stop();
        best = std::min(best, ns_per_op(t0, t1, kOpsPerRound));
    }
    return best;
}

double bench_profiled_list(runtime::CaptureMode mode, int rounds) {
    double best = 1e100;
    for (int r = 0; r < rounds; ++r) {
        runtime::ProfilingSession session(mode);
        ds::ProfiledList<std::int64_t> list(&session, {"Bench", "List", 1});
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < kOpsPerRound; ++i)
            list.add(static_cast<std::int64_t>(i));
        const auto t1 = Clock::now();
        session.stop();
        best = std::min(best, ns_per_op(t0, t1, kOpsPerRound));
    }
    return best;
}

/// Multi-producer record(): `threads` producers hammer one session; the
/// reported figure is wall-time per event across all producers.
double bench_record_mt(runtime::CaptureMode mode, unsigned threads,
                       int rounds) {
    double best = 1e100;
    for (int r = 0; r < rounds; ++r) {
        runtime::ProfilingSession session(mode);
        std::vector<runtime::InstanceId> ids;
        for (unsigned t = 0; t < threads; ++t)
            ids.push_back(session.register_instance(
                runtime::DsKind::List, "List<Int64>", {"Bench", "MT", t}));
        const auto t0 = Clock::now();
        {
            std::vector<std::thread> workers;
            for (unsigned t = 0; t < threads; ++t) {
                workers.emplace_back([&session, &ids, t] {
                    const runtime::InstanceId id = ids[t];
                    for (std::size_t i = 0; i < kOpsPerRound; ++i)
                        session.record(id, runtime::OpKind::Add,
                                       static_cast<std::int64_t>(i),
                                       static_cast<std::uint32_t>(i + 1));
                });
            }
            for (auto& w : workers) w.join();
        }
        const auto t1 = Clock::now();
        session.stop();
        best = std::min(best, ns_per_op(t0, t1, kOpsPerRound * threads));
    }
    return best;
}

struct Result {
    std::string name;
    double ns;
};

/// Telemetry on/off delta for one capture mode, measured back-to-back so
/// ambient drift hits both sides equally.
struct ObsDelta {
    std::string name;
    double off_ns = 0;
    double on_ns = 0;

    [[nodiscard]] double overhead_pct() const {
        return off_ns > 0 ? (on_ns - off_ns) / off_ns * 100.0 : 0.0;
    }
};

ObsDelta bench_obs_delta(runtime::CaptureMode mode, const char* name,
                         int rounds) {
    auto& reg = obs::MetricsRegistry::global();
    ObsDelta delta;
    delta.name = name;
    delta.off_ns = 1e100;
    delta.on_ns = 1e100;
    // Interleave off/on rounds, alternating which side goes first, so
    // ambient drift (frequency, page cache, allocator state) and short
    // quiet windows on a shared machine hit both sides equally instead of
    // masquerading as telemetry cost.
    for (int r = 0; r < rounds; ++r) {
        const bool on_first = (r & 1) != 0;
        reg.set_enabled(on_first);
        const double first = bench_record(mode, 1);
        reg.set_enabled(!on_first);
        const double second = bench_record(mode, 1);
        delta.off_ns = std::min(delta.off_ns, on_first ? second : first);
        delta.on_ns = std::min(delta.on_ns, on_first ? first : second);
    }
    reg.set_enabled(false);
    reg.reset();
    return delta;
}

/// Span-recorder on/off delta for one capture mode.  The metrics registry
/// stays enabled on both sides so the measured difference is the trace
/// recorder alone, on top of a realistically instrumented capture path.
ObsDelta bench_trace_delta(runtime::CaptureMode mode, const char* name,
                           int rounds) {
    auto& reg = obs::MetricsRegistry::global();
    auto& tracer = obs::TraceRecorder::global();
    reg.set_enabled(true);
    ObsDelta delta;
    delta.name = name;
    delta.off_ns = 1e100;
    delta.on_ns = 1e100;
    for (int r = 0; r < rounds; ++r) {
        const bool on_first = (r & 1) != 0;
        tracer.set_enabled(on_first);
        const double first = bench_record(mode, 1);
        tracer.set_enabled(!on_first);
        const double second = bench_record(mode, 1);
        delta.off_ns = std::min(delta.off_ns, on_first ? second : first);
        delta.on_ns = std::min(delta.on_ns, on_first ? first : second);
        // Drop the spans the on-side buffered so every round starts from
        // the same recorder and allocator state; without this, chunk
        // allocations accumulate across rounds and read as phantom
        // capture-path overhead on the off side too.
        tracer.set_enabled(false);
        tracer.reset();
    }
    tracer.set_enabled(false);
    reg.set_enabled(false);
    reg.reset();
    return delta;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_capture.json";
    const int rounds = argc > 2 ? std::atoi(argv[2]) : 9;

    // Measure the trace-recorder delta FIRST, in a pristine process: the
    // other sections churn gigabytes through the allocator, and on small
    // machines the resulting heap/page layout biases the buffered-mode
    // loop by several percent — dwarfing the sub-1% effect under
    // measurement.  (The delta loop itself still interleaves off/on
    // rounds, so ambient drift cancels.)  Output files keep their order.
    std::vector<ObsDelta> trace_deltas;
    trace_deltas.push_back(bench_trace_delta(runtime::CaptureMode::Buffered,
                                             "record_buffered", rounds));
    trace_deltas.push_back(bench_trace_delta(runtime::CaptureMode::Streaming,
                                             "record_streaming", rounds));
    obs::TraceRecorder::global().reset();

    std::vector<Result> results;
    const double plain = bench_plain_list(rounds);
    results.push_back({"plain_list_add", plain});
    results.push_back({"null_session_list_add", bench_null_session(rounds)});
    results.push_back(
        {"record_buffered", bench_record(runtime::CaptureMode::Buffered,
                                         rounds)});
    results.push_back(
        {"record_streaming", bench_record(runtime::CaptureMode::Streaming,
                                          rounds)});
    results.push_back(
        {"list_add_buffered",
         bench_profiled_list(runtime::CaptureMode::Buffered, rounds)});
    results.push_back(
        {"list_add_streaming",
         bench_profiled_list(runtime::CaptureMode::Streaming, rounds)});
    results.push_back(
        {"record_buffered_mt4",
         bench_record_mt(runtime::CaptureMode::Buffered, 4, rounds)});
    results.push_back(
        {"record_streaming_mt4",
         bench_record_mt(runtime::CaptureMode::Streaming, 4, rounds)});

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("capture_overhead: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"capture_overhead\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"ops_per_round\": %zu,\n", kOpsPerRound);
    std::fprintf(f, "  \"rounds\": %d,\n", rounds);
    std::fprintf(f, "  \"seq_block_size\": %llu,\n",
                 static_cast<unsigned long long>(
                     runtime::ProfilingSession::kSeqBlockSize));
    std::fprintf(f, "  \"timestamp_stride\": %u,\n",
                 runtime::ProfilingSession::kTimestampStride);
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result& res = results[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"ns_per_op\": %.2f, "
                     "\"slowdown_vs_plain\": %.2f}%s\n",
                     res.name.c_str(), res.ns,
                     plain > 0 ? res.ns / plain : 0.0,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    for (const Result& res : results)
        std::printf("%-24s %10.2f ns/op  (%5.1fx plain)\n", res.name.c_str(),
                    res.ns, plain > 0 ? res.ns / plain : 0.0);
    std::printf("wrote %s\n", out_path.c_str());

    // Self-telemetry cost: the identical record() loop with the metrics
    // registry off vs on (instrumentation rides the cold branches, so the
    // delta should stay in the noise).
    const std::string obs_path = argc > 3 ? argv[3] : "BENCH_obs.json";
    std::vector<ObsDelta> deltas;
    deltas.push_back(bench_obs_delta(runtime::CaptureMode::Buffered,
                                     "record_buffered", rounds));
    deltas.push_back(bench_obs_delta(runtime::CaptureMode::Streaming,
                                     "record_streaming", rounds));

    std::FILE* fo = std::fopen(obs_path.c_str(), "w");
    if (fo == nullptr) {
        std::perror("capture_overhead: fopen");
        return 1;
    }
    std::fprintf(fo, "{\n  \"benchmark\": \"obs_overhead\",\n");
    std::fprintf(fo, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(fo, "  \"ops_per_round\": %zu,\n", kOpsPerRound);
    std::fprintf(fo, "  \"rounds\": %d,\n", rounds);
    std::fprintf(fo, "  \"results\": [\n");
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        const ObsDelta& d = deltas[i];
        std::fprintf(fo,
                     "    {\"name\": \"%s\", \"ns_per_op_off\": %.2f, "
                     "\"ns_per_op_on\": %.2f, \"overhead_pct\": %.2f}%s\n",
                     d.name.c_str(), d.off_ns, d.on_ns, d.overhead_pct(),
                     i + 1 < deltas.size() ? "," : "");
    }
    std::fprintf(fo, "  ]\n}\n");
    std::fclose(fo);

    for (const ObsDelta& d : deltas)
        std::printf("%-24s off %8.2f  on %8.2f ns/op  (%+.2f%%)\n",
                    d.name.c_str(), d.off_ns, d.on_ns, d.overhead_pct());
    std::printf("wrote %s\n", obs_path.c_str());

    // Span-tracing cost: record() with the trace recorder off vs on
    // (measured at the top of main, see the comment there).  The hot
    // path gains no tracing code at all (spans ride the cold seq-refill
    // and drain branches only), so the acceptance bound is <=2%.
    const std::string trace_path = argc > 4 ? argv[4] : "BENCH_trace_obs.json";
    std::FILE* ft = std::fopen(trace_path.c_str(), "w");
    if (ft == nullptr) {
        std::perror("capture_overhead: fopen");
        return 1;
    }
    std::fprintf(ft, "{\n  \"benchmark\": \"trace_obs_overhead\",\n");
    std::fprintf(ft, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(ft, "  \"ops_per_round\": %zu,\n", kOpsPerRound);
    std::fprintf(ft, "  \"rounds\": %d,\n", rounds);
    std::fprintf(ft, "  \"acceptance_bound_pct\": 2.0,\n");
    std::fprintf(ft, "  \"results\": [\n");
    for (std::size_t i = 0; i < trace_deltas.size(); ++i) {
        const ObsDelta& d = trace_deltas[i];
        std::fprintf(ft,
                     "    {\"name\": \"%s\", \"ns_per_op_off\": %.2f, "
                     "\"ns_per_op_on\": %.2f, \"overhead_pct\": %.2f}%s\n",
                     d.name.c_str(), d.off_ns, d.on_ns, d.overhead_pct(),
                     i + 1 < trace_deltas.size() ? "," : "");
    }
    std::fprintf(ft, "  ]\n}\n");
    std::fclose(ft);

    for (const ObsDelta& d : trace_deltas)
        std::printf("%-24s off %8.2f  on %8.2f ns/op  (%+.2f%%)\n",
                    d.name.c_str(), d.off_ns, d.on_ns, d.overhead_pct());
    std::printf("wrote %s\n", trace_path.c_str());
    return 0;
}
