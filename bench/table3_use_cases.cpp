// Table III — listing of the 66 use cases in the evaluation programs by
// category (LI, IQ, SAI, FS, FLR).
//
// Every program's Table III workload is replayed and analyzed; the
// measured per-category counts are printed next to the published ones.
#include <array>
#include <iostream>

#include "core/dsspy.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "support/table.hpp"

int main() {
    using namespace dsspy;
    using core::UseCaseKind;
    using support::Table;

    std::cout << "Table III - Use cases by category (measured / paper)\n\n";
    Table table({"Application", "LI", "IQ", "SAI", "FS", "FLR", "Sum"});

    std::array<std::size_t, 5> measured_totals{};
    std::array<std::size_t, 5> paper_totals{};

    auto cell = [](std::size_t measured, std::size_t paper) {
        if (measured == paper)
            return measured == 0 ? std::string(".")
                                 : std::to_string(measured);
        return std::to_string(measured) + " (" + std::to_string(paper) +
               ")";
    };

    for (const corpus::ProgramModel* program : corpus::eval_programs()) {
        runtime::ProfilingSession session;
        corpus::run_eval_workload(*program, &session, 42);
        session.stop();
        const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);
        const auto counts = analysis.use_case_counts();

        const std::array<std::size_t, 5> measured = {
            counts[static_cast<std::size_t>(UseCaseKind::LongInsert)],
            counts[static_cast<std::size_t>(UseCaseKind::ImplementQueue)],
            counts[static_cast<std::size_t>(UseCaseKind::SortAfterInsert)],
            counts[static_cast<std::size_t>(UseCaseKind::FrequentSearch)],
            counts[static_cast<std::size_t>(UseCaseKind::FrequentLongRead)],
        };
        const auto& paper = program->eval_use_cases;

        std::size_t measured_sum = 0;
        for (std::size_t c = 0; c < 5; ++c) {
            measured_totals[c] += measured[c];
            paper_totals[c] += paper[c];
            measured_sum += measured[c];
        }
        table.add_row({program->name, cell(measured[0], paper[0]),
                       cell(measured[1], paper[1]),
                       cell(measured[2], paper[2]),
                       cell(measured[3], paper[3]),
                       cell(measured[4], paper[4]),
                       std::to_string(measured_sum)});
    }

    table.add_separator();
    std::size_t grand_measured = 0;
    std::size_t grand_paper = 0;
    std::vector<std::string> total_row = {"Total"};
    for (std::size_t c = 0; c < 5; ++c) {
        total_row.push_back(std::to_string(measured_totals[c]) + " / " +
                            std::to_string(paper_totals[c]));
        grand_measured += measured_totals[c];
        grand_paper += paper_totals[c];
    }
    total_row.push_back(std::to_string(grand_measured) + " / " +
                        std::to_string(grand_paper));
    table.add_row(total_row);
    table.print(std::cout);

    std::cout << "\nPaper column totals: LI 49, IQ 3, SAI 1, FS 3, FLR 10 "
                 "(66 use cases in total).\n"
              << "Cells show measured counts; parenthesized values mark "
                 "deviations from the paper.\n";
    return 0;
}
