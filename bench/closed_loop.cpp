// Closed-loop evaluation: self-adapting containers vs fixed baselines.
//
// The paper's loop is profile -> classify -> programmer applies the
// remedy; DESIGN.md §15 closes it in-process: AdaptiveList /
// AdaptiveDictionary fold their own access stream, reclassify
// periodically, and migrate their backing at safe points.  This bench
// quantifies that loop on workloads modeled after the paper's
// evaluation programs, pitting each adaptive container against the
// fixed container a programmer would have reached for first:
//
//   * file_search   — FileSearcher-shaped: load entries, then rounds of
//     listing reads plus point searches.  Frequent-Search should flip
//     the list to the Indexed backing (value -> index dictionary),
//     turning O(n) IndexOf scans into O(1) lookups.
//   * message_queue — producer/consumer on a List: append at the back,
//     peek-and-pop at the front.  Implement-Queue should flip the
//     backing to a deque, turning O(n) front removals into O(1) pops.
//   * word_index    — WordWheelSolver-shaped reverse lookups on a
//     dictionary: key gets plus value -> key searches.  Frequent-Search
//     on the dense entry view should build the reverse index.
//   * phase_change  — alternating search / queue phases; not a speed
//     race but a thrash gauge: the hysteresis controller must converge
//     in at most three switches instead of chasing every phase.
//
// Every workload is one templated driver, so the identical operation
// sequence runs against the baseline, the adaptive container, and (for
// list workloads) a ProfiledList whose trace feeds the offline
// post-mortem engine — the bench asserts the adaptive verdicts match
// that offline analysis exactly (zero divergence) and that checksums
// agree, then writes BENCH_closed_loop.json.  Machine note: the wins
// measured here are algorithmic (index lookups, deque pops), so they
// hold on a single hardware thread.
//
// Usage: closed_loop [output.json]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adapt/adaptive_dictionary.hpp"
#include "adapt/adaptive_list.hpp"
#include "core/detector_kernels.hpp"
#include "core/dsspy.hpp"
#include "core/use_cases.hpp"
#include "ds/dictionary.hpp"
#include "ds/list.hpp"
#include "ds/profiled_list.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/session.hpp"

namespace {

using namespace dsspy;
using Clock = std::chrono::steady_clock;

// --- workload drivers --------------------------------------------------------
// Templated over the container so baseline, adaptive, and profiled runs
// execute the exact same operation sequence.  Entry loads interleave a
// progress read every 64 appends — the realistic "update the UI while
// loading" shape — which also keeps insert runs below the Long-Insert
// phase threshold so the search/queue verdicts are the story here (the
// phase_change workload exercises verdict succession instead).

/// FileSearcher: load a directory table, then repeated listing reads
/// plus point searches for known names.
template <typename ListT>
std::uint64_t run_file_search(ListT& list) {
    constexpr std::size_t kEntries = 8192;
    constexpr int kRounds = 50;
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < kEntries; ++i) {
        list.add(static_cast<long>(i * 7 + 1));
        if (i % 64 == 63)
            checksum += static_cast<std::uint64_t>(list.get(i));
    }
    for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < 200; ++k)  // sequential listing reads
            checksum += static_cast<std::uint64_t>(
                list.get((static_cast<std::size_t>(round) * 113 + k) %
                         kEntries));
        for (int k = 0; k < 200; ++k) {  // scattered point searches
            const std::size_t target =
                (static_cast<std::size_t>(round) * 53 + k * 97u) % kEntries;
            checksum += static_cast<std::uint64_t>(
                list.index_of(static_cast<long>(target * 7 + 1)));
        }
    }
    return checksum;
}

/// Producer/consumer queue on a List: append back, peek and pop front.
template <typename ListT>
std::uint64_t run_message_queue(ListT& list) {
    constexpr std::size_t kDepth = 32768;
    constexpr int kMessages = 30000;
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < kDepth; ++i) {
        list.add(static_cast<long>(i));
        if (i % 64 == 63)
            checksum += static_cast<std::uint64_t>(list.get(i));
    }
    for (int i = 0; i < kMessages; ++i) {
        list.add(static_cast<long>(kDepth) + i);
        checksum += static_cast<std::uint64_t>(list.get(0));
        list.remove_at(0);
    }
    return checksum;
}

/// Alternating search-heavy and queue-heavy phases: the thrash gauge.
template <typename ListT>
std::uint64_t run_phase_change(ListT& list) {
    constexpr std::size_t kEntries = 1024;
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < kEntries; ++i) {
        list.add(static_cast<long>(i * 3 + 1));
        if (i % 64 == 63)
            checksum += static_cast<std::uint64_t>(list.get(i));
    }
    long next = static_cast<long>(kEntries) * 3 + 1;
    for (int phase = 0; phase < 4; ++phase) {
        if (phase % 2 == 0) {
            for (int round = 0; round < 12; ++round)
                for (int k = 0; k < 96; ++k) {
                    checksum += static_cast<std::uint64_t>(list.get(
                        (static_cast<std::size_t>(round) * 29 + k) %
                        list.count()));
                    checksum += static_cast<std::uint64_t>(
                        list.index_of(static_cast<long>(
                            ((static_cast<std::size_t>(round) * 31 +
                              k * 89u) %
                             kEntries) *
                                3 +
                            1)));
                }
        } else {
            for (int i = 0; i < 1152; ++i) {
                list.add(next++);
                checksum += static_cast<std::uint64_t>(list.get(0));
                list.remove_at(0);
            }
        }
    }
    return checksum;
}

/// WordWheelSolver-shaped dictionary use: key gets in insertion order
/// plus value -> key reverse searches.  Values are distinct so the
/// first-key-wins answer is unambiguous across backings.
template <typename DictT>
std::uint64_t run_word_index(DictT& dict) {
    constexpr std::size_t kWords = 8192;
    constexpr int kRounds = 40;
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < kWords; ++i) {
        dict.set(static_cast<long>(i), static_cast<long>(i * 11 + 5));
        if (i % 64 == 63)
            checksum += static_cast<std::uint64_t>(
                dict.get(static_cast<long>(i - 1)));
    }
    for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < 300; ++k)  // in-order key gets
            checksum += static_cast<std::uint64_t>(dict.get(static_cast<long>(
                (static_cast<std::size_t>(round) * 113 + k) % kWords)));
        for (int k = 0; k < 300; ++k) {  // reverse value -> key searches
            const std::size_t target =
                (static_cast<std::size_t>(round) * 53 + k * 97u) % kWords;
            const std::optional<long> key =
                dict.find_key(static_cast<long>(target * 11 + 5));
            checksum += key ? static_cast<std::uint64_t>(*key) : 0u;
        }
    }
    return checksum;
}

/// The fixed dictionary a programmer writes first: O(1) key lookup via
/// a position map, linear scan for value -> key — exactly the adaptive
/// dictionary's Sequential strategy, minus the profiling.
struct PlainWordIndex {
    std::vector<std::pair<long, long>> entries;
    ds::Dictionary<long, std::size_t> pos;

    void set(long key, long value) {
        std::size_t idx = 0;
        if (pos.try_get(key, idx)) {
            entries[idx].second = value;
            return;
        }
        pos.set(key, entries.size());
        entries.emplace_back(key, value);
    }
    [[nodiscard]] long get(long key) const {
        std::size_t idx = 0;
        if (!pos.try_get(key, idx)) return 0;
        return entries[idx].second;
    }
    [[nodiscard]] std::optional<long> find_key(long value) const {
        for (const auto& [k, v] : entries)
            if (v == value) return k;
        return std::nullopt;
    }
    [[nodiscard]] std::size_t count() const { return entries.size(); }
};

// --- measurement -------------------------------------------------------------

constexpr int kReps = 3;

struct WorkloadResult {
    std::string name;
    double baseline_ms = 0.0;
    double adaptive_ms = 0.0;
    std::uint64_t baseline_checksum = 0;
    std::uint64_t adaptive_checksum = 0;
    std::string final_strategy;
    std::size_t switches = 0;
    std::size_t suppressed = 0;
    std::size_t events_folded = 0;
    int verdict_divergence = -1;  // -1: not measured (no profiled twin)
    std::vector<std::string> verdicts;

    [[nodiscard]] double speedup() const {
        return adaptive_ms > 0.0 ? baseline_ms / adaptive_ms : 0.0;
    }
    [[nodiscard]] bool checksums_equal() const {
        return baseline_checksum == adaptive_checksum;
    }
};

/// Best-of-kReps wall-clock of `fn()`; every rep builds fresh state.
template <typename Fn>
double best_ms(Fn fn, std::uint64_t* checksum) {
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = Clock::now();
        const std::uint64_t sum = fn();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        if (rep == 0 || ms < best) best = ms;
        *checksum = sum;
    }
    return best;
}

std::multiset<core::UseCaseKind> verdict_kinds(
    const std::vector<core::UseCase>& use_cases) {
    std::multiset<core::UseCaseKind> kinds;
    for (const core::UseCase& uc : use_cases) kinds.insert(uc.kind);
    return kinds;
}

/// Run the same list workload through a ProfiledList and the offline
/// post-mortem engine; return its verdict-kind multiset.
template <typename Workload>
std::multiset<core::UseCaseKind> offline_kinds(Workload workload) {
    runtime::ProfilingSession session;
    ds::ProfiledList<long> profiled(&session,
                                    {"Bench.ClosedLoop", "Offline", 0});
    (void)workload(profiled);
    session.stop();
    const core::AnalysisResult offline = core::Dsspy{}.analyze(session);
    std::multiset<core::UseCaseKind> kinds;
    for (const core::InstanceAnalysis& inst : offline.instances())
        for (const core::UseCase& uc : inst.use_cases)
            kinds.insert(uc.kind);
    return kinds;
}

/// Measure one list workload: ds::List baseline vs AdaptiveList, plus
/// the offline-divergence cross-check.
template <typename Workload>
WorkloadResult run_list_workload(const std::string& name,
                                 Workload workload) {
    WorkloadResult r;
    r.name = name;
    r.baseline_ms = best_ms(
        [&] {
            ds::List<long> list;
            return workload(list);
        },
        &r.baseline_checksum);

    std::vector<core::UseCase> verdicts;
    r.adaptive_ms = best_ms(
        [&] {
            adapt::AdaptiveList<long> list;
            const std::uint64_t sum = workload(list);
            r.final_strategy = std::string(strategy_name(list.strategy()));
            r.switches = list.switch_count();
            r.suppressed = list.suppressed_count();
            r.events_folded = static_cast<std::size_t>(list.events_folded());
            verdicts = list.verdicts();
            return sum;
        },
        &r.adaptive_checksum);

    const std::multiset<core::UseCaseKind> adaptive = verdict_kinds(verdicts);
    const std::multiset<core::UseCaseKind> offline = offline_kinds(workload);
    r.verdict_divergence = adaptive == offline ? 0 : 1;
    for (const core::UseCase& uc : verdicts)
        r.verdicts.emplace_back(use_case_name(uc.kind));
    return r;
}

WorkloadResult run_dictionary_workload() {
    WorkloadResult r;
    r.name = "word_index";
    r.baseline_ms = best_ms(
        [&] {
            PlainWordIndex dict;
            return run_word_index(dict);
        },
        &r.baseline_checksum);
    std::vector<core::UseCase> verdicts;
    r.adaptive_ms = best_ms(
        [&] {
            adapt::AdaptiveDictionary<long, long> dict;
            const std::uint64_t sum = run_word_index(dict);
            r.final_strategy = std::string(strategy_name(dict.strategy()));
            r.switches = dict.switch_count();
            r.suppressed = dict.suppressed_count();
            verdicts = dict.verdicts();
            return sum;
        },
        &r.adaptive_checksum);
    for (const core::UseCase& uc : verdicts)
        r.verdicts.emplace_back(use_case_name(uc.kind));
    return r;
}

// --- output ------------------------------------------------------------------

void write_workload_json(std::FILE* f, const WorkloadResult& r, bool last) {
    std::fprintf(f, "    \"%s\": {\n", r.name.c_str());
    std::fprintf(f, "      \"baseline_ms\": %.3f,\n", r.baseline_ms);
    std::fprintf(f, "      \"adaptive_ms\": %.3f,\n", r.adaptive_ms);
    std::fprintf(f, "      \"speedup\": %.2f,\n", r.speedup());
    std::fprintf(f, "      \"checksums_equal\": %s,\n",
                 r.checksums_equal() ? "true" : "false");
    std::fprintf(f, "      \"final_strategy\": \"%s\",\n",
                 r.final_strategy.c_str());
    std::fprintf(f, "      \"switches\": %zu,\n", r.switches);
    std::fprintf(f, "      \"suppressed_switches\": %zu,\n", r.suppressed);
    if (r.verdict_divergence >= 0)
        std::fprintf(f, "      \"verdict_divergence\": %d,\n",
                     r.verdict_divergence);
    std::fprintf(f, "      \"verdicts\": [");
    for (std::size_t i = 0; i < r.verdicts.size(); ++i)
        std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                     r.verdicts[i].c_str());
    std::fprintf(f, "]\n    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_closed_loop.json";

    std::vector<WorkloadResult> results;
    std::fprintf(stderr, "running file_search...\n");
    results.push_back(run_list_workload(
        "file_search", [](auto& list) { return run_file_search(list); }));
    std::fprintf(stderr, "running message_queue...\n");
    results.push_back(run_list_workload(
        "message_queue",
        [](auto& list) { return run_message_queue(list); }));
    std::fprintf(stderr, "running word_index...\n");
    results.push_back(run_dictionary_workload());
    std::fprintf(stderr, "running phase_change...\n");
    results.push_back(run_list_workload(
        "phase_change", [](auto& list) { return run_phase_change(list); }));

    bool ok = true;
    int over_threshold = 0;
    int divergence_total = 0;
    std::size_t phase_switches = 0;
    for (const WorkloadResult& r : results) {
        std::fprintf(stderr,
                     "  %-13s baseline=%8.3f ms  adaptive=%8.3f ms  "
                     "speedup=%5.2fx  strategy=%s  switches=%zu\n",
                     r.name.c_str(), r.baseline_ms, r.adaptive_ms,
                     r.speedup(), r.final_strategy.c_str(), r.switches);
        if (!r.checksums_equal()) {
            std::fprintf(stderr, "FAIL: %s checksums differ\n",
                         r.name.c_str());
            ok = false;
        }
        if (r.verdict_divergence > 0) {
            std::fprintf(stderr,
                         "FAIL: %s adaptive verdicts diverge from offline "
                         "analysis\n",
                         r.name.c_str());
            ok = false;
        }
        if (r.verdict_divergence >= 0)
            divergence_total += r.verdict_divergence;
        if (r.name == "phase_change") {
            phase_switches = r.switches;
        } else if (r.speedup() > 1.3) {
            ++over_threshold;
        }
    }
    if (over_threshold < 2) {
        std::fprintf(stderr,
                     "FAIL: expected >1.3x speedup on >=2 workloads, got "
                     "%d\n",
                     over_threshold);
        ok = false;
    }
    if (phase_switches < 1 || phase_switches > 3) {
        std::fprintf(stderr,
                     "FAIL: phase_change should switch 1..3 times, "
                     "switched %zu\n",
                     phase_switches);
        ok = false;
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("closed_loop: fopen");
        return 1;
    }
    const std::string_view simd_name = core::kernels::simd_level_name(
        core::kernels::active_simd_level());
    std::fprintf(f, "{\n  \"benchmark\": \"closed_loop\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"threads_setting\": %u,\n",
                 par::ThreadPool::effective_default_threads());
    std::fprintf(f, "  \"simd_level\": \"%.*s\",\n",
                 static_cast<int>(simd_name.size()), simd_name.data());
    std::fprintf(f, "  \"reps\": %d,\n", kReps);
    std::fprintf(f, "  \"speedup_threshold\": 1.3,\n");
    std::fprintf(f, "  \"speedups_over_threshold\": %d,\n", over_threshold);
    std::fprintf(f, "  \"verdict_divergence_total\": %d,\n",
                 divergence_total);
    std::fprintf(f, "  \"phase_change_switches\": %zu,\n", phase_switches);
    std::fprintf(f, "  \"workloads\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i)
        write_workload_json(f, results[i], i + 1 == results.size());
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);

    std::fprintf(stderr, "%s -> %s\n", ok ? "PASS" : "FAIL",
                 out_path.c_str());
    return ok ? 0 : 1;
}
