// Figure 3 — visualization of the index-sequential insert/read profile:
// "The blue line represents an insertion operation that repeatedly adds
// elements.  The read operations ... always occur in ascending order from
// front to end. ... Every time the read index reaches the last element the
// list instance is cleared."
//
// Reproduces that workload, prints the ASCII chart, writes
// figure3_profile.svg, and shows the Insert-Back / Read-Forward patterns
// plus the two use cases (Long-Insert, Frequent-Long-Read) the paper
// derives from it.
#include <iostream>

#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "ds/ds.hpp"
#include "viz/ascii_chart.hpp"
#include "viz/svg.hpp"

int main() {
    using namespace dsspy;

    runtime::ProfilingSession session;
    runtime::InstanceId id;
    {
        ds::ProfiledList<int> list(&session,
                                   {"Paper.Example", "Figure3", 1});
        for (int round = 0; round < 15; ++round) {
            for (int i = 0; i < 120; ++i) list.add(i);
            long sum = 0;
            for (std::size_t i = 0; i < list.count(); ++i)
                sum += list.get(i);
            for (std::size_t i = 0; i < list.count(); ++i)
                sum += list.get(i);
            (void)sum;
            list.clear();
        }
        id = list.instance_id();
    }
    session.stop();

    const core::RuntimeProfile profile(session.registry().info(id),
                                       session.store().events(id));

    std::cout << "Figure 3 - Index-sequential inserts and reads\n\n";
    viz::ChartOptions options;
    options.max_width = 110;
    options.max_height = 14;
    std::cout << viz::render_profile_scatter(profile, options);

    const std::string svg = viz::profile_to_svg(profile);
    if (viz::write_file("figure3_profile.svg", svg))
        std::cout << "\nWrote figure3_profile.svg\n";

    const auto patterns = core::PatternDetector{}.detect(profile);
    std::size_t insert_back = 0;
    std::size_t read_forward = 0;
    for (const core::Pattern& p : patterns) {
        if (p.kind == core::PatternKind::InsertBack) ++insert_back;
        if (p.kind == core::PatternKind::ReadForward) ++read_forward;
    }
    std::cout << "\nPatterns: " << insert_back << "x Insert-Back, "
              << read_forward
              << "x Read-Forward (paper: \"several hundreds times\" over "
                 "the full run)\n\n";

    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);
    std::cout << "Derived use cases (paper: Long-Insert and "
                 "Frequent-Long-Read):\n\n";
    core::print_use_case_report(std::cout, analysis);
    return 0;
}
