// Ablation: minimum pattern run length (min_pattern_events).
//
// The pattern detector only reports runs of adjacent accesses at least
// this long.  Too small and single incidental steps count as regularities;
// too large and short real streaks disappear.  This bench sweeps the knob
// over a mixed workload and reports pattern counts plus detector runtime.
#include <iostream>

#include "core/dsspy.hpp"
#include "ds/ds.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main() {
    using namespace dsspy;
    using support::Table;

    // Mixed workload: clean streaks of several lengths plus random noise.
    runtime::ProfilingSession session;
    runtime::InstanceId id;
    {
        ds::ProfiledList<std::int64_t> list(&session, {"Bench", "Mixed", 1});
        support::Rng rng(99);
        for (int i = 0; i < 512; ++i) list.add(i);
        for (int streak_len : {2, 3, 5, 8, 16, 64, 256}) {
            for (int repeat = 0; repeat < 20; ++repeat) {
                const std::size_t start = rng.next_below(512 - 257);
                for (int i = 0; i < streak_len; ++i)
                    (void)list.get(start + static_cast<std::size_t>(i));
                // Noise access between streaks.
                (void)list.get(rng.next_below(512));
            }
        }
        id = list.instance_id();
    }
    session.stop();

    const core::RuntimeProfile profile(session.registry().info(id),
                                       session.store().events(id));

    std::cout << "Ablation - minimum pattern length over a mixed workload ("
              << profile.total_events() << " events; streak lengths "
                 "2/3/5/8/16/64/256 x20 plus noise)\n\n";

    Table table({"min_pattern_events", "Patterns found", "Pattern events",
                 "Detect time (us)"});
    for (const std::size_t min_len : {2u, 3u, 4u, 6u, 9u, 17u, 65u}) {
        core::DetectorConfig config;
        config.min_pattern_events = min_len;
        const core::PatternDetector detector(config);

        support::Stopwatch sw;
        std::vector<core::Pattern> patterns;
        constexpr int kReps = 50;
        for (int rep = 0; rep < kReps; ++rep)
            patterns = detector.detect(profile);
        const double us = sw.elapsed_ns() / 1e3 / kReps;

        std::size_t covered = 0;
        for (const core::Pattern& p : patterns) covered += p.length;
        table.add_row({std::to_string(min_len),
                       std::to_string(patterns.size()),
                       std::to_string(covered), Table::fmt(us, 1)});
    }
    table.print(std::cout);

    std::cout << "\nReading: the default (3) keeps every intentional streak "
                 ">= 3 while dropping incidental two-step adjacencies; the "
                 "count decreases stepwise as thresholds cross the planted "
                 "streak lengths.\n";
    return 0;
}
