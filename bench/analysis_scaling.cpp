// Post-mortem analysis throughput benchmark.
//
// Builds a synthetic workload (256 instances, ~10.5M access events with
// mixed access patterns), then measures the columnar analysis core
// (DESIGN.md §11) against the pre-columnar AoS reference path:
//
//   * aos_sequential     — Dsspy::analyze_reference, no pool (the seed
//                          implementation; the acceptance baseline)
//   * scalar_sequential  — columnar analyze with SIMD dispatch forced to
//                          the scalar fallback
//   * analyze_sequential — columnar analyze at the detected SIMD level
//   * analyze_pool N     — columnar analyze over event-balanced shards on
//                          an N-thread pool
//
// Every variant's verdicts are digest-checked against the AoS reference;
// the emitted JSON carries the identity flags next to the timings, plus
// hardware/provenance fields (hardware_concurrency, the --threads setting,
// the active SIMD level).  The same harness also times the parallel
// ProfileStore::finalize.
//
// Usage: analysis_scaling [output.json] [rounds]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/detector_kernels.hpp"
#include "core/dsspy.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/profile_store.hpp"

namespace {

using namespace dsspy;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kInstances = 256;
constexpr std::size_t kEventsPerInstance = 40960;  // total 10,485,760

/// Synthesizes one instance's event sequence.  The op mix cycles through
/// four archetypes so the classifier has real work to do: long inserts,
/// insert-then-scan, frequent search, and queue-style FIFO churn.
/// Events mirror the capture layer's recording convention
/// (ds/profiled_containers.hpp): position is the op's landing index and
/// size is the container size AFTER the op — back inserts land at
/// size-1, front removals record the shrunk size.
void synthesize_instance(std::size_t inst, std::uint64_t& seq,
                         std::vector<runtime::AccessEvent>& out) {
    const auto id = static_cast<runtime::InstanceId>(inst);
    std::uint32_t size = 0;
    std::uint64_t time_ns = seq * 50;
    auto emit = [&](runtime::OpKind op, std::int64_t pos) {
        runtime::AccessEvent ev;
        ev.seq = seq++;
        ev.time_ns = time_ns += 50;
        ev.position = pos;
        ev.instance = id;
        ev.size = size;
        ev.op = op;
        ev.thread = static_cast<runtime::ThreadId>(inst % 8);
        out.push_back(ev);
    };
    auto push_back_op = [&] {
        ++size;
        emit(runtime::OpKind::Add, static_cast<std::int64_t>(size) - 1);
    };
    auto pop_front_op = [&] {
        --size;
        emit(runtime::OpKind::RemoveAt, 0);
    };
    switch (inst % 4) {
        case 0:  // long insert run
            for (std::size_t i = 0; i < kEventsPerInstance; ++i)
                push_back_op();
            break;
        case 1:  // insert a block, then forward read sweeps
            for (std::size_t i = 0; i < kEventsPerInstance / 4; ++i)
                push_back_op();
            for (std::size_t sweep = 0; sweep < 3; ++sweep)
                for (std::size_t i = 0; i < kEventsPerInstance / 4; ++i)
                    emit(runtime::OpKind::Get, static_cast<std::int64_t>(i));
            break;
        case 2:  // frequent search over a small container
            for (std::size_t i = 0; i < 64; ++i) push_back_op();
            for (std::size_t i = 64; i < kEventsPerInstance; ++i)
                emit(runtime::OpKind::IndexOf,
                     static_cast<std::int64_t>(i * 7 % 64));
            break;
        default:  // queue churn: bursts of 64 enqueues, then 64 dequeues
            for (std::size_t i = 0; i < kEventsPerInstance / 128; ++i) {
                for (int b = 0; b < 64; ++b) push_back_op();
                for (int b = 0; b < 64; ++b) pop_front_op();
            }
            break;
    }
}

double ms_between(Clock::time_point t0, Clock::time_point t1) {
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                   .count()) /
           1000.0;
}

bool identical(const core::AnalysisResult& a, const core::AnalysisResult& b) {
    if (a.instances().size() != b.instances().size()) return false;
    for (std::size_t i = 0; i < a.instances().size(); ++i) {
        const core::InstanceAnalysis& x = a.instances()[i];
        const core::InstanceAnalysis& y = b.instances()[i];
        if (x.patterns != y.patterns) return false;
        if (x.use_cases != y.use_cases) return false;
        if (x.profile.info() != y.profile.info()) return false;
        if (x.profile.total_events() != y.profile.total_events()) return false;
    }
    return a.total_events() == b.total_events() &&
           a.flagged_instances() == b.flagged_instances();
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_analysis.json";
    const int rounds = argc > 2 ? std::atoi(argv[2]) : 5;

    // --- build the synthetic corpus ----------------------------------------
    std::vector<runtime::InstanceInfo> instances;
    runtime::ProfileStore store;
    std::uint64_t seq = 0;
    std::vector<runtime::AccessEvent> scratch;
    for (std::size_t inst = 0; inst < kInstances; ++inst) {
        runtime::InstanceInfo info;
        info.id = static_cast<runtime::InstanceId>(inst);
        info.kind = inst % 2 == 0 ? runtime::DsKind::List
                                  : runtime::DsKind::Array;
        info.type_name = "List<Int64>";
        info.location = {"Synthetic", "Workload",
                         static_cast<std::uint32_t>(inst)};
        instances.push_back(std::move(info));
        scratch.clear();
        synthesize_instance(inst, seq, scratch);
        store.append(scratch);
    }

    // --- parallel finalize -------------------------------------------------
    double finalize_seq_ms = 1e100;
    double finalize_par_ms = 1e100;
    for (int r = 0; r < rounds; ++r) {
        auto t0 = Clock::now();
        store.finalize(nullptr);
        auto t1 = Clock::now();
        finalize_seq_ms = std::min(finalize_seq_ms, ms_between(t0, t1));
        par::ThreadPool pool(4);
        t0 = Clock::now();
        store.finalize(&pool);
        t1 = Clock::now();
        finalize_par_ms = std::min(finalize_par_ms, ms_between(t0, t1));
    }

    // --- AoS reference baseline (the seed implementation) ------------------
    const core::Dsspy analyzer;
    const core::AnalysisResult reference =
        analyzer.analyze_reference(instances, store);
    double aos_ms = 1e100;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = Clock::now();
        const core::AnalysisResult res =
            analyzer.analyze_reference(instances, store);
        const auto t1 = Clock::now();
        aos_ms = std::min(aos_ms, ms_between(t0, t1));
        if (!identical(reference, res)) {
            std::fprintf(stderr, "FATAL: AoS reference analyze not stable\n");
            return 1;
        }
    }

    // --- columnar, SIMD forced off (mandatory scalar fallback) -------------
    core::kernels::force_simd_level(core::kernels::SimdLevel::Scalar);
    double scalar_ms = 1e100;
    bool scalar_identical = true;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = Clock::now();
        const core::AnalysisResult res = analyzer.analyze(instances, store);
        const auto t1 = Clock::now();
        scalar_ms = std::min(scalar_ms, ms_between(t0, t1));
        scalar_identical = scalar_identical && identical(reference, res);
    }
    core::kernels::reset_forced_simd_level();

    // --- columnar sequential at the detected SIMD level --------------------
    double seq_ms = 1e100;
    bool soa_identical = true;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = Clock::now();
        const core::AnalysisResult res = analyzer.analyze(instances, store);
        const auto t1 = Clock::now();
        seq_ms = std::min(seq_ms, ms_between(t0, t1));
        soa_identical = soa_identical && identical(reference, res);
    }

    // --- columnar over event-balanced shards -------------------------------
    struct PoolResult {
        unsigned threads;
        double ms;
    };
    std::vector<PoolResult> pool_results;
    bool all_identical = true;
    for (const unsigned threads : {1u, 2u, 4u}) {
        par::ThreadPool pool(threads);
        double best = 1e100;
        for (int r = 0; r < rounds; ++r) {
            const auto t0 = Clock::now();
            const core::AnalysisResult res =
                analyzer.analyze(instances, store, &pool);
            const auto t1 = Clock::now();
            best = std::min(best, ms_between(t0, t1));
            if (!identical(reference, res)) {
                all_identical = false;
                std::fprintf(stderr,
                             "FATAL: parallel analyze (%u threads) deviates "
                             "from the AoS reference result\n",
                             threads);
            }
        }
        pool_results.push_back({threads, best});
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("analysis_scaling: fopen");
        return 1;
    }
    const std::string_view simd_name = core::kernels::simd_level_name(
        core::kernels::active_simd_level());
    std::fprintf(f, "{\n  \"benchmark\": \"analysis_scaling\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"threads_setting\": %u,\n",
                 par::ThreadPool::effective_default_threads());
    std::fprintf(f, "  \"simd_level\": \"%.*s\",\n",
                 static_cast<int>(simd_name.size()), simd_name.data());
    std::fprintf(f, "  \"instances\": %zu,\n", kInstances);
    std::fprintf(f, "  \"events\": %llu,\n",
                 static_cast<unsigned long long>(store.total_events()));
    std::fprintf(f, "  \"rounds\": %d,\n", rounds);
    std::fprintf(f, "  \"finalize_sequential_ms\": %.3f,\n", finalize_seq_ms);
    std::fprintf(f, "  \"finalize_pool4_ms\": %.3f,\n", finalize_par_ms);
    std::fprintf(f, "  \"aos_sequential_ms\": %.3f,\n", aos_ms);
    std::fprintf(f, "  \"scalar_sequential_ms\": %.3f,\n", scalar_ms);
    std::fprintf(f, "  \"analyze_sequential_ms\": %.3f,\n", seq_ms);
    std::fprintf(f, "  \"soa_speedup_vs_aos\": %.2f,\n",
                 seq_ms > 0 ? aos_ms / seq_ms : 0.0);
    std::fprintf(f, "  \"analyze_pool\": [\n");
    for (std::size_t i = 0; i < pool_results.size(); ++i) {
        const PoolResult& pr = pool_results[i];
        std::fprintf(f,
                     "    {\"threads\": %u, \"ms\": %.3f, "
                     "\"speedup_vs_sequential\": %.2f, "
                     "\"speedup_vs_aos_sequential\": %.2f}%s\n",
                     pr.threads, pr.ms, pr.ms > 0 ? seq_ms / pr.ms : 0.0,
                     pr.ms > 0 ? aos_ms / pr.ms : 0.0,
                     i + 1 < pool_results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"soa_identical_to_aos\": %s,\n",
                 soa_identical ? "true" : "false");
    std::fprintf(f, "  \"scalar_identical_to_simd\": %s,\n",
                 scalar_identical ? "true" : "false");
    std::fprintf(f, "  \"parallel_identical_to_sequential\": %s\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::printf("events=%llu  aos %.3f ms  scalar %.3f ms  simd(%.*s) %.3f ms",
                static_cast<unsigned long long>(store.total_events()), aos_ms,
                scalar_ms, static_cast<int>(simd_name.size()),
                simd_name.data(), seq_ms);
    for (const PoolResult& pr : pool_results)
        std::printf("  pool%u %.3f ms (%.2fx vs aos)", pr.threads, pr.ms,
                    aos_ms / pr.ms);
    const bool ok = soa_identical && scalar_identical && all_identical;
    std::printf("  identical=%s\n", ok ? "yes" : "NO");
    std::printf("wrote %s\n", out_path.c_str());
    return ok ? 0 : 1;
}
