// Simulated strong scaling of the recommended parallelizations.
//
// Replays the recommendation-target regions of three evaluation apps
// through the virtual-time scheduler (parallel/simulation.hpp) on 1..16
// simulated workers — the 8-worker column is the simulation of the
// paper's testbed, with load imbalance included (unlike plain Amdahl):
//   * Mandelbrot rows: interior rows cost far more than edge rows, so the
//     imbalance tail caps scaling below the core count.
//   * GPdotNET fitness: uniform chromosomes, near-linear region scaling.
//   * WordWheelSolver list chunks: near-uniform scan chunks.
#include <cmath>
#include <iostream>
#include <vector>

#include "parallel/simulation.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace dsspy;

// --- kernels (the regions the DSspy recommendations parallelize) ----------

constexpr std::size_t kWidth = 500;
constexpr std::size_t kHeight = 350;

int mandelbrot_iterate(double cx, double cy) {
    double zx = 0.0;
    double zy = 0.0;
    int iter = 0;
    while (zx * zx + zy * zy < 4.0 && iter < 96) {
        const double tmp = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = tmp;
        ++iter;
    }
    return iter;
}

par::SimulatedSchedule mandelbrot_rows(std::vector<std::int64_t>& image,
                                       std::size_t chunks) {
    return par::simulate_chunks(
        0, kHeight, chunks, [&image](std::size_t lo, std::size_t hi) {
            for (std::size_t y = lo; y < hi; ++y) {
                const double cy = -1.2 + 2.4 * static_cast<double>(y) /
                                             static_cast<double>(kHeight - 1);
                for (std::size_t x = 0; x < kWidth; ++x) {
                    const double cx =
                        -2.2 + 3.2 * static_cast<double>(x) /
                                   static_cast<double>(kWidth - 1);
                    image[y * kWidth + x] = mandelbrot_iterate(cx, cy);
                }
            }
        });
}

double gp_evaluate(std::uint64_t seed, std::size_t points) {
    double acc = 0.5;
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < points; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        acc = acc * 0.999 + static_cast<double>(x >> 40) * 1e-9;
    }
    return acc;
}

par::SimulatedSchedule gp_fitness(std::vector<double>& fitness,
                                  std::size_t chunks) {
    return par::simulate_chunks(
        0, fitness.size(), chunks,
        [&fitness](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                fitness[i] = gp_evaluate(i + 1, 3000);
        });
}

par::SimulatedSchedule wordwheel_scan(const std::vector<std::uint32_t>& words,
                                      std::size_t chunks,
                                      std::size_t& hits) {
    return par::simulate_chunks(
        0, words.size(), chunks,
        [&words, &hits](std::size_t lo, std::size_t hi) {
            std::size_t local = 0;
            for (std::size_t i = lo; i < hi; ++i) {
                // Letter-mask check stands in for the solver predicate.
                if ((words[i] & 0x5551) == (words[i] & 0x5011)) ++local;
            }
            hits += local;
        });
}

}  // namespace

int main() {
    using support::Table;

    std::cout << "Simulated strong scaling of the recommendation targets\n"
              << "(virtual-time list scheduling over measured chunk "
                 "durations; the paper's testbed is the 8-worker column)\n\n";

    static constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8, 16};

    Table table({"Region", "Chunks", "Work (ms)", "x1", "x2", "x4", "x8",
                 "x16", "Imbalance"});

    auto add_region = [&table](const std::string& name,
                               const par::SimulatedSchedule& schedule) {
        std::vector<std::string> row{
            name, std::to_string(schedule.chunk_count()),
            Table::fmt(static_cast<double>(schedule.total_work_ns()) / 1e6)};
        for (const unsigned w : kWorkerCounts)
            row.push_back(Table::fmt(schedule.region_speedup(w)));
        // Imbalance factor: largest chunk over the mean chunk.
        const double mean =
            static_cast<double>(schedule.total_work_ns()) /
            static_cast<double>(schedule.chunk_count());
        row.push_back(Table::fmt(
            static_cast<double>(schedule.critical_chunk_ns()) / mean));
        table.add_row(row);
    };

    {
        std::vector<std::int64_t> image(kWidth * kHeight);
        add_region("Mandelbrot rows (28 chunks)",
                   mandelbrot_rows(image, 28));
        add_region("Mandelbrot rows (350 chunks)",
                   mandelbrot_rows(image, 350));
    }
    {
        std::vector<double> fitness(240);
        add_region("GPdotNET fitness (32 chunks)", gp_fitness(fitness, 32));
    }
    {
        support::Rng rng(9);
        std::vector<std::uint32_t> words(600'000);
        for (auto& w : words) w = static_cast<std::uint32_t>(rng.next());
        std::size_t hits = 0;
        add_region("WordWheel scan (32 chunks)",
                   wordwheel_scan(words, 32, hits));
        if (hits == 0) std::cout << "";  // keep side effect alive
    }

    table.print(std::cout);

    std::cout
        << "\nReading: uniform regions (fitness, scan) approach the worker "
           "count until the chunk count binds; Mandelbrot with coarse "
           "chunks is capped by its imbalance tail (expensive interior "
           "rows), and fine-grained chunking recovers the scaling — the "
           "classic grain-size trade-off behind the paper's recommended "
           "\"split into smaller chunks\" action.\n";
    return 0;
}
