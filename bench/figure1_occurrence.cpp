// Figure 1 — data-structure occurrence: programs (x-axis, grouped by
// domain, ascending by instance count) vs per-type instance counts.
//
// The paper plots stacked counts for List, Dictionary, ArrayList, Stack,
// Queue, and "Rest" (<2% types); we print the same series per program from
// the regex scan of the synthesized sources, plus an ASCII rendition of
// the chart.
#include <algorithm>
#include <iostream>
#include <vector>

#include "corpus/program_model.hpp"
#include "scan/source_synth.hpp"
#include "scan/static_scanner.hpp"
#include "support/table.hpp"
#include "viz/svg.hpp"

int main() {
    using namespace dsspy;
    using runtime::DsKind;
    using support::Table;

    const scan::StaticScanner scanner;

    struct Row {
        const corpus::ProgramModel* model;
        std::array<std::size_t, runtime::kDsKindCount> scanned{};
        std::size_t total = 0;
    };
    std::vector<Row> rows;
    std::uint64_t seed = 1000;
    for (const corpus::ProgramModel* m : corpus::figure1_programs()) {
        scan::ProgramSpec spec;
        spec.name = m->name;
        spec.loc = std::min<std::size_t>(m->loc, 20'000);  // scan speed
        spec.instances = m->instances;
        spec.arrays = m->arrays;
        spec.seed = seed++;
        const auto result =
            scanner.scan_program(scan::synthesize_program(spec));
        Row row;
        row.model = m;
        row.scanned = result.by_kind;
        row.total = result.dynamic_total;
        rows.push_back(row);
    }

    // Paper order: domains sorted by Table I (ascending LOC), programs
    // within a domain ascending by instance count.
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) {
                         return a.model->total_instances <
                                b.model->total_instances;
                     });
    const auto domain_order = corpus::table1_rows();
    std::vector<Row> ordered;
    for (const corpus::DomainRow& d : domain_order)
        for (const Row& r : rows)
            if (r.model->domain == d.domain) ordered.push_back(r);

    auto kind_count = [](const Row& r, DsKind k) {
        return r.scanned[static_cast<std::size_t>(k)];
    };
    auto rest_count = [&](const Row& r) {
        return kind_count(r, DsKind::HashSet) +
               kind_count(r, DsKind::SortedList) +
               kind_count(r, DsKind::SortedSet) +
               kind_count(r, DsKind::SortedDictionary) +
               kind_count(r, DsKind::LinkedList) +
               kind_count(r, DsKind::Hashtable);
    };

    std::cout << "Figure 1 - Data structure occurrence by program "
                 "(scanned from synthesized sources)\n\n";
    Table table({"Program", "Domain", "Sum", "List", "Dictionary",
                 "ArrayList", "Stack", "Queue", "Rest"});
    std::array<std::size_t, 7> totals{};
    for (const Row& r : ordered) {
        table.add_row({r.model->name,
                       std::string(corpus::domain_short_name(
                           r.model->domain)),
                       std::to_string(r.total),
                       std::to_string(kind_count(r, DsKind::List)),
                       std::to_string(kind_count(r, DsKind::Dictionary)),
                       std::to_string(kind_count(r, DsKind::ArrayList)),
                       std::to_string(kind_count(r, DsKind::Stack)),
                       std::to_string(kind_count(r, DsKind::Queue)),
                       std::to_string(rest_count(r))});
        totals[0] += r.total;
        totals[1] += kind_count(r, DsKind::List);
        totals[2] += kind_count(r, DsKind::Dictionary);
        totals[3] += kind_count(r, DsKind::ArrayList);
        totals[4] += kind_count(r, DsKind::Stack);
        totals[5] += kind_count(r, DsKind::Queue);
        totals[6] += rest_count(r);
    }
    table.add_separator();
    table.add_row({"Total (paper: 1960/1275/324/192/49/41/79)", "",
                   std::to_string(totals[0]), std::to_string(totals[1]),
                   std::to_string(totals[2]), std::to_string(totals[3]),
                   std::to_string(totals[4]), std::to_string(totals[5]),
                   std::to_string(totals[6])});
    table.print(std::cout);

    std::cout << "\nList share: "
              << Table::pct(static_cast<double>(totals[1]) /
                            static_cast<double>(totals[0]))
              << " (paper: 65.05%), Dictionary share: "
              << Table::pct(static_cast<double>(totals[2]) /
                            static_cast<double>(totals[0]))
              << " (paper: 16.53%)\n";

    // SVG rendition of the stacked chart.
    {
        std::vector<viz::StackedBar> bars;
        for (const Row& r : ordered) {
            viz::StackedBar bar;
            bar.label = r.model->name;
            bar.segments = {
                static_cast<double>(kind_count(r, DsKind::List)),
                static_cast<double>(kind_count(r, DsKind::Dictionary)),
                static_cast<double>(kind_count(r, DsKind::ArrayList)),
                static_cast<double>(kind_count(r, DsKind::Stack)),
                static_cast<double>(kind_count(r, DsKind::Queue)),
                static_cast<double>(rest_count(r)),
            };
            bars.push_back(std::move(bar));
        }
        const std::string svg = viz::stacked_bars_to_svg(
            bars, {"List", "Dictionary", "ArrayList", "Stack", "Queue",
                   "Rest"});
        if (viz::write_file("figure1_occurrence.svg", svg))
            std::cout << "\nWrote figure1_occurrence.svg\n";
    }

    // ASCII bar chart of per-program totals (log-free, capped height).
    std::cout << "\nOccurrences per program (# = 8 instances):\n";
    for (const Row& r : ordered) {
        const std::size_t bars = r.total / 8 + 1;
        std::cout << "  " << r.model->name;
        for (std::size_t i = r.model->name.size(); i < 22; ++i)
            std::cout << ' ';
        std::cout << std::string(std::min<std::size_t>(bars, 80), '#')
                  << ' ' << r.total << '\n';
    }
    return 0;
}
