// Table I — empirical study: distribution of benchmark programs across
// domains (#programs is implicit in the paper; we print it as well).
//
// Methodology reproduction: for every program model we synthesize C#-like
// sources carrying its published statistics, run the regex-based static
// scanner over them (Section II-A: "We used regular expressions to gather
// the number of data structure instances..."), and aggregate the *scanned*
// counts per domain.  The paper numbers are printed alongside.
#include <iostream>

#include "corpus/program_model.hpp"
#include "scan/source_synth.hpp"
#include "scan/static_scanner.hpp"
#include "support/table.hpp"

int main() {
    using namespace dsspy;
    using support::Table;

    const scan::StaticScanner scanner;

    // Scan synthesized sources per program; collect per-domain aggregates.
    struct DomainAgg {
        std::size_t programs = 0;
        std::size_t instances = 0;
        std::size_t loc = 0;
        std::size_t arrays = 0;
        std::size_t list_members = 0;
        std::size_t classes = 0;
        std::size_t classes_with_member = 0;
    };
    std::array<DomainAgg, static_cast<std::size_t>(corpus::Domain::Count)>
        agg{};

    std::uint64_t seed = 1;
    std::size_t scanned_dynamic_total = 0;
    std::size_t scanned_array_total = 0;
    std::size_t scanned_list_total = 0;
    for (const corpus::ProgramModel* m : corpus::figure1_programs()) {
        scan::ProgramSpec spec;
        spec.name = m->name;
        spec.domain = std::string(corpus::domain_short_name(m->domain));
        spec.loc = m->loc;
        spec.instances = m->instances;
        spec.arrays = m->arrays;
        spec.seed = seed++;
        const scan::SourceProgram program = scan::synthesize_program(spec);
        const scan::ScanResult result = scanner.scan_program(program);

        DomainAgg& d = agg[static_cast<std::size_t>(m->domain)];
        ++d.programs;
        d.instances += result.dynamic_total;
        d.loc += result.loc;
        d.arrays += result.arrays;
        d.list_members += result.list_member_decls;
        d.classes += result.classes;
        d.classes_with_member += result.classes_with_list_member;
        scanned_dynamic_total += result.dynamic_total;
        scanned_array_total += result.arrays;
        scanned_list_total += result.by_kind[static_cast<std::size_t>(
            runtime::DsKind::List)];
    }

    std::cout << "Table I - Empirical study: distribution of benchmark "
                 "programs across domains\n"
              << "(instances = dynamic data-structure instantiations found "
                 "by the regex scanner)\n\n";

    Table table({"Application Domain", "#Prog", "#Instances (scanned)",
                 "#Instances (paper)", "LOC (scanned)", "LOC (paper)"});
    const auto paper_rows = corpus::table1_rows();
    std::size_t tp = 0;
    std::size_t ti = 0;
    std::size_t tl = 0;
    std::size_t tsl = 0;
    for (const corpus::DomainRow& row : paper_rows) {
        const DomainAgg& d = agg[static_cast<std::size_t>(row.domain)];
        table.add_row({std::string(corpus::domain_name(row.domain)) + " (" +
                           std::string(corpus::domain_short_name(
                               row.domain)) +
                           ")",
                       std::to_string(d.programs),
                       std::to_string(d.instances),
                       std::to_string(row.instances),
                       Table::with_commas(static_cast<long long>(d.loc)),
                       Table::with_commas(
                           static_cast<long long>(row.loc))});
        tp += d.programs;
        ti += d.instances;
        tl += row.loc;
        tsl += d.loc;
    }
    table.add_separator();
    table.add_row({"Total", std::to_string(tp), std::to_string(ti), "1,960",
                   Table::with_commas(static_cast<long long>(tsl)),
                   "936,356"});
    table.print(std::cout);

    // The paper's additional headline findings from the same scan.
    std::size_t classes = 0;
    std::size_t classes_with_member = 0;
    for (const DomainAgg& d : agg) {
        classes += d.classes;
        classes_with_member += d.classes_with_member;
    }
    const double lists_arrays_share =
        static_cast<double>(scanned_list_total + scanned_array_total) /
        static_cast<double>(scanned_dynamic_total + scanned_array_total);
    std::cout << "\nArrays found (static data structures): "
              << scanned_array_total << " (paper: 785)\n"
              << "Classes with a list member: " << classes_with_member
              << " of " << classes << " ("
              << Table::pct(static_cast<double>(classes_with_member) /
                            static_cast<double>(classes))
              << "; paper: every third class)\n"
              << "Lists+arrays share of all instances: "
              << Table::pct(lists_arrays_share) << " (paper: >75%)\n";
    return 0;
}
