// Ablation: use-case threshold sensitivity.
//
// The paper states the thresholds were tuned on the 23-program benchmark
// "to yield the best detection quality".  This bench sweeps the three most
// influential thresholds around their published values and re-runs the
// Table III corpus, showing how detection counts move — the published
// values should sit where the counts match the paper's 66 use cases
// without exploding (over-detection) or collapsing (under-detection).
#include <array>
#include <iostream>

#include "core/dsspy.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "support/table.hpp"

namespace {

using namespace dsspy;

/// Total parallel use-case detections over the whole eval corpus.
std::array<std::size_t, 5> run_corpus(const core::DetectorConfig& config) {
    std::array<std::size_t, 5> totals{};
    const core::Dsspy analyzer(config);
    for (const corpus::ProgramModel* program : corpus::eval_programs()) {
        runtime::ProfilingSession session;
        corpus::run_eval_workload(*program, &session, 42);
        session.stop();
        const auto counts = analyzer.analyze(session).use_case_counts();
        totals[0] +=
            counts[static_cast<std::size_t>(core::UseCaseKind::LongInsert)];
        totals[1] += counts[static_cast<std::size_t>(
            core::UseCaseKind::ImplementQueue)];
        totals[2] += counts[static_cast<std::size_t>(
            core::UseCaseKind::SortAfterInsert)];
        totals[3] += counts[static_cast<std::size_t>(
            core::UseCaseKind::FrequentSearch)];
        totals[4] += counts[static_cast<std::size_t>(
            core::UseCaseKind::FrequentLongRead)];
    }
    return totals;
}

void add_row(support::Table& table, const std::string& label,
             const core::DetectorConfig& config) {
    const auto t = run_corpus(config);
    const std::size_t sum = t[0] + t[1] + t[2] + t[3] + t[4];
    table.add_row({label, std::to_string(t[0]), std::to_string(t[1]),
                   std::to_string(t[2]), std::to_string(t[3]),
                   std::to_string(t[4]), std::to_string(sum)});
}

}  // namespace

int main() {
    using support::Table;

    std::cout << "Ablation - threshold sensitivity on the Table III corpus "
                 "(paper totals: LI 49, IQ 3, SAI 1, FS 3, FLR 10, sum "
                 "66)\n\n";

    {
        std::cout << "Long-Insert minimum phase length "
                     "(li_min_phase_events; paper: 100):\n";
        Table table({"config", "LI", "IQ", "SAI", "FS", "FLR", "Sum"});
        for (const std::size_t v : {25u, 50u, 100u, 200u, 400u}) {
            core::DetectorConfig config;
            config.li_min_phase_events = v;
            config.sai_min_phase_events = v;
            add_row(table, "min_phase=" + std::to_string(v), config);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "Frequent-Long-Read minimum pattern count "
                     "(flr_min_read_patterns; paper: 10):\n";
        Table table({"config", "LI", "IQ", "SAI", "FS", "FLR", "Sum"});
        for (const std::size_t v : {2u, 5u, 10u, 20u, 40u}) {
            core::DetectorConfig config;
            config.flr_min_read_patterns = v;
            add_row(table, "min_patterns=" + std::to_string(v), config);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "Frequent-Search minimum search count "
                     "(fs_min_search_ops; paper: 1000):\n";
        Table table({"config", "LI", "IQ", "SAI", "FS", "FLR", "Sum"});
        for (const std::size_t v : {50u, 200u, 1000u, 2000u, 5000u}) {
            core::DetectorConfig config;
            config.fs_min_search_ops = v;
            add_row(table, "min_searches=" + std::to_string(v), config);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "Long-Insert minimum runtime share "
                     "(li_min_insert_share; paper: 0.30):\n";
        Table table({"config", "LI", "IQ", "SAI", "FS", "FLR", "Sum"});
        for (const double v : {0.05, 0.15, 0.30, 0.50, 0.80}) {
            core::DetectorConfig config;
            config.li_min_insert_share = v;
            add_row(table, "min_share=" + support::Table::fmt(v, 2), config);
        }
        table.print(std::cout);
    }

    std::cout << "\nReading: at the paper's defaults every category matches "
                 "the published counts; loosening thresholds over-detects "
                 "(noise instances get flagged), tightening under-detects "
                 "(real use cases are missed).\n";
    return 0;
}
