// Table II — access-pattern predominance: recurring regularities on common
// data structures in the 15-program study subset, and the parallel use
// cases that result from them.
//
// Each program's workload is replayed through the profiled containers;
// DSspy's pattern detector then counts instances with recurring patterns
// ("contains regularity") and the use-case engine counts parallel use
// cases — the measured columns should reproduce the published ones.
#include <iostream>

#include "core/dsspy.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "support/table.hpp"

int main() {
    using namespace dsspy;
    using support::Table;

    std::cout << "Table II - Recurring regularities on common data "
                 "structures in 15 programs\n\n";
    Table table({"Application", "Domain", "LOC", "Regularities (measured)",
                 "(paper)", "Parallel UCs (measured)", "(paper)"});

    std::size_t total_loc = 0;
    std::size_t total_reg = 0;
    std::size_t total_par = 0;
    std::size_t paper_reg = 0;
    std::size_t paper_par = 0;

    for (const corpus::ProgramModel* program : corpus::study15_programs()) {
        runtime::ProfilingSession session;
        corpus::run_study15_workload(*program, &session, 2014);
        session.stop();
        const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);

        std::size_t regularities = 0;
        std::size_t parallel_ucs = 0;
        for (const core::InstanceAnalysis& ia : analysis.instances()) {
            if (!ia.patterns.empty()) ++regularities;
            for (const core::UseCase& uc : ia.use_cases)
                if (uc.parallel_potential()) ++parallel_ucs;
        }

        table.add_row({program->name,
                       std::string(corpus::domain_name(program->domain)),
                       Table::with_commas(
                           static_cast<long long>(program->loc)),
                       std::to_string(regularities),
                       std::to_string(program->recurring_regularities),
                       std::to_string(parallel_ucs),
                       std::to_string(program->parallel_use_cases)});
        total_loc += program->loc;
        total_reg += regularities;
        total_par += parallel_ucs;
        paper_reg += program->recurring_regularities;
        paper_par += program->parallel_use_cases;
    }
    table.add_separator();
    table.add_row({"Total", "",
                   Table::with_commas(static_cast<long long>(total_loc)),
                   std::to_string(total_reg), std::to_string(paper_reg),
                   std::to_string(total_par), std::to_string(paper_par)});
    table.print(std::cout);
    std::cout << "\nPaper totals: 72,613 LOC, 81 recurring regularities, "
                 "41 parallel use cases.\n";
    return 0;
}
