file(REMOVE_RECURSE
  "CMakeFiles/multithreaded_profiling.dir/multithreaded_profiling.cpp.o"
  "CMakeFiles/multithreaded_profiling.dir/multithreaded_profiling.cpp.o.d"
  "multithreaded_profiling"
  "multithreaded_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithreaded_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
