# Empty dependencies file for multithreaded_profiling.
# This may be replaced when dependencies are built.
