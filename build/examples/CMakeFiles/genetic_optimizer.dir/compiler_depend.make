# Empty compiler generated dependencies file for genetic_optimizer.
# This may be replaced when dependencies are built.
