file(REMOVE_RECURSE
  "CMakeFiles/genetic_optimizer.dir/genetic_optimizer.cpp.o"
  "CMakeFiles/genetic_optimizer.dir/genetic_optimizer.cpp.o.d"
  "genetic_optimizer"
  "genetic_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genetic_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
