# Empty dependencies file for selective_profiler.
# This may be replaced when dependencies are built.
