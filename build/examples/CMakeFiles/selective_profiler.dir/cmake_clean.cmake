file(REMOVE_RECURSE
  "CMakeFiles/selective_profiler.dir/selective_profiler.cpp.o"
  "CMakeFiles/selective_profiler.dir/selective_profiler.cpp.o.d"
  "selective_profiler"
  "selective_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
