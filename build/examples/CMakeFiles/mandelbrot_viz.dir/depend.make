# Empty dependencies file for mandelbrot_viz.
# This may be replaced when dependencies are built.
