file(REMOVE_RECURSE
  "CMakeFiles/mandelbrot_viz.dir/mandelbrot_viz.cpp.o"
  "CMakeFiles/mandelbrot_viz.dir/mandelbrot_viz.cpp.o.d"
  "mandelbrot_viz"
  "mandelbrot_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandelbrot_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
