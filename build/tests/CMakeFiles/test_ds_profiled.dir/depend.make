# Empty dependencies file for test_ds_profiled.
# This may be replaced when dependencies are built.
