file(REMOVE_RECURSE
  "CMakeFiles/test_ds_profiled.dir/test_ds_profiled.cpp.o"
  "CMakeFiles/test_ds_profiled.dir/test_ds_profiled.cpp.o.d"
  "test_ds_profiled"
  "test_ds_profiled.pdb"
  "test_ds_profiled[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ds_profiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
