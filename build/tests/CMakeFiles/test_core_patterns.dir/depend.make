# Empty dependencies file for test_core_patterns.
# This may be replaced when dependencies are built.
