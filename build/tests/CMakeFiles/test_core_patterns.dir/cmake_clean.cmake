file(REMOVE_RECURSE
  "CMakeFiles/test_core_patterns.dir/test_core_patterns.cpp.o"
  "CMakeFiles/test_core_patterns.dir/test_core_patterns.cpp.o.d"
  "test_core_patterns"
  "test_core_patterns.pdb"
  "test_core_patterns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
