# Empty compiler generated dependencies file for test_core_use_cases.
# This may be replaced when dependencies are built.
