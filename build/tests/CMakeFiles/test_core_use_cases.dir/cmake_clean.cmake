file(REMOVE_RECURSE
  "CMakeFiles/test_core_use_cases.dir/test_core_use_cases.cpp.o"
  "CMakeFiles/test_core_use_cases.dir/test_core_use_cases.cpp.o.d"
  "test_core_use_cases"
  "test_core_use_cases.pdb"
  "test_core_use_cases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_use_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
