
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_use_cases.cpp" "tests/CMakeFiles/test_core_use_cases.dir/test_core_use_cases.cpp.o" "gcc" "tests/CMakeFiles/test_core_use_cases.dir/test_core_use_cases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsspy_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dsspy_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dsspy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/dsspy_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/dsspy_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/dsspy_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/dsspy_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dsspy_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
