# Empty dependencies file for test_ds_containers.
# This may be replaced when dependencies are built.
