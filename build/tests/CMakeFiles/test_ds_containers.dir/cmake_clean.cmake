file(REMOVE_RECURSE
  "CMakeFiles/test_ds_containers.dir/test_ds_containers.cpp.o"
  "CMakeFiles/test_ds_containers.dir/test_ds_containers.cpp.o.d"
  "test_ds_containers"
  "test_ds_containers.pdb"
  "test_ds_containers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ds_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
