file(REMOVE_RECURSE
  "CMakeFiles/test_ds_detail.dir/test_ds_detail.cpp.o"
  "CMakeFiles/test_ds_detail.dir/test_ds_detail.cpp.o.d"
  "test_ds_detail"
  "test_ds_detail.pdb"
  "test_ds_detail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ds_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
