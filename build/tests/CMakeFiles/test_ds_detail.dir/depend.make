# Empty dependencies file for test_ds_detail.
# This may be replaced when dependencies are built.
