file(REMOVE_RECURSE
  "CMakeFiles/test_transform_plan.dir/test_transform_plan.cpp.o"
  "CMakeFiles/test_transform_plan.dir/test_transform_plan.cpp.o.d"
  "test_transform_plan"
  "test_transform_plan.pdb"
  "test_transform_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
