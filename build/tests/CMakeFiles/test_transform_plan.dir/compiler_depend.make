# Empty compiler generated dependencies file for test_transform_plan.
# This may be replaced when dependencies are built.
