file(REMOVE_RECURSE
  "CMakeFiles/test_config_parse.dir/test_config_parse.cpp.o"
  "CMakeFiles/test_config_parse.dir/test_config_parse.cpp.o.d"
  "test_config_parse"
  "test_config_parse.pdb"
  "test_config_parse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
