file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_list.dir/test_parallel_list.cpp.o"
  "CMakeFiles/test_parallel_list.dir/test_parallel_list.cpp.o.d"
  "test_parallel_list"
  "test_parallel_list.pdb"
  "test_parallel_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
