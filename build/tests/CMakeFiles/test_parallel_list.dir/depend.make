# Empty dependencies file for test_parallel_list.
# This may be replaced when dependencies are built.
