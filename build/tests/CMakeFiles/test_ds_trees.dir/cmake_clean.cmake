file(REMOVE_RECURSE
  "CMakeFiles/test_ds_trees.dir/test_ds_trees.cpp.o"
  "CMakeFiles/test_ds_trees.dir/test_ds_trees.cpp.o.d"
  "test_ds_trees"
  "test_ds_trees.pdb"
  "test_ds_trees[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ds_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
