# Empty dependencies file for test_ds_trees.
# This may be replaced when dependencies are built.
