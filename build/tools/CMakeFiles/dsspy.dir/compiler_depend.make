# Empty compiler generated dependencies file for dsspy.
# This may be replaced when dependencies are built.
