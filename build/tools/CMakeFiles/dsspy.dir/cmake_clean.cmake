file(REMOVE_RECURSE
  "CMakeFiles/dsspy.dir/dsspy_cli.cpp.o"
  "CMakeFiles/dsspy.dir/dsspy_cli.cpp.o.d"
  "dsspy"
  "dsspy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
