file(REMOVE_RECURSE
  "libdsspy_apps.a"
)
