
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/algorithmia.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/algorithmia.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/algorithmia.cpp.o.d"
  "/root/repo/src/apps/app_registry.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/app_registry.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/app_registry.cpp.o.d"
  "/root/repo/src/apps/astrogrep.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/astrogrep.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/astrogrep.cpp.o.d"
  "/root/repo/src/apps/contentfinder.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/contentfinder.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/contentfinder.cpp.o.d"
  "/root/repo/src/apps/cpubench.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/cpubench.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/cpubench.cpp.o.d"
  "/root/repo/src/apps/gpdotnet.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/gpdotnet.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/gpdotnet.cpp.o.d"
  "/root/repo/src/apps/mandelbrot.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/mandelbrot.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/mandelbrot.cpp.o.d"
  "/root/repo/src/apps/text_corpus.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/text_corpus.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/text_corpus.cpp.o.d"
  "/root/repo/src/apps/wordwheel.cpp" "src/apps/CMakeFiles/dsspy_apps.dir/wordwheel.cpp.o" "gcc" "src/apps/CMakeFiles/dsspy_apps.dir/wordwheel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsspy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/dsspy_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsspy_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dsspy_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
