# Empty compiler generated dependencies file for dsspy_apps.
# This may be replaced when dependencies are built.
