file(REMOVE_RECURSE
  "CMakeFiles/dsspy_apps.dir/algorithmia.cpp.o"
  "CMakeFiles/dsspy_apps.dir/algorithmia.cpp.o.d"
  "CMakeFiles/dsspy_apps.dir/app_registry.cpp.o"
  "CMakeFiles/dsspy_apps.dir/app_registry.cpp.o.d"
  "CMakeFiles/dsspy_apps.dir/astrogrep.cpp.o"
  "CMakeFiles/dsspy_apps.dir/astrogrep.cpp.o.d"
  "CMakeFiles/dsspy_apps.dir/contentfinder.cpp.o"
  "CMakeFiles/dsspy_apps.dir/contentfinder.cpp.o.d"
  "CMakeFiles/dsspy_apps.dir/cpubench.cpp.o"
  "CMakeFiles/dsspy_apps.dir/cpubench.cpp.o.d"
  "CMakeFiles/dsspy_apps.dir/gpdotnet.cpp.o"
  "CMakeFiles/dsspy_apps.dir/gpdotnet.cpp.o.d"
  "CMakeFiles/dsspy_apps.dir/mandelbrot.cpp.o"
  "CMakeFiles/dsspy_apps.dir/mandelbrot.cpp.o.d"
  "CMakeFiles/dsspy_apps.dir/text_corpus.cpp.o"
  "CMakeFiles/dsspy_apps.dir/text_corpus.cpp.o.d"
  "CMakeFiles/dsspy_apps.dir/wordwheel.cpp.o"
  "CMakeFiles/dsspy_apps.dir/wordwheel.cpp.o.d"
  "libdsspy_apps.a"
  "libdsspy_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
