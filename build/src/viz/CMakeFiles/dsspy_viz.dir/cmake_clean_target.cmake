file(REMOVE_RECURSE
  "libdsspy_viz.a"
)
