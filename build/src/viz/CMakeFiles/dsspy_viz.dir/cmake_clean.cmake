file(REMOVE_RECURSE
  "CMakeFiles/dsspy_viz.dir/ascii_chart.cpp.o"
  "CMakeFiles/dsspy_viz.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/dsspy_viz.dir/html_report.cpp.o"
  "CMakeFiles/dsspy_viz.dir/html_report.cpp.o.d"
  "CMakeFiles/dsspy_viz.dir/svg.cpp.o"
  "CMakeFiles/dsspy_viz.dir/svg.cpp.o.d"
  "libdsspy_viz.a"
  "libdsspy_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
