# Empty compiler generated dependencies file for dsspy_viz.
# This may be replaced when dependencies are built.
