# Empty compiler generated dependencies file for dsspy_core.
# This may be replaced when dependencies are built.
