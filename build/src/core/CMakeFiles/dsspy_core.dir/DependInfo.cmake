
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_parse.cpp" "src/core/CMakeFiles/dsspy_core.dir/config_parse.cpp.o" "gcc" "src/core/CMakeFiles/dsspy_core.dir/config_parse.cpp.o.d"
  "/root/repo/src/core/dsspy.cpp" "src/core/CMakeFiles/dsspy_core.dir/dsspy.cpp.o" "gcc" "src/core/CMakeFiles/dsspy_core.dir/dsspy.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/dsspy_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/dsspy_core.dir/export.cpp.o.d"
  "/root/repo/src/core/patterns.cpp" "src/core/CMakeFiles/dsspy_core.dir/patterns.cpp.o" "gcc" "src/core/CMakeFiles/dsspy_core.dir/patterns.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/dsspy_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/dsspy_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/dsspy_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/dsspy_core.dir/report.cpp.o.d"
  "/root/repo/src/core/transform_plan.cpp" "src/core/CMakeFiles/dsspy_core.dir/transform_plan.cpp.o" "gcc" "src/core/CMakeFiles/dsspy_core.dir/transform_plan.cpp.o.d"
  "/root/repo/src/core/use_cases.cpp" "src/core/CMakeFiles/dsspy_core.dir/use_cases.cpp.o" "gcc" "src/core/CMakeFiles/dsspy_core.dir/use_cases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/dsspy_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsspy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
