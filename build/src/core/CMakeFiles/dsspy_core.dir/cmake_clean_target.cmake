file(REMOVE_RECURSE
  "libdsspy_core.a"
)
