file(REMOVE_RECURSE
  "CMakeFiles/dsspy_core.dir/config_parse.cpp.o"
  "CMakeFiles/dsspy_core.dir/config_parse.cpp.o.d"
  "CMakeFiles/dsspy_core.dir/dsspy.cpp.o"
  "CMakeFiles/dsspy_core.dir/dsspy.cpp.o.d"
  "CMakeFiles/dsspy_core.dir/export.cpp.o"
  "CMakeFiles/dsspy_core.dir/export.cpp.o.d"
  "CMakeFiles/dsspy_core.dir/patterns.cpp.o"
  "CMakeFiles/dsspy_core.dir/patterns.cpp.o.d"
  "CMakeFiles/dsspy_core.dir/profile.cpp.o"
  "CMakeFiles/dsspy_core.dir/profile.cpp.o.d"
  "CMakeFiles/dsspy_core.dir/report.cpp.o"
  "CMakeFiles/dsspy_core.dir/report.cpp.o.d"
  "CMakeFiles/dsspy_core.dir/transform_plan.cpp.o"
  "CMakeFiles/dsspy_core.dir/transform_plan.cpp.o.d"
  "CMakeFiles/dsspy_core.dir/use_cases.cpp.o"
  "CMakeFiles/dsspy_core.dir/use_cases.cpp.o.d"
  "libdsspy_core.a"
  "libdsspy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
