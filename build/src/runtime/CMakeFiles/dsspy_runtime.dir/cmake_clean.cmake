file(REMOVE_RECURSE
  "CMakeFiles/dsspy_runtime.dir/instance_registry.cpp.o"
  "CMakeFiles/dsspy_runtime.dir/instance_registry.cpp.o.d"
  "CMakeFiles/dsspy_runtime.dir/profile_store.cpp.o"
  "CMakeFiles/dsspy_runtime.dir/profile_store.cpp.o.d"
  "CMakeFiles/dsspy_runtime.dir/session.cpp.o"
  "CMakeFiles/dsspy_runtime.dir/session.cpp.o.d"
  "CMakeFiles/dsspy_runtime.dir/trace_io.cpp.o"
  "CMakeFiles/dsspy_runtime.dir/trace_io.cpp.o.d"
  "libdsspy_runtime.a"
  "libdsspy_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
