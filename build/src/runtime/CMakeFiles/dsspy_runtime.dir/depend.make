# Empty dependencies file for dsspy_runtime.
# This may be replaced when dependencies are built.
