file(REMOVE_RECURSE
  "libdsspy_runtime.a"
)
