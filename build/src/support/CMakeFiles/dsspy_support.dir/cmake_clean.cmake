file(REMOVE_RECURSE
  "CMakeFiles/dsspy_support.dir/stats.cpp.o"
  "CMakeFiles/dsspy_support.dir/stats.cpp.o.d"
  "CMakeFiles/dsspy_support.dir/strings.cpp.o"
  "CMakeFiles/dsspy_support.dir/strings.cpp.o.d"
  "CMakeFiles/dsspy_support.dir/table.cpp.o"
  "CMakeFiles/dsspy_support.dir/table.cpp.o.d"
  "libdsspy_support.a"
  "libdsspy_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
