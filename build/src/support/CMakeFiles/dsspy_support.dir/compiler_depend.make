# Empty compiler generated dependencies file for dsspy_support.
# This may be replaced when dependencies are built.
