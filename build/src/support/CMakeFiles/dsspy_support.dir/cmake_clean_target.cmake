file(REMOVE_RECURSE
  "libdsspy_support.a"
)
