
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/source_synth.cpp" "src/scan/CMakeFiles/dsspy_scan.dir/source_synth.cpp.o" "gcc" "src/scan/CMakeFiles/dsspy_scan.dir/source_synth.cpp.o.d"
  "/root/repo/src/scan/static_scanner.cpp" "src/scan/CMakeFiles/dsspy_scan.dir/static_scanner.cpp.o" "gcc" "src/scan/CMakeFiles/dsspy_scan.dir/static_scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsspy_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dsspy_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
