file(REMOVE_RECURSE
  "libdsspy_scan.a"
)
