# Empty compiler generated dependencies file for dsspy_scan.
# This may be replaced when dependencies are built.
