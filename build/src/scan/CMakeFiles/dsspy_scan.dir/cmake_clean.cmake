file(REMOVE_RECURSE
  "CMakeFiles/dsspy_scan.dir/source_synth.cpp.o"
  "CMakeFiles/dsspy_scan.dir/source_synth.cpp.o.d"
  "CMakeFiles/dsspy_scan.dir/static_scanner.cpp.o"
  "CMakeFiles/dsspy_scan.dir/static_scanner.cpp.o.d"
  "libdsspy_scan.a"
  "libdsspy_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
