file(REMOVE_RECURSE
  "libdsspy_parallel.a"
)
