file(REMOVE_RECURSE
  "CMakeFiles/dsspy_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/dsspy_parallel.dir/thread_pool.cpp.o.d"
  "libdsspy_parallel.a"
  "libdsspy_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
