# Empty compiler generated dependencies file for dsspy_parallel.
# This may be replaced when dependencies are built.
