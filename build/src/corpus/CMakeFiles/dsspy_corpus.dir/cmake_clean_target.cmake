file(REMOVE_RECURSE
  "libdsspy_corpus.a"
)
