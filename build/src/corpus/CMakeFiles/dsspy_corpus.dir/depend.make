# Empty dependencies file for dsspy_corpus.
# This may be replaced when dependencies are built.
