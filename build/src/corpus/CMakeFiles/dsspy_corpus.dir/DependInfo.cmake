
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/program_model.cpp" "src/corpus/CMakeFiles/dsspy_corpus.dir/program_model.cpp.o" "gcc" "src/corpus/CMakeFiles/dsspy_corpus.dir/program_model.cpp.o.d"
  "/root/repo/src/corpus/workload.cpp" "src/corpus/CMakeFiles/dsspy_corpus.dir/workload.cpp.o" "gcc" "src/corpus/CMakeFiles/dsspy_corpus.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsspy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/dsspy_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dsspy_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsspy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
