file(REMOVE_RECURSE
  "CMakeFiles/dsspy_corpus.dir/program_model.cpp.o"
  "CMakeFiles/dsspy_corpus.dir/program_model.cpp.o.d"
  "CMakeFiles/dsspy_corpus.dir/workload.cpp.o"
  "CMakeFiles/dsspy_corpus.dir/workload.cpp.o.d"
  "libdsspy_corpus.a"
  "libdsspy_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsspy_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
