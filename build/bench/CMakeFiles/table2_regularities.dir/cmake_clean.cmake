file(REMOVE_RECURSE
  "CMakeFiles/table2_regularities.dir/table2_regularities.cpp.o"
  "CMakeFiles/table2_regularities.dir/table2_regularities.cpp.o.d"
  "table2_regularities"
  "table2_regularities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_regularities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
