# Empty dependencies file for table2_regularities.
# This may be replaced when dependencies are built.
