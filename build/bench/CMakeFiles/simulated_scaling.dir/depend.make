# Empty dependencies file for simulated_scaling.
# This may be replaced when dependencies are built.
