file(REMOVE_RECURSE
  "CMakeFiles/simulated_scaling.dir/simulated_scaling.cpp.o"
  "CMakeFiles/simulated_scaling.dir/simulated_scaling.cpp.o.d"
  "simulated_scaling"
  "simulated_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulated_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
