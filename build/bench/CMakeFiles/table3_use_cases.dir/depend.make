# Empty dependencies file for table3_use_cases.
# This may be replaced when dependencies are built.
