file(REMOVE_RECURSE
  "CMakeFiles/table3_use_cases.dir/table3_use_cases.cpp.o"
  "CMakeFiles/table3_use_cases.dir/table3_use_cases.cpp.o.d"
  "table3_use_cases"
  "table3_use_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_use_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
