file(REMOVE_RECURSE
  "CMakeFiles/table1_empirical_study.dir/table1_empirical_study.cpp.o"
  "CMakeFiles/table1_empirical_study.dir/table1_empirical_study.cpp.o.d"
  "table1_empirical_study"
  "table1_empirical_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_empirical_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
