# Empty dependencies file for table4_evaluation.
# This may be replaced when dependencies are built.
