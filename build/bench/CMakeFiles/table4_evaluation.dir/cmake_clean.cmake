file(REMOVE_RECURSE
  "CMakeFiles/table4_evaluation.dir/table4_evaluation.cpp.o"
  "CMakeFiles/table4_evaluation.dir/table4_evaluation.cpp.o.d"
  "table4_evaluation"
  "table4_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
