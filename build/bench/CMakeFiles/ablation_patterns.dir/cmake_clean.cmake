file(REMOVE_RECURSE
  "CMakeFiles/ablation_patterns.dir/ablation_patterns.cpp.o"
  "CMakeFiles/ablation_patterns.dir/ablation_patterns.cpp.o.d"
  "ablation_patterns"
  "ablation_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
