file(REMOVE_RECURSE
  "CMakeFiles/detection_quality.dir/detection_quality.cpp.o"
  "CMakeFiles/detection_quality.dir/detection_quality.cpp.o.d"
  "detection_quality"
  "detection_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
