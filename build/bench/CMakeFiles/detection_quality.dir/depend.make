# Empty dependencies file for detection_quality.
# This may be replaced when dependencies are built.
