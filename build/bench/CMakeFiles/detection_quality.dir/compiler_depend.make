# Empty compiler generated dependencies file for detection_quality.
# This may be replaced when dependencies are built.
