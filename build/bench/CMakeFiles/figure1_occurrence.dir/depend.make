# Empty dependencies file for figure1_occurrence.
# This may be replaced when dependencies are built.
