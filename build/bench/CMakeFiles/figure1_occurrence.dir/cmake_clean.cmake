file(REMOVE_RECURSE
  "CMakeFiles/figure1_occurrence.dir/figure1_occurrence.cpp.o"
  "CMakeFiles/figure1_occurrence.dir/figure1_occurrence.cpp.o.d"
  "figure1_occurrence"
  "figure1_occurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_occurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
