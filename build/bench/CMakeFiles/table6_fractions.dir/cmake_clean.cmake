file(REMOVE_RECURSE
  "CMakeFiles/table6_fractions.dir/table6_fractions.cpp.o"
  "CMakeFiles/table6_fractions.dir/table6_fractions.cpp.o.d"
  "table6_fractions"
  "table6_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
