# Empty compiler generated dependencies file for table6_fractions.
# This may be replaced when dependencies are built.
