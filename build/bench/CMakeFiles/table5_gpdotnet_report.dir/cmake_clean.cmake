file(REMOVE_RECURSE
  "CMakeFiles/table5_gpdotnet_report.dir/table5_gpdotnet_report.cpp.o"
  "CMakeFiles/table5_gpdotnet_report.dir/table5_gpdotnet_report.cpp.o.d"
  "table5_gpdotnet_report"
  "table5_gpdotnet_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_gpdotnet_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
