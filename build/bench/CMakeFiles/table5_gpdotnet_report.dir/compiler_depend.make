# Empty compiler generated dependencies file for table5_gpdotnet_report.
# This may be replaced when dependencies are built.
