# Empty dependencies file for ablation_capture.
# This may be replaced when dependencies are built.
