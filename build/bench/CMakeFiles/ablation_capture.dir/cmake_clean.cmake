file(REMOVE_RECURSE
  "CMakeFiles/ablation_capture.dir/ablation_capture.cpp.o"
  "CMakeFiles/ablation_capture.dir/ablation_capture.cpp.o.d"
  "ablation_capture"
  "ablation_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
