file(REMOVE_RECURSE
  "CMakeFiles/figure2_profile_viz.dir/figure2_profile_viz.cpp.o"
  "CMakeFiles/figure2_profile_viz.dir/figure2_profile_viz.cpp.o.d"
  "figure2_profile_viz"
  "figure2_profile_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_profile_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
