# Empty compiler generated dependencies file for figure2_profile_viz.
# This may be replaced when dependencies are built.
