# Empty dependencies file for table7_related_work.
# This may be replaced when dependencies are built.
