file(REMOVE_RECURSE
  "CMakeFiles/table7_related_work.dir/table7_related_work.cpp.o"
  "CMakeFiles/table7_related_work.dir/table7_related_work.cpp.o.d"
  "table7_related_work"
  "table7_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
