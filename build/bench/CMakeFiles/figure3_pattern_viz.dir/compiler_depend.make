# Empty compiler generated dependencies file for figure3_pattern_viz.
# This may be replaced when dependencies are built.
