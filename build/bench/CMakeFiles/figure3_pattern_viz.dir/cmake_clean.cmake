file(REMOVE_RECURSE
  "CMakeFiles/figure3_pattern_viz.dir/figure3_pattern_viz.cpp.o"
  "CMakeFiles/figure3_pattern_viz.dir/figure3_pattern_viz.cpp.o.d"
  "figure3_pattern_viz"
  "figure3_pattern_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_pattern_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
