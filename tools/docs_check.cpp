// docs-check: keep the prose honest.
//
// Scans DESIGN.md, docs/USAGE.md, docs/SERVE.md, and README.md for
// inline-backtick references and verifies each against the source of
// truth:
//
//   * `--flag` tokens must appear as string literals in dsspy_cli.cpp
//     or the pipeline layer sources (src/pipeline/) the CLI parses into
//     (so the docs cannot advertise a CLI flag that does not parse);
//   * `dsspy <subcommand>` tokens must name a real subcommand literal;
//   * path-like tokens (`src/core/`, `tests/test_incremental.cpp`,
//     `BENCH_trace.json`, `core/incremental.{hpp,cpp}`) must exist in
//     the repo (also resolved against src/);
//   * `bench/<name>` tokens must name a declared CMake target;
//   * `§N` section references — in the docs and in every comment under
//     src/, tools/, tests/ — must name an existing `## N.` DESIGN.md
//     heading (so renumbering a section cannot strand stale pointers);
//   * `AdviceAction::Name` tokens must name an enumerator of the
//     structured-advice enum in src/core/advice.hpp (so the advice
//     vocabulary the docs advertise cannot drift from the code).
//
// Fenced code blocks are skipped (they show output and shell sessions,
// not references).  Tokens containing spaces, globs, '<>', '::', or
// parentheses are prose, not references, and are ignored.
//
// Usage: docs_check <repo_root>   (exit 0 = docs clean, 1 = stale refs)
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "docs_check: cannot open " << path << '\n';
        std::exit(2);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// All double-quoted string literals in a C++ source file.
std::set<std::string> string_literals(const std::string& source) {
    std::set<std::string> out;
    for (std::size_t i = 0; i < source.size(); ++i) {
        if (source[i] != '"') continue;
        std::string lit;
        for (++i; i < source.size() && source[i] != '"'; ++i) {
            if (source[i] == '\\' && i + 1 < source.size()) ++i;
            lit += source[i];
        }
        out.insert(lit);
    }
    return out;
}

/// Target/test names declared in a CMakeLists.txt.
void collect_cmake_names(const std::string& text, std::set<std::string>& out) {
    static const std::vector<std::string> kIntros = {
        "add_executable(", "add_library(",    "add_test(NAME ",
        "add_test(",       "dsspy_add_bench(", "dsspy_add_test(",
    };
    for (const std::string& intro : kIntros) {
        std::size_t pos = 0;
        while ((pos = text.find(intro, pos)) != std::string::npos) {
            std::size_t j = pos + intro.size();
            while (j < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
            std::string name;
            while (j < text.size() &&
                   (std::isalnum(static_cast<unsigned char>(text[j])) ||
                    text[j] == '_'))
                name += text[j++];
            if (!name.empty() && name != "NAME") out.insert(name);
            pos = j;
        }
    }
}

/// Inline-backtick tokens of a markdown file, fenced blocks excluded.
std::vector<std::string> backtick_tokens(const std::string& text) {
    std::vector<std::string> tokens;
    bool fenced = false;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("```", 0) == 0) {
            fenced = !fenced;
            continue;
        }
        if (fenced) continue;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] != '`') continue;
            const std::size_t end = line.find('`', i + 1);
            if (end == std::string::npos) break;
            tokens.push_back(line.substr(i + 1, end - i - 1));
            i = end;
        }
    }
    return tokens;
}

/// Expand a single `{a,b}` group: "core/x.{hpp,cpp}" -> two paths.
std::vector<std::string> expand_braces(const std::string& token) {
    const std::size_t open = token.find('{');
    const std::size_t close = token.find('}', open);
    if (open == std::string::npos || close == std::string::npos)
        return {token};
    std::vector<std::string> out;
    std::string alts = token.substr(open + 1, close - open - 1);
    std::istringstream parts(alts);
    std::string alt;
    while (std::getline(parts, alt, ','))
        out.push_back(token.substr(0, open) + alt + token.substr(close + 1));
    return out;
}

bool has_known_extension(const std::string& token) {
    static const std::vector<std::string> kExts = {
        ".md",  ".json", ".cpp", ".hpp", ".h",
        ".svg", ".txt",  ".csv", ".dst"};
    for (const std::string& ext : kExts)
        if (token.size() > ext.size() &&
            token.compare(token.size() - ext.size(), ext.size(), ext) == 0)
            return true;
    return false;
}

std::string first_word(const std::string& token) {
    const std::size_t space = token.find(' ');
    return space == std::string::npos ? token : token.substr(0, space);
}

bool contains_any(const std::string& token, const std::string& chars) {
    return token.find_first_of(chars) != std::string::npos;
}

/// Enumerator names of `enum class AdviceAction` in src/core/advice.hpp.
std::set<std::string> advice_action_names(const std::string& source) {
    std::set<std::string> out;
    const std::size_t start = source.find("enum class AdviceAction");
    if (start == std::string::npos) return out;
    const std::size_t open = source.find('{', start);
    const std::size_t close = source.find('}', open);
    if (open == std::string::npos || close == std::string::npos) return out;
    std::size_t i = open + 1;
    while (i < close) {
        while (i < close &&
               !std::isalpha(static_cast<unsigned char>(source[i]))) {
            if (source[i] == '/' && i + 1 < close && source[i + 1] == '/')
                i = source.find('\n', i);  // skip the enumerator comment
            if (i == std::string::npos || i >= close) return out;
            ++i;
        }
        std::string name;
        while (i < close &&
               (std::isalnum(static_cast<unsigned char>(source[i])) ||
                source[i] == '_'))
            name += source[i++];
        if (!name.empty()) out.insert(name);
    }
    return out;
}

/// Section numbers with a `## N.` heading in DESIGN.md.
std::set<int> design_sections(const std::string& design_text) {
    std::set<int> out;
    std::istringstream lines(design_text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("## ", 0) != 0) continue;
        std::size_t i = 3;
        std::string digits;
        while (i < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[i])))
            digits += line[i++];
        if (!digits.empty() && i < line.size() && line[i] == '.')
            out.insert(std::stoi(digits));
    }
    return out;
}

/// Every `§N` reference in `text` (the UTF-8 section sign is the two
/// bytes 0xC2 0xA7).
std::vector<int> section_refs(const std::string& text) {
    static const std::string kSign = "\xc2\xa7";
    std::vector<int> out;
    std::size_t pos = 0;
    while ((pos = text.find(kSign, pos)) != std::string::npos) {
        pos += kSign.size();
        std::string digits;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            digits += text[pos++];
        if (!digits.empty()) out.push_back(std::stoi(digits));
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::cerr << "usage: docs_check <repo_root>\n";
        return 2;
    }
    const fs::path root = argv[1];

    // The CLI is a thin parser over src/pipeline/ (DESIGN.md §10): flag
    // and message literals the docs cite live in either place.
    std::set<std::string> cli_literals =
        string_literals(read_file(root / "tools" / "dsspy_cli.cpp"));
    if (fs::exists(root / "src" / "pipeline"))
        for (const fs::directory_entry& entry :
             fs::directory_iterator(root / "src" / "pipeline")) {
            const std::string ext = entry.path().extension().string();
            if (ext == ".hpp" || ext == ".cpp")
                for (const std::string& lit :
                     string_literals(read_file(entry.path())))
                    cli_literals.insert(lit);
        }

    std::set<std::string> cmake_names;
    for (const char* dir :
         {"", "src", "tests", "tools", "bench", "examples"}) {
        const fs::path lists = root / dir / "CMakeLists.txt";
        if (fs::exists(lists))
            collect_cmake_names(read_file(lists), cmake_names);
        const fs::path sub = root / dir;
        if (std::string(dir) == "src" && fs::exists(sub))
            for (const fs::directory_entry& entry :
                 fs::directory_iterator(sub))
                if (entry.is_directory() &&
                    fs::exists(entry.path() / "CMakeLists.txt"))
                    collect_cmake_names(
                        read_file(entry.path() / "CMakeLists.txt"),
                        cmake_names);
    }

    /// True when some CLI string literal contains `needle`.
    const auto cli_has = [&cli_literals](const std::string& needle) {
        if (cli_literals.count(needle) != 0) return true;
        for (const std::string& lit : cli_literals)
            if (lit.find(needle) != std::string::npos) return true;
        return false;
    };

    const std::set<std::string> advice_actions = advice_action_names(
        read_file(root / "src" / "core" / "advice.hpp"));

    int errors = 0;
    const auto fail = [&errors](const fs::path& doc, const std::string& token,
                                const std::string& why) {
        std::cerr << "docs_check: " << doc.filename().string() << ": `"
                  << token << "` " << why << '\n';
        ++errors;
    };

    const std::vector<fs::path> docs = {root / "DESIGN.md",
                                        root / "docs" / "USAGE.md",
                                        root / "docs" / "SERVE.md",
                                        root / "README.md"};
    for (const fs::path& doc : docs) {
        const std::string text = read_file(doc);
        for (const std::string& token : backtick_tokens(text)) {
            if (token.empty()) continue;

            // CLI flags: `--flag`, `--flag VALUE`, `--key=value`.
            if (token.rfind("--", 0) == 0) {
                const std::string flag = first_word(token);
                const std::string base = flag.substr(0, flag.find('='));
                if (!cli_has(flag) && !cli_has(base))
                    fail(doc, token, "is not a flag in dsspy_cli.cpp");
                continue;
            }

            // Subcommands: `dsspy watch`, `dsspy analyze <trace>`.
            if (token.rfind("dsspy ", 0) == 0) {
                std::istringstream words(token);
                std::string cmd, sub;
                words >> cmd >> sub;
                bool alpha = !sub.empty();
                for (char ch : sub)
                    alpha = alpha &&
                            std::islower(static_cast<unsigned char>(ch));
                if (alpha && cli_literals.count(sub) == 0)
                    fail(doc, token,
                         "names a subcommand missing from dsspy_cli.cpp");
                continue;
            }

            // Advice vocabulary: `AdviceAction::Name` must be an
            // enumerator (checked before the prose filter below, which
            // would skip any token containing "::").
            if (token.rfind("AdviceAction::", 0) == 0) {
                const std::string name = token.substr(14);
                if (name != "Count" && advice_actions.count(name) == 0)
                    fail(doc, token,
                         "is not an AdviceAction enumerator in "
                         "src/core/advice.hpp");
                continue;
            }

            // Prose, code identifiers, globs, env assignments: skip.
            if (contains_any(token, " <>*()@:=\"") ||
                token.front() == '/')
                continue;

            // Bench targets: `bench/<name>` (no extension).
            if (token.rfind("bench/", 0) == 0 && !has_known_extension(token)) {
                const std::string name = token.substr(6);
                if (cmake_names.count(name) == 0)
                    fail(doc, token, "is not a declared CMake target");
                continue;
            }

            // Repo paths: anything with a '/' or a known file extension.
            if (token.find('/') == std::string::npos &&
                !has_known_extension(token))
                continue;
            if (token.find("build/") != std::string::npos) continue;
            bool found = false;
            for (const std::string& candidate : expand_braces(token))
                found = found || fs::exists(root / candidate) ||
                        fs::exists(root / "src" / candidate);
            if (!found) fail(doc, token, "does not exist in the repo");
        }
    }

    // §N references: every section pointer in the docs and in source
    // comments must resolve to a DESIGN.md heading.
    const std::set<int> sections =
        design_sections(read_file(root / "DESIGN.md"));
    const auto check_sections = [&](const fs::path& file) {
        for (const int ref : section_refs(read_file(file)))
            if (sections.count(ref) == 0)
                fail(file, "\xc2\xa7" + std::to_string(ref),
                     "does not match any DESIGN.md `## N.` heading");
    };
    for (const fs::path& doc : docs) check_sections(doc);
    for (const char* dir : {"src", "tools", "tests"})
        for (const fs::directory_entry& entry :
             fs::recursive_directory_iterator(root / dir)) {
            const std::string ext = entry.path().extension().string();
            if (ext == ".hpp" || ext == ".cpp" || ext == ".h")
                check_sections(entry.path());
        }

    if (errors != 0) {
        std::cerr << "docs_check: " << errors << " stale reference(s)\n";
        return 1;
    }
    std::cout << "docs_check: all documentation references resolve\n";
    return 0;
}
