// dsspy — command-line front end for the DSspy analysis pipeline.
//
// Subcommands:
//   dsspy analyze <trace> [output options] [--set key=value ...]
//       Offline analysis of a recorded trace (CSV or DST1 binary; the
//       format is auto-detected — see runtime/trace_io.hpp).  Streams the
//       trace through the incremental analyzer by default; --postmortem
//       loads it whole and runs the post-mortem pipeline (required for
//       --json/--html/--csv-patterns/--plan, which need materialized
//       patterns).
//   dsspy convert <in> <out> [--format=csv|binary]
//       Re-encode a trace (default: to the compact DST1 binary format).
//   dsspy run <app> [--trace FILE [--format=csv|binary]] [output options]
//       Run one of the seven evaluation apps instrumented and analyze it
//       (alias: demo).
//   dsspy watch <app> [--interval-ms N] [output options]
//       Run an app with the incremental analyzer attached and print live
//       snapshots while it runs, then the final report.
//   dsspy corpus <program> [output options]
//       Replay one empirical-study program's workload and analyze it.
//   dsspy metrics <app>
//       Run an app instrumented with self-telemetry enabled and print the
//       profiler's own metrics (Prometheus text by default, --json for the
//       JSON document) including the self-overhead estimate.
//   dsspy list
//       List available demo apps and corpus programs.
//   dsspy config
//       Print all detector thresholds and their defaults.
//
// Output options (default: the Table V style text report):
//   --report          human-readable use-case report (default)
//   --summary         one-line-per-instance table
//   --json            full analysis as JSON on stdout
//   --csv-usecases    use cases as CSV on stdout
//   --csv-instances   per-instance aggregates as CSV on stdout
//   --csv-patterns    detected patterns as CSV on stdout
//   --html FILE       self-contained HTML report with embedded charts
//   --set key=value   override a detector threshold (repeatable)
//
// Self-telemetry (DESIGN.md §9): `--metrics-out=FILE` on any pipeline
// command additionally enables the metrics registry and writes its JSON
// snapshot to FILE when the command finishes.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/config_parse.hpp"
#include "core/dsspy.hpp"
#include "core/export.hpp"
#include "core/report.hpp"
#include "core/transform_plan.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/self_overhead.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/session.hpp"
#include "runtime/trace_io.hpp"
#include "support/table.hpp"
#include "viz/html_report.hpp"

namespace {

using namespace dsspy;

struct Options {
    std::string command;
    std::string target;
    std::string convert_out;
    std::optional<runtime::TraceFormat> format;
    bool report = false;
    bool summary = false;
    bool plan = false;
    bool json = false;
    bool csv_usecases = false;
    bool csv_instances = false;
    bool csv_patterns = false;
    bool incremental = false;  ///< analyze: force the streaming engine.
    bool postmortem = false;   ///< analyze: force the post-mortem engine.
    int interval_ms = 500;     ///< watch: snapshot period.
    std::string html_path;
    std::string trace_path;
    std::string metrics_out;   ///< Write the metrics JSON snapshot here.
    std::vector<std::string> overrides;

    /// Outputs only the post-mortem pipeline can produce (they need
    /// materialized per-pattern data or the full event store).
    [[nodiscard]] bool needs_postmortem() const {
        return json || csv_patterns || plan || !html_path.empty();
    }
};

int usage(const char* argv0) {
    std::cerr
        << "Usage: " << argv0 << " <command> [args]\n\n"
        << "Commands:\n"
        << "  analyze <trace>       analyze a recorded trace offline\n"
        << "                        (CSV or DST1 binary, auto-detected;\n"
        << "                        streamed incrementally by default)\n"
        << "  convert <in> <out>    re-encode a trace (--format, default\n"
        << "                        binary)\n"
        << "  run <app>             run an evaluation app instrumented\n"
        << "                        (alias: demo)\n"
        << "  watch <app>           run an app with live incremental\n"
        << "                        snapshots (--interval-ms, default 500)\n"
        << "  corpus <program>      replay an empirical-study workload\n"
        << "  metrics <app>         run an app and print the profiler's own\n"
        << "                        telemetry (Prometheus text; --json for\n"
        << "                        the JSON document)\n"
        << "  list                  list demo apps and corpus programs\n"
        << "  config                print detector thresholds\n\n"
        << "Output: --report (default) --summary --plan --json --csv-usecases\n"
        << "        --csv-instances --csv-patterns --html FILE\n"
        << "Extras: --trace FILE (run/corpus: also write the raw trace)\n"
        << "        --format=csv|binary (trace encoding for convert/--trace)\n"
        << "        --incremental | --postmortem (analyze: pick the engine)\n"
        << "        --interval-ms N (watch: snapshot period)\n"
        << "        --metrics-out=FILE (enable self-telemetry; write the\n"
        << "        metrics JSON snapshot to FILE on exit)\n"
        << "        --set key=value (threshold override, repeatable)\n";
    return 2;
}

std::optional<Options> parse_args(int argc, char** argv) {
    if (argc < 2) return std::nullopt;
    Options opt;
    opt.command = argv[1];
    int i = 2;
    if (opt.command == "analyze" || opt.command == "run" ||
        opt.command == "demo" || opt.command == "watch" ||
        opt.command == "corpus" || opt.command == "convert" ||
        opt.command == "metrics") {
        if (i >= argc || argv[i][0] == '-') return std::nullopt;
        opt.target = argv[i++];
    }
    if (opt.command == "convert") {
        if (i >= argc || argv[i][0] == '-') return std::nullopt;
        opt.convert_out = argv[i++];
    }
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--report") {
            opt.report = true;
        } else if (arg == "--summary") {
            opt.summary = true;
        } else if (arg == "--plan") {
            opt.plan = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--csv-usecases") {
            opt.csv_usecases = true;
        } else if (arg == "--csv-instances") {
            opt.csv_instances = true;
        } else if (arg == "--csv-patterns") {
            opt.csv_patterns = true;
        } else if (arg == "--html" && i + 1 < argc) {
            opt.html_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            opt.trace_path = argv[++i];
        } else if (arg == "--format=csv") {
            opt.format = runtime::TraceFormat::Csv;
        } else if (arg == "--format=binary") {
            opt.format = runtime::TraceFormat::Binary;
        } else if (arg == "--incremental") {
            opt.incremental = true;
        } else if (arg == "--postmortem") {
            opt.postmortem = true;
        } else if (arg == "--interval-ms" && i + 1 < argc) {
            opt.interval_ms = std::atoi(argv[++i]);
            if (opt.interval_ms <= 0) opt.interval_ms = 500;
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            opt.metrics_out = arg.substr(std::strlen("--metrics-out="));
            if (opt.metrics_out.empty()) {
                std::cerr << "--metrics-out needs a file path\n";
                return std::nullopt;
            }
        } else if (arg == "--set" && i + 1 < argc) {
            opt.overrides.emplace_back(argv[++i]);
        } else {
            std::cerr << "Unknown argument: " << arg << '\n';
            return std::nullopt;
        }
    }
    if (!opt.summary && !opt.plan && !opt.json && !opt.csv_usecases &&
        !opt.csv_instances && !opt.csv_patterns && opt.html_path.empty())
        opt.report = true;
    return opt;
}

void emit_outputs(const Options& opt, const core::AnalysisResult& analysis) {
    if (opt.summary) {
        core::print_instance_summary(std::cout, analysis);
        std::cout << '\n';
    }
    if (opt.report) {
        core::print_use_case_report(std::cout, analysis);
        std::cout << "Search space reduction: "
                  << support::Table::pct(analysis.search_space_reduction())
                  << " (" << analysis.flagged_instances() << " of "
                  << analysis.list_array_instances()
                  << " list/array instances flagged)\n";
    }
    if (opt.plan) {
        const core::TransformPlan plan =
            core::plan_transformations(analysis);
        core::print_transform_plan(std::cout, plan);
    }
    if (opt.json) core::write_analysis_json(std::cout, analysis);
    if (opt.csv_usecases) core::write_use_cases_csv(std::cout, analysis);
    if (opt.csv_instances) core::write_instances_csv(std::cout, analysis);
    if (opt.csv_patterns) core::write_patterns_csv(std::cout, analysis);
    if (!opt.html_path.empty()) {
        if (viz::write_html_report_file(opt.html_path, analysis)) {
            std::cerr << "Wrote " << opt.html_path << '\n';
        } else {
            std::cerr << "Failed to write " << opt.html_path << '\n';
        }
    }
}

/// Streaming-report outputs (the subset the incremental engine supports).
void emit_stream_outputs(const Options& opt,
                         const core::StreamReport& report) {
    if (opt.summary) {
        core::print_instance_summary(std::cout, report);
        std::cout << '\n';
    }
    if (opt.report) {
        core::print_use_case_report(std::cout, report);
        std::cout << "Search space reduction: "
                  << support::Table::pct(report.search_space_reduction())
                  << " (" << report.flagged_instances() << " of "
                  << report.list_array_instances()
                  << " list/array instances flagged)\n";
    }
    if (opt.csv_usecases) core::write_use_cases_csv(std::cout, report);
    if (opt.csv_instances) core::write_instances_csv(std::cout, report);
}

/// Emit the self-telemetry snapshot at command exit: the `metrics`
/// subcommand's stdout document and/or the --metrics-out JSON file.  The
/// self-overhead estimate needs a capture window, so it appears only when
/// a session ran (run/watch/corpus/metrics; offline analyze passes null).
void emit_metrics(const Options& opt,
                  const runtime::ProfilingSession* session) {
    if (!obs::enabled()) return;
    auto& reg = obs::MetricsRegistry::global();
    static const obs::MetricId rss_metric =
        reg.gauge("process.peak_rss_bytes");
    reg.gauge_max(rss_metric, obs::sample_peak_rss_bytes());
    obs::SelfOverhead overhead;
    const obs::SelfOverhead* overhead_ptr = nullptr;
    if (session != nullptr) {
        overhead = obs::estimate_self_overhead(
            session->events_recorded(), session->capture_duration_ns(),
            runtime::ProfilingSession::kTimestampStride);
        overhead_ptr = &overhead;
    }
    const std::vector<obs::MetricValue> metrics = reg.collect();
    if (opt.command == "metrics") {
        if (opt.json) {
            obs::write_metrics_json(std::cout, metrics, overhead_ptr);
        } else {
            obs::write_metrics_prometheus(std::cout, metrics, overhead_ptr);
        }
    }
    if (!opt.metrics_out.empty()) {
        if (obs::write_metrics_json_file(opt.metrics_out, metrics,
                                         overhead_ptr))
            std::cerr << "Wrote metrics to " << opt.metrics_out << '\n';
        else
            std::cerr << "Failed to write metrics to " << opt.metrics_out
                      << '\n';
    }
}

/// The session summary line every capture command prints to stderr;
/// orphan (store-only) events are surfaced when present — they indicate
/// events recorded against ids the registry never issued.
void print_session_summary(const std::string& name, double checksum,
                           const runtime::ProfilingSession& session) {
    std::cerr << name << ": checksum " << checksum << ", "
              << session.store().total_events() << " events";
    const std::size_t orphans = session.orphan_events();
    if (orphans > 0) std::cerr << ", " << orphans << " orphan";
    std::cerr << '\n';
}

/// Feeds a streamed trace into the incremental analyzer, collecting the
/// instance table on the way.  Trace files written by write_trace emit
/// each instance's events in seq order, which is exactly the fold order
/// the analyzer requires.
class AnalyzerTraceSink final : public runtime::TraceSink {
public:
    explicit AnalyzerTraceSink(core::IncrementalAnalyzer& analyzer)
        : analyzer_(analyzer) {}

    void on_instance(const runtime::InstanceInfo& info) override {
        instances.push_back(info);
        analyzer_.declare_instance(info);
    }

    void on_events(std::span<const runtime::AccessEvent> events) override {
        analyzer_.fold(events);
    }

    std::vector<runtime::InstanceInfo> instances;

private:
    core::IncrementalAnalyzer& analyzer_;
};

int cmd_analyze(const Options& opt, const core::Dsspy& analyzer) {
    if (opt.incremental && opt.postmortem) {
        std::cerr << "--incremental and --postmortem are mutually "
                     "exclusive\n";
        return 2;
    }
    if (opt.incremental && opt.needs_postmortem()) {
        std::cerr << "--json/--html/--csv-patterns/--plan need the "
                     "post-mortem engine (drop --incremental)\n";
        return 2;
    }
    const bool streaming = !opt.postmortem && !opt.needs_postmortem();
    if (streaming) {
        // Default path: stream the trace chunk-by-chunk through the
        // incremental analyzer — memory stays bounded by the live-instance
        // state, not the trace size.
        core::IncrementalAnalyzer incremental(analyzer.config());
        AnalyzerTraceSink sink(incremental);
        std::size_t events = 0;
        try {
            events = runtime::read_trace_stream_file(opt.target, sink);
        } catch (const std::runtime_error& e) {
            std::cerr << "Cannot read trace " << opt.target << ": "
                      << e.what() << '\n';
            return 1;
        }
        if (sink.instances.empty() && events == 0) {
            std::cerr << "No trace data in " << opt.target << '\n';
            return 1;
        }
        emit_stream_outputs(opt, incremental.finish(sink.instances));
        emit_metrics(opt, nullptr);
        return 0;
    }
    runtime::Trace trace;
    try {
        trace = runtime::read_trace_file(opt.target,
                                         &par::ThreadPool::default_pool());
    } catch (const std::runtime_error& e) {
        std::cerr << "Cannot read trace " << opt.target << ": " << e.what()
                  << '\n';
        return 1;
    }
    if (trace.instances.empty() && trace.store.total_events() == 0) {
        std::cerr << "No trace data in " << opt.target << '\n';
        return 1;
    }
    const core::AnalysisResult analysis =
        analyzer.analyze(trace.instances, trace.store);
    emit_outputs(opt, analysis);
    emit_metrics(opt, nullptr);
    return 0;
}

int cmd_convert(const Options& opt) {
    const runtime::TraceFormat format =
        opt.format.value_or(runtime::TraceFormat::Binary);
    runtime::Trace trace;
    try {
        trace = runtime::read_trace_file(opt.target,
                                         &par::ThreadPool::default_pool());
    } catch (const std::runtime_error& e) {
        std::cerr << "Cannot read trace " << opt.target << ": " << e.what()
                  << '\n';
        return 1;
    }
    if (!runtime::write_trace_file(opt.convert_out, trace.instances,
                                   trace.store, format)) {
        std::cerr << "Failed to write " << opt.convert_out << '\n';
        return 1;
    }
    std::cerr << "Wrote " << trace.store.total_events() << " events ("
              << (format == runtime::TraceFormat::Binary ? "binary" : "csv")
              << ") to " << opt.convert_out << '\n';
    emit_metrics(opt, nullptr);
    return 0;
}

int cmd_demo(const Options& opt, const core::Dsspy& analyzer) {
    const apps::AppInfo* app = apps::find_app(opt.target);
    if (app == nullptr) {
        std::cerr << "Unknown app: " << opt.target
                  << " (try `dsspy list`)\n";
        return 1;
    }
    runtime::ProfilingSession session;
    const apps::RunResult run = app->run_sequential(&session);
    session.stop();
    print_session_summary(app->name, run.checksum, session);
    if (!opt.trace_path.empty()) {
        if (runtime::write_trace_file(
                opt.trace_path, session,
                opt.format.value_or(runtime::TraceFormat::Csv)))
            std::cerr << "Wrote trace to " << opt.trace_path << '\n';
        else
            std::cerr << "Failed to write trace to " << opt.trace_path
                      << '\n';
    }
    emit_outputs(opt, analyzer.analyze(session));
    emit_metrics(opt, &session);
    return 0;
}

int cmd_watch(const Options& opt, const core::Dsspy& analyzer) {
    const apps::AppInfo* app = apps::find_app(opt.target);
    if (app == nullptr) {
        std::cerr << "Unknown app: " << opt.target
                  << " (try `dsspy list`)\n";
        return 1;
    }
    // Streaming capture with the analyzer folding as the collector drains;
    // AnalysisMode::Incremental keeps the store empty — memory stays
    // bounded however long the workload runs.
    runtime::ProfilingSession session(runtime::CaptureMode::Streaming,
                                      64 * 1024,
                                      runtime::AnalysisMode::Incremental);
    core::IncrementalAnalyzer incremental(analyzer.config());
    core::attach_incremental(session, incremental);

    std::atomic<bool> done{false};
    double checksum = 0;
    std::thread worker([&] {
        checksum = app->run_sequential(&session).checksum;
        done.store(true, std::memory_order_release);
    });
    const auto interval = std::chrono::milliseconds(opt.interval_ms);
    while (!done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(interval);
        const core::StreamReport snap =
            core::Dsspy::snapshot(incremental, session);
        std::cout << "[watch] " << incremental.events_folded()
                  << " events folded, " << snap.total_instances()
                  << " instances, " << snap.all_use_cases().size()
                  << " use cases so far\n";
        if (obs::enabled()) {
            // Watermark lag: events captured but not yet folded — how far
            // the live snapshot trails the workload.
            auto& reg = obs::MetricsRegistry::global();
            static const obs::MetricId lag_metric =
                reg.gauge("incremental.watermark_lag_events");
            const std::uint64_t captured = session.events_recorded();
            const std::uint64_t folded = incremental.events_folded();
            const std::uint64_t lag = captured > folded ? captured - folded
                                                        : 0;
            reg.gauge_max(lag_metric, lag);
            std::cout << "[metrics] captured " << captured
                      << ", watermark lag " << lag << " events, peak rss "
                      << obs::sample_peak_rss_bytes() / 1024 << " KiB\n";
        }
        if (opt.summary) {
            core::print_instance_summary(std::cout, snap);
            std::cout << '\n';
        }
    }
    worker.join();
    session.stop();
    std::cerr << app->name << ": checksum " << checksum << ", "
              << incremental.events_folded() << " events\n";
    emit_stream_outputs(opt, core::Dsspy::finish(incremental, session));
    emit_metrics(opt, &session);
    return 0;
}

int cmd_corpus(const Options& opt, const core::Dsspy& analyzer) {
    const corpus::ProgramModel* program = nullptr;
    for (const corpus::ProgramModel& m : corpus::all_programs())
        if (m.name == opt.target) program = &m;
    if (program == nullptr) {
        std::cerr << "Unknown corpus program: " << opt.target
                  << " (try `dsspy list`)\n";
        return 1;
    }
    runtime::ProfilingSession session;
    if (program->in_eval23) {
        corpus::run_eval_workload(*program, &session);
    } else {
        corpus::run_study15_workload(*program, &session);
    }
    session.stop();
    if (session.orphan_events() > 0)
        std::cerr << program->name << ": " << session.orphan_events()
                  << " orphan events\n";
    if (!opt.trace_path.empty()) {
        if (runtime::write_trace_file(
                opt.trace_path, session,
                opt.format.value_or(runtime::TraceFormat::Csv)))
            std::cerr << "Wrote trace to " << opt.trace_path << '\n';
        else
            std::cerr << "Failed to write trace to " << opt.trace_path
                      << '\n';
    }
    emit_outputs(opt, analyzer.analyze(session));
    emit_metrics(opt, &session);
    return 0;
}

/// `dsspy metrics <app>`: run an instrumented app with self-telemetry
/// forced on (main() enables it before dispatch), run the analysis so the
/// per-stage spans populate, then print the telemetry document itself.
int cmd_metrics(const Options& opt, const core::Dsspy& analyzer) {
    const apps::AppInfo* app = apps::find_app(opt.target);
    if (app == nullptr) {
        std::cerr << "Unknown app: " << opt.target
                  << " (try `dsspy list`)\n";
        return 1;
    }
    runtime::ProfilingSession session;
    const apps::RunResult run = app->run_sequential(&session);
    session.stop();
    print_session_summary(app->name, run.checksum, session);
    // The analysis result is discarded — this command reports on the
    // profiler, not the workload — but running it fills the analyze.*
    // span histograms the document should contain.
    (void)analyzer.analyze(session);
    emit_metrics(opt, &session);
    return 0;
}

int cmd_list() {
    std::cout << "Demo apps (dsspy demo <name>):\n";
    for (const apps::AppInfo& app : apps::evaluation_apps())
        std::cout << "  \"" << app.name << "\" (" << app.domain << ", "
                  << app.paper_instances << " data structures)\n";
    std::cout << "\nCorpus programs (dsspy corpus <name>):\n";
    for (const corpus::ProgramModel& m : corpus::all_programs())
        std::cout << "  " << m.name << " ("
                  << corpus::domain_short_name(m.domain)
                  << (m.in_eval23 ? ", Table III" : "")
                  << (m.in_study15 ? ", Table II" : "") << ")\n";
    return 0;
}

int cmd_config(const core::DetectorConfig& config) {
    std::cout << "Detector thresholds (override with --set key=value):\n";
    for (const std::string& line : core::config_to_strings(config))
        std::cout << "  " << line << '\n';
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const std::optional<Options> opt = parse_args(argc, argv);
    if (!opt) return usage(argv[0]);

    core::DetectorConfig config;
    const std::vector<std::string> rejected =
        core::apply_config_overrides(config, opt->overrides);
    for (const std::string& entry : rejected)
        std::cerr << "Ignoring unknown/invalid override: " << entry << '\n';
    const core::Dsspy analyzer(config);

    // Self-telemetry is opt-in: the registry stays disabled (and every
    // instrumentation site costs one predicted branch) unless asked for.
    if (!opt->metrics_out.empty() || opt->command == "metrics")
        obs::MetricsRegistry::global().set_enabled(true);

    if (opt->command == "analyze") return cmd_analyze(*opt, analyzer);
    if (opt->command == "convert") return cmd_convert(*opt);
    if (opt->command == "run" || opt->command == "demo")
        return cmd_demo(*opt, analyzer);
    if (opt->command == "watch") return cmd_watch(*opt, analyzer);
    if (opt->command == "corpus") return cmd_corpus(*opt, analyzer);
    if (opt->command == "metrics") return cmd_metrics(*opt, analyzer);
    if (opt->command == "list") return cmd_list();
    if (opt->command == "config") return cmd_config(config);
    return usage(argv[0]);
}
