// dsspy — command-line front end for the DSspy analysis pipeline.
//
// The CLI is a thin parser over the pipeline service layer (DESIGN.md
// §10): every subcommand builds a declarative pipeline::RunPlan and hands
// it to pipeline::PipelineRunner; `dsspy batch` builds many plans and runs
// them concurrently through pipeline::run_batch.
//
// Subcommands:
//   dsspy analyze <trace> [output options] [--set key=value ...]
//       Offline analysis of a recorded trace (CSV or DST1 binary; the
//       format is auto-detected — see runtime/trace_io.hpp).  Streams the
//       trace through the incremental analyzer by default; --postmortem
//       loads it whole and runs the post-mortem pipeline (required for
//       --json/--html/--csv-patterns/--plan, which need materialized
//       patterns).
//   dsspy convert <in> <out> [--format=csv|binary]
//       Re-encode a trace (default: to the compact DST1 binary format).
//   dsspy run <app> [--trace FILE [--format=csv|binary]] [output options]
//       Run one of the seven evaluation apps instrumented and analyze it
//       (alias: demo).
//   dsspy watch <app> [--interval-ms N] [output options]
//       Run an app with the incremental analyzer attached and print live
//       snapshots while it runs, then the final report.
//   dsspy corpus <program> [output options]
//       Replay one empirical-study program's workload and analyze it.
//   dsspy batch <target>... [output options] [--threads=N]
//       Run several jobs concurrently, one ProfilingSession each.  A
//       target is an app name, a corpus program name, or a trace path
//       (auto-detected in that order), or explicit with an `app:`,
//       `corpus:`, or `trace:` prefix.  Per-job outputs are buffered and
//       flushed in job order, byte-identical to running the same jobs
//       sequentially.
//   dsspy metrics <app>
//       Run an app instrumented with self-telemetry enabled and print the
//       profiler's own metrics (Prometheus text by default, --json for the
//       JSON document) including the self-overhead estimate.
//   dsspy serve [--listen SPEC] [--max-tenants=N] [--set key=value ...]
//       Host the multi-tenant profiling daemon (docs/SERVE.md, DESIGN.md
//       §12) in the foreground until SIGINT/SIGTERM.  SPEC is unix:PATH
//       (default unix:dsspy.sock) or tcp://host:port (port 0 lets the
//       kernel choose; the resolved address is printed).  Clients stream
//       framed traces over the DSRV protocol; status endpoints answer
//       plain HTTP GETs on the same socket.
//   dsspy push <trace> [--connect SPEC] [--tenant NAME]
//       Send a recorded trace (CSV or DST1) to a running daemon and print
//       the daemon's one-line verdict — `dsspy analyze` executed remotely.
//   dsspy list
//       List available demo apps and corpus programs.
//   dsspy config
//       Print all detector thresholds and the effective thread-pool width.
//
// Output options (default: the Table V style text report):
//   --report          human-readable use-case report (default)
//   --summary         one-line-per-instance table
//   --json            full analysis as JSON on stdout
//   --csv-usecases    use cases as CSV on stdout
//   --csv-instances   per-instance aggregates as CSV on stdout
//   --csv-patterns    detected patterns as CSV on stdout
//   --html FILE       self-contained HTML report with embedded charts
//   --set key=value   override a detector threshold (repeatable)
//   --threads=N       worker threads for analysis parallelism and batch
//                     concurrency (default: hardware concurrency)
//
// Self-telemetry (DESIGN.md §9): `--metrics-out=FILE` on any pipeline
// command additionally enables the metrics registry and writes its JSON
// snapshot to FILE when the command finishes.
//
// Span tracing (DESIGN.md §13): `--trace-spans-out=FILE` on any pipeline
// command (and `dsspy serve`) enables the span recorder and writes the
// recorded span trees as Chrome trace-event / Perfetto JSON to FILE when
// the command finishes; `--slow-op-ms=N` additionally logs a [slow-op]
// stderr line for every span at least N ms long.
//
// Exit codes: 0 success, 1 runtime failure (unknown app/program, missing
// or unwritable file, failed job), 2 usage error (unknown command or flag,
// conflicting options).
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/config_parse.hpp"
#include "core/detector_kernels.hpp"
#include "core/report.hpp"
#include "corpus/program_model.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/self_overhead.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/report_sink.hpp"
#include "pipeline/run_plan.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/serve_plan.hpp"

namespace {

using namespace dsspy;

struct Options {
    std::string command;
    std::string target;
    std::vector<std::string> batch_targets;
    std::string convert_out;
    std::optional<runtime::TraceFormat> format;
    pipeline::OutputSelection outputs;
    bool json = false;         ///< Raw --json flag (metrics doc vs export).
    bool incremental = false;  ///< Force the streaming engine.
    bool postmortem = false;   ///< Force the post-mortem engine.
    int interval_ms = 500;     ///< watch: snapshot period.
    pipeline::ServePlan serve;  ///< serve: daemon configuration.
    pipeline::PushPlan push;    ///< push: client configuration.
    std::string trace_path;
    std::string metrics_out;   ///< Write the metrics JSON snapshot here.
    std::string trace_spans_out;  ///< Write the span-tree JSON here.
    int slow_op_ms = 0;        ///< [slow-op] log threshold (0 = off).
    unsigned threads = 0;      ///< --threads override (0 = hardware).
    std::vector<std::string> overrides;
};

int usage(const char* argv0) {
    std::cerr
        << "Usage: " << argv0 << " <command> [args]\n\n"
        << "Commands:\n"
        << "  analyze <trace>       analyze a recorded trace offline\n"
        << "                        (CSV or DST1 binary, auto-detected;\n"
        << "                        streamed incrementally by default)\n"
        << "  convert <in> <out>    re-encode a trace (--format, default\n"
        << "                        binary)\n"
        << "  run <app>             run an evaluation app instrumented\n"
        << "                        (alias: demo)\n"
        << "  watch <app>           run an app with live incremental\n"
        << "                        snapshots (--interval-ms, default 500)\n"
        << "  corpus <program>      replay an empirical-study workload\n"
        << "  batch <target>...     run several jobs concurrently (targets\n"
        << "                        are app/corpus names or trace paths;\n"
        << "                        app:/corpus:/trace: prefixes override\n"
        << "                        the auto-detection)\n"
        << "  metrics <app>         run an app and print the profiler's own\n"
        << "                        telemetry (Prometheus text; --json for\n"
        << "                        the JSON document)\n"
        << "  serve                 host the multi-tenant profiling daemon\n"
        << "                        (--listen unix:PATH|tcp://host:port,\n"
        << "                        --max-tenants=N, --max-finished-tenants=N,\n"
        << "                        --max-frame-bytes=N, --max-instances=N,\n"
        << "                        --client-timeout-ms=N, --slow-op-ms=N,\n"
        << "                        --trace-spans-out=FILE; docs/SERVE.md)\n"
        << "  push <trace>          send a recorded trace to a daemon\n"
        << "                        (--connect SPEC, --tenant NAME,\n"
        << "                        --frame-bytes=N)\n"
        << "  advise <target>       emit the structured advice document\n"
        << "                        (machine-consumable verdicts: action,\n"
        << "                        confidence, evidence) as JSON; targets\n"
        << "                        resolve like batch targets\n"
        << "  list                  list demo apps and corpus programs\n"
        << "  config                print detector thresholds\n\n"
        << "Output: --report (default) --summary --plan --json --csv-usecases\n"
        << "        --csv-instances --csv-patterns --html FILE\n"
        << "Extras: --trace FILE (run/corpus: also write the raw trace)\n"
        << "        --format=csv|binary (trace encoding for convert/--trace)\n"
        << "        --incremental | --postmortem (pick the engine)\n"
        << "        --interval-ms N (watch: snapshot period)\n"
        << "        --threads=N (analysis/batch worker threads; default\n"
        << "        hardware concurrency — `dsspy config` prints it)\n"
        << "        --metrics-out=FILE (enable self-telemetry; write the\n"
        << "        metrics JSON snapshot to FILE on exit)\n"
        << "        --trace-spans-out=FILE (enable span tracing; write the\n"
        << "        span trees as Chrome trace-event / Perfetto JSON)\n"
        << "        --slow-op-ms=N (log a [slow-op] stderr line for every\n"
        << "        span at least N ms long)\n"
        << "        --set key=value (threshold override, repeatable)\n"
        << "Exit codes: 0 success, 1 runtime failure, 2 usage error\n";
    return pipeline::kExitUsageError;
}

std::optional<Options> parse_args(int argc, char** argv) {
    if (argc < 2) return std::nullopt;
    Options opt;
    opt.command = argv[1];
    int i = 2;
    if (opt.command == "analyze" || opt.command == "run" ||
        opt.command == "demo" || opt.command == "watch" ||
        opt.command == "corpus" || opt.command == "convert" ||
        opt.command == "metrics" || opt.command == "push" ||
        opt.command == "advise") {
        if (i >= argc || argv[i][0] == '-') return std::nullopt;
        opt.target = argv[i++];
    }
    if (opt.command == "convert") {
        if (i >= argc || argv[i][0] == '-') return std::nullopt;
        opt.convert_out = argv[i++];
    }
    if (opt.command == "batch") {
        while (i < argc && argv[i][0] != '-')
            opt.batch_targets.emplace_back(argv[i++]);
        if (opt.batch_targets.empty()) {
            std::cerr << "batch needs at least one target\n";
            return std::nullopt;
        }
    }
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--report") {
            opt.outputs.report = true;
        } else if (arg == "--summary") {
            opt.outputs.summary = true;
        } else if (arg == "--plan") {
            opt.outputs.plan = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--csv-usecases") {
            opt.outputs.csv_usecases = true;
        } else if (arg == "--csv-instances") {
            opt.outputs.csv_instances = true;
        } else if (arg == "--csv-patterns") {
            opt.outputs.csv_patterns = true;
        } else if (arg == "--html" && i + 1 < argc) {
            opt.outputs.html_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            opt.trace_path = argv[++i];
        } else if (arg == "--format=csv") {
            opt.format = runtime::TraceFormat::Csv;
        } else if (arg == "--format=binary") {
            opt.format = runtime::TraceFormat::Binary;
        } else if (arg == "--incremental") {
            opt.incremental = true;
        } else if (arg == "--postmortem") {
            opt.postmortem = true;
        } else if (arg == "--interval-ms" && i + 1 < argc) {
            opt.interval_ms = std::atoi(argv[++i]);
            if (opt.interval_ms <= 0) opt.interval_ms = 500;
        } else if (arg.rfind("--threads=", 0) == 0) {
            const int n = std::atoi(arg.c_str() + std::strlen("--threads="));
            if (n <= 0) {
                std::cerr << "--threads needs a positive thread count\n";
                return std::nullopt;
            }
            opt.threads = static_cast<unsigned>(n);
        } else if (arg == "--threads" && i + 1 < argc) {
            const int n = std::atoi(argv[++i]);
            if (n <= 0) {
                std::cerr << "--threads needs a positive thread count\n";
                return std::nullopt;
            }
            opt.threads = static_cast<unsigned>(n);
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            opt.metrics_out = arg.substr(std::strlen("--metrics-out="));
            if (opt.metrics_out.empty()) {
                std::cerr << "--metrics-out needs a file path\n";
                return std::nullopt;
            }
        } else if (arg.rfind("--trace-spans-out=", 0) == 0) {
            opt.trace_spans_out =
                arg.substr(std::strlen("--trace-spans-out="));
            if (opt.trace_spans_out.empty()) {
                std::cerr << "--trace-spans-out needs a file path\n";
                return std::nullopt;
            }
        } else if (arg.rfind("--slow-op-ms=", 0) == 0) {
            const int n =
                std::atoi(arg.c_str() + std::strlen("--slow-op-ms="));
            if (n <= 0) {
                std::cerr << "--slow-op-ms needs a positive threshold\n";
                return std::nullopt;
            }
            opt.slow_op_ms = n;
        } else if (arg == "--set" && i + 1 < argc) {
            opt.overrides.emplace_back(argv[++i]);
        } else if (arg == "--listen" && i + 1 < argc) {
            opt.serve.listen = argv[++i];
        } else if (arg == "--connect" && i + 1 < argc) {
            opt.push.connect = argv[++i];
        } else if (arg == "--tenant" && i + 1 < argc) {
            opt.push.tenant_name = argv[++i];
        } else if (arg.rfind("--max-tenants=", 0) == 0) {
            const int n = std::atoi(arg.c_str() + std::strlen("--max-tenants="));
            if (n <= 0) {
                std::cerr << "--max-tenants needs a positive count\n";
                return std::nullopt;
            }
            opt.serve.max_tenants = static_cast<std::size_t>(n);
        } else if (arg.rfind("--max-finished-tenants=", 0) == 0) {
            const int n = std::atoi(
                arg.c_str() + std::strlen("--max-finished-tenants="));
            if (n < 0) {
                std::cerr << "--max-finished-tenants needs a count >= 0\n";
                return std::nullopt;
            }
            opt.serve.max_finished_tenants = static_cast<std::size_t>(n);
        } else if (arg.rfind("--max-frame-bytes=", 0) == 0) {
            const long n =
                std::atol(arg.c_str() + std::strlen("--max-frame-bytes="));
            if (n <= 0) {
                std::cerr << "--max-frame-bytes needs a positive size\n";
                return std::nullopt;
            }
            opt.serve.max_frame_bytes = static_cast<std::size_t>(n);
        } else if (arg.rfind("--max-instances=", 0) == 0) {
            const long n =
                std::atol(arg.c_str() + std::strlen("--max-instances="));
            if (n <= 0) {
                std::cerr << "--max-instances needs a positive count\n";
                return std::nullopt;
            }
            opt.serve.max_tenant_instances = static_cast<std::size_t>(n);
        } else if (arg.rfind("--frame-bytes=", 0) == 0) {
            const long n =
                std::atol(arg.c_str() + std::strlen("--frame-bytes="));
            if (n <= 0) {
                std::cerr << "--frame-bytes needs a positive size\n";
                return std::nullopt;
            }
            opt.push.frame_bytes = static_cast<std::size_t>(n);
        } else if (arg.rfind("--client-timeout-ms=", 0) == 0) {
            const int n =
                std::atoi(arg.c_str() + std::strlen("--client-timeout-ms="));
            if (n <= 0) {
                std::cerr << "--client-timeout-ms needs a positive period\n";
                return std::nullopt;
            }
            opt.serve.client_timeout_ms = n;
        } else {
            std::cerr << "Unknown argument: " << arg << '\n';
            return std::nullopt;
        }
    }
    // `metrics` prints the telemetry document, `convert` re-encodes: no
    // default analysis report for either (explicit output flags still
    // work).  Every analysis command defaults to the Table V report.
    const bool analysis_command = opt.command != "metrics" &&
                                  opt.command != "convert" &&
                                  opt.command != "list" &&
                                  opt.command != "config" &&
                                  opt.command != "serve" &&
                                  opt.command != "push";
    // `advise` emits the advice document whether or not --json is given
    // (JSON is its native format); --json does not add the full analysis
    // export on top.
    if (opt.command == "advise") {
        opt.outputs.advice = true;
    } else if (opt.json && opt.command != "metrics") {
        opt.outputs.json = true;
    }
    if (analysis_command && !opt.outputs.any_analysis_output())
        opt.outputs.report = true;
    return opt;
}

/// The shared plan fields every subcommand inherits from the parsed flags.
pipeline::RunPlan base_plan(const Options& opt,
                            const core::DetectorConfig& config) {
    pipeline::RunPlan plan;
    plan.config = config;
    plan.outputs = opt.outputs;
    plan.outputs.metrics_out = opt.metrics_out;
    plan.outputs.trace_spans_out = opt.trace_spans_out;
    if (opt.incremental) plan.engine = pipeline::EngineChoice::Incremental;
    if (opt.postmortem) plan.engine = pipeline::EngineChoice::Postmortem;
    plan.trace_out = opt.trace_path;
    plan.trace_format = opt.format;
    plan.snapshot_interval_ms = opt.interval_ms;
    return plan;
}

/// Resolve one batch target to an input kind: explicit `app:` / `corpus:`
/// / `trace:` prefix, else app name, else corpus program name, else a
/// trace path.
void resolve_batch_target(const std::string& target,
                          pipeline::RunPlan& plan) {
    if (target.rfind("app:", 0) == 0) {
        plan.input = pipeline::InputKind::App;
        plan.target = target.substr(std::strlen("app:"));
        return;
    }
    if (target.rfind("corpus:", 0) == 0) {
        plan.input = pipeline::InputKind::CorpusProgram;
        plan.target = target.substr(std::strlen("corpus:"));
        return;
    }
    if (target.rfind("trace:", 0) == 0) {
        plan.input = pipeline::InputKind::TraceFile;
        plan.target = target.substr(std::strlen("trace:"));
        return;
    }
    plan.target = target;
    if (apps::find_app(target) != nullptr) {
        plan.input = pipeline::InputKind::App;
        return;
    }
    for (const corpus::ProgramModel& m : corpus::all_programs()) {
        if (m.name == target) {
            plan.input = pipeline::InputKind::CorpusProgram;
            return;
        }
    }
    plan.input = pipeline::InputKind::TraceFile;
}

/// The `[watch]` ticker printed between live snapshots, including the
/// self-telemetry line when the registry is enabled.
void print_watch_tick(const Options& opt, const pipeline::WatchTick& tick) {
    std::cout << "[watch] " << tick.events_folded << " events folded, "
              << tick.snapshot.total_instances() << " instances, "
              << tick.snapshot.all_use_cases().size() << " use cases so far\n";
    if (obs::enabled()) {
        // Watermark lag: events captured but not yet folded — how far the
        // live snapshot trails the workload.
        auto& reg = obs::MetricsRegistry::global();
        static const obs::MetricId lag_metric =
            reg.gauge("incremental.watermark_lag_events");
        const std::uint64_t lag = tick.events_captured > tick.events_folded
                                      ? tick.events_captured -
                                            tick.events_folded
                                      : 0;
        reg.gauge_max(lag_metric, lag);
        std::cout << "[metrics] captured " << tick.events_captured
                  << ", watermark lag " << lag << " events, peak rss "
                  << obs::sample_peak_rss_bytes() / 1024 << " KiB";
        if (obs::trace_enabled()) {
            // Live span view: how deep the busiest thread is nested and
            // which open span has been running longest.
            const obs::OpenSpanInfo open =
                obs::TraceRecorder::global().slowest_open_span();
            std::cout << ", span depth " << open.depth << ", slowest open "
                      << (open.name != nullptr ? open.name : "-");
        }
        std::cout << '\n';
    }
    if (opt.outputs.summary) {
        core::print_instance_summary(std::cout, tick.snapshot);
        std::cout << '\n';
    }
}

int cmd_batch(const Options& opt, const core::DetectorConfig& config) {
    // Per-job side files would collide across concurrent jobs: reject.
    if (!opt.trace_path.empty() || !opt.outputs.html_path.empty()) {
        std::cerr << "batch does not support --trace/--html (jobs would "
                     "write the same file)\n";
        return pipeline::kExitUsageError;
    }
    std::vector<pipeline::RunPlan> plans;
    plans.reserve(opt.batch_targets.size());
    for (const std::string& target : opt.batch_targets) {
        pipeline::RunPlan plan = base_plan(opt, config);
        // The combined snapshot is written once after the batch, not once
        // per job.
        plan.outputs.metrics_out.clear();
        plan.outputs.trace_spans_out.clear();
        resolve_batch_target(target, plan);
        if (const std::string problem =
                pipeline::PipelineRunner::validate(plan);
            !problem.empty()) {
            std::cerr << "batch target " << target << ": " << problem << '\n';
            return pipeline::kExitUsageError;
        }
        plans.push_back(std::move(plan));
    }
    const pipeline::PipelineRunner runner;
    const pipeline::BatchSummary summary = pipeline::run_batch(
        runner, plans, opt.threads, std::cout, std::cerr);
    // One combined span file after every job finished: the batch root and
    // each job's tree export together.
    pipeline::write_trace_spans(opt.trace_spans_out, std::cerr);
    if (!opt.metrics_out.empty() && obs::enabled()) {
        const std::vector<obs::MetricValue> metrics =
            obs::MetricsRegistry::global().collect();
        if (obs::write_metrics_json_file(opt.metrics_out, metrics, nullptr))
            std::cerr << "Wrote metrics to " << opt.metrics_out << '\n';
        else
            std::cerr << "Failed to write metrics to " << opt.metrics_out
                      << '\n';
    }
    return summary.exit_code;
}

int cmd_list() {
    std::cout << "Demo apps (dsspy demo <name>):\n";
    for (const apps::AppInfo& app : apps::evaluation_apps())
        std::cout << "  \"" << app.name << "\" (" << app.domain << ", "
                  << app.paper_instances << " data structures)\n";
    std::cout << "\nCorpus programs (dsspy corpus <name>):\n";
    for (const corpus::ProgramModel& m : corpus::all_programs())
        std::cout << "  " << m.name << " ("
                  << corpus::domain_short_name(m.domain)
                  << (m.in_eval23 ? ", Table III" : "")
                  << (m.in_study15 ? ", Table II" : "") << ")\n";
    return pipeline::kExitOk;
}

/// SIGINT/SIGTERM raise this; the serve loop polls it and shuts down
/// cleanly (finalizing streaming tenants as aborted).
std::atomic<bool> g_serve_stop{false};

extern "C" void handle_serve_signal(int) {
    g_serve_stop.store(true, std::memory_order_release);
}

int cmd_serve(const Options& opt, const core::DetectorConfig& config) {
    pipeline::ServePlan plan = opt.serve;
    plan.config = config;
    plan.slow_op_ms = opt.slow_op_ms;
    plan.trace_spans_out = opt.trace_spans_out;
    std::signal(SIGINT, handle_serve_signal);
    std::signal(SIGTERM, handle_serve_signal);
    return pipeline::run_serve(plan, std::cout, std::cerr, g_serve_stop);
}

int cmd_push(const Options& opt) {
    pipeline::PushPlan plan = opt.push;
    plan.trace_path = opt.target;
    return pipeline::run_push(plan, std::cout, std::cerr);
}

int cmd_config(const core::DetectorConfig& config) {
    std::cout << "Detector thresholds (override with --set key=value):\n";
    for (const std::string& line : core::config_to_strings(config))
        std::cout << "  " << line << '\n';
    std::cout << "Thread pool: "
              << par::ThreadPool::effective_default_threads()
              << " worker threads (override with --threads=N)\n";
    std::cout << "SIMD path: "
              << core::kernels::simd_level_name(
                     core::kernels::active_simd_level())
              << " (detector kernels, DESIGN.md §11; force scalar with "
                 "DSSPY_FORCE_SCALAR=1)\n";
    return pipeline::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
    const std::optional<Options> opt = parse_args(argc, argv);
    if (!opt) return usage(argv[0]);

    core::DetectorConfig config;
    const std::vector<std::string> rejected =
        core::apply_config_overrides(config, opt->overrides);
    for (const std::string& entry : rejected)
        std::cerr << "Ignoring unknown/invalid override: " << entry << '\n';

    // --threads plumbs into every pool the process creates: the shared
    // analysis pool (created on first use) and the batch driver pool.
    if (opt->threads != 0)
        par::ThreadPool::set_default_threads(opt->threads);

    // Self-telemetry is opt-in: the registry stays disabled (and every
    // instrumentation site costs one predicted branch) unless asked for.
    if (!opt->metrics_out.empty() || opt->command == "metrics")
        obs::MetricsRegistry::global().set_enabled(true);

    // Span tracing likewise; --slow-op-ms implies it (the slow-op check
    // runs where spans are recorded).  `dsspy serve` enables both in
    // Daemon::start instead, so in-process daemon embedding gets them too.
    if (!opt->trace_spans_out.empty() || opt->slow_op_ms > 0) {
        obs::TraceRecorder::global().set_enabled(true);
        if (opt->slow_op_ms > 0)
            obs::TraceRecorder::global().set_slow_op_threshold_ns(
                static_cast<std::uint64_t>(opt->slow_op_ms) * 1000000u);
    }

    if (opt->command == "list") return cmd_list();
    if (opt->command == "config") return cmd_config(config);
    if (opt->command == "batch") return cmd_batch(*opt, config);
    if (opt->command == "serve") return cmd_serve(*opt, config);
    if (opt->command == "push") return cmd_push(*opt);

    pipeline::RunPlan plan = base_plan(*opt, config);
    plan.target = opt->target;
    if (opt->command == "analyze") {
        if (opt->incremental && opt->postmortem) {
            std::cerr << "--incremental and --postmortem are mutually "
                         "exclusive\n";
            return pipeline::kExitUsageError;
        }
        plan.input = pipeline::InputKind::TraceFile;
    } else if (opt->command == "convert") {
        plan.input = pipeline::InputKind::TraceFile;
        plan.engine = pipeline::EngineChoice::Postmortem;
        plan.trace_out = opt->convert_out;
        plan.trace_note = pipeline::TraceNoteStyle::ConvertNote;
    } else if (opt->command == "run" || opt->command == "demo") {
        plan.input = pipeline::InputKind::App;
    } else if (opt->command == "watch") {
        plan.input = pipeline::InputKind::App;
        plan.watch = true;
    } else if (opt->command == "corpus") {
        plan.input = pipeline::InputKind::CorpusProgram;
    } else if (opt->command == "advise") {
        resolve_batch_target(opt->target, plan);
    } else if (opt->command == "metrics") {
        plan.input = pipeline::InputKind::App;
        plan.outputs.metrics_doc = opt->json ? pipeline::MetricsDoc::Json
                                             : pipeline::MetricsDoc::Prometheus;
    } else {
        return usage(argv[0]);
    }

    const pipeline::PipelineRunner runner;
    const pipeline::WatchCallback on_tick =
        plan.watch ? pipeline::WatchCallback(
                         [&opt](const pipeline::WatchTick& tick) {
                             print_watch_tick(*opt, tick);
                         })
                   : pipeline::WatchCallback();
    const pipeline::RunOutcome outcome =
        runner.run(plan, std::cout, std::cerr, on_tick);
    return outcome.exit_code;
}
