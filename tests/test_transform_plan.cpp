// Tests for the transformation planner and use-case confidence.
#include <gtest/gtest.h>

#include <sstream>

#include "core/transform_plan.hpp"
#include "ds/ds.hpp"

namespace dsspy::core {
namespace {

AnalysisResult make_analysis(runtime::ProfilingSession& session) {
    {
        // Big Long-Insert instance (high impact).
        ds::ProfiledList<int> big(&session, {"Plan.Test", "Big", 1});
        for (int i = 0; i < 5000; ++i) big.add(i);

        // Small Long-Insert instance (low impact).
        ds::ProfiledList<int> small(&session, {"Plan.Test", "Small", 2});
        for (int i = 0; i < 150; ++i) small.add(i);

        // Stack-Implementation (sequential step).
        ds::ProfiledList<int> stack(&session, {"Plan.Test", "Stack", 3});
        for (int round = 0; round < 30; ++round) {
            stack.add(round);
            stack.add(round);
            stack.remove_at(stack.count() - 1);
        }
        while (stack.count() > 0) stack.remove_at(stack.count() - 1);
    }
    session.stop();
    return Dsspy{}.analyze(session);
}

TEST(TransformPlan, MapsEveryUseCaseKindToAnAction) {
    for (std::size_t k = 0; k < kUseCaseKindCount; ++k) {
        const auto action = action_for(static_cast<UseCaseKind>(k));
        EXPECT_NE(transform_action_name(action), "?");
        EXPECT_NE(transform_code_hint(action), "?");
    }
}

TEST(TransformPlan, RanksByImpact) {
    runtime::ProfilingSession session;
    const AnalysisResult analysis = make_analysis(session);
    const TransformPlan plan = plan_transformations(analysis);
    ASSERT_GE(plan.steps.size(), 3u);
    for (std::size_t i = 1; i < plan.steps.size(); ++i)
        EXPECT_GE(plan.steps[i - 1].impact, plan.steps[i].impact);
    // The 5000-event Long-Insert dominates.
    EXPECT_EQ(plan.steps[0].instance.location.method, "Big");
    EXPECT_EQ(plan.steps[0].action, TransformAction::ParallelizeInsert);
    EXPECT_TRUE(plan.steps[0].parallel);
}

TEST(TransformPlan, ParallelOnlyDropsSequentialSteps) {
    runtime::ProfilingSession session;
    const AnalysisResult analysis = make_analysis(session);
    const TransformPlan full = plan_transformations(analysis, false);
    const TransformPlan parallel = plan_transformations(analysis, true);
    EXPECT_GT(full.steps.size(), parallel.steps.size());
    for (const TransformStep& step : parallel.steps)
        EXPECT_TRUE(step.parallel);
    EXPECT_EQ(full.parallel_steps(), parallel.steps.size());
}

TEST(TransformPlan, PrintsActionableSteps) {
    runtime::ProfilingSession session;
    const AnalysisResult analysis = make_analysis(session);
    const TransformPlan plan = plan_transformations(analysis);
    std::ostringstream os;
    print_transform_plan(os, plan);
    const std::string text = os.str();
    EXPECT_NE(text.find("parallelize-insert"), std::string::npos);
    EXPECT_NE(text.find("par::parallel_build"), std::string::npos);
    EXPECT_NE(text.find("Plan.Test.Big:1"), std::string::npos);
    EXPECT_NE(text.find("use-stack-container"), std::string::npos);
}

TEST(TransformPlan, EmptyAnalysis) {
    runtime::ProfilingSession session;
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    const TransformPlan plan = plan_transformations(analysis);
    EXPECT_TRUE(plan.steps.empty());
    std::ostringstream os;
    print_transform_plan(os, plan);
    EXPECT_NE(os.str().find("Nothing to transform."), std::string::npos);
}

TEST(Confidence, GrowsWithEvidenceMargin) {
    // A profile exactly at the Long-Insert thresholds has ~0.5 confidence;
    // overwhelming evidence saturates at 1.0.
    auto confidence_for = [](int inserts, int jump_reads) {
        runtime::ProfilingSession session;
        {
            ds::ProfiledList<int> list(&session, {"Conf", "M", 1});
            for (int i = 0; i < inserts; ++i) list.add(i);
            std::size_t pos = 0;
            for (int i = 0; i < jump_reads && list.count() > 10; ++i) {
                (void)list.get(pos);
                pos = (pos + 7) % list.count();
            }
        }
        session.stop();
        const AnalysisResult analysis = Dsspy{}.analyze(session);
        for (const auto& ia : analysis.instances())
            for (const auto& uc : ia.use_cases)
                if (uc.kind == UseCaseKind::LongInsert) return uc.confidence();
        return -1.0;
    };

    // ~37% insert share (just above the 30% threshold) vs pure inserts.
    const double marginal = confidence_for(120, 200);
    const double strong = confidence_for(5000, 0);
    ASSERT_GT(marginal, 0.0);
    ASSERT_GT(strong, 0.0);
    EXPECT_LT(marginal, 0.75);
    EXPECT_DOUBLE_EQ(strong, 1.0);
    EXPECT_GT(strong, marginal);
}

}  // namespace
}  // namespace dsspy::core
