// Property-based tests: invariants of the full pipeline over randomized
// workloads (parameterized seeds).
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/dsspy.hpp"
#include "ds/ds.hpp"
#include "runtime/trace_io.hpp"
#include "support/rng.hpp"

namespace dsspy {
namespace {

using core::AnalysisResult;
using core::Dsspy;
using core::InstanceAnalysis;
using core::Pattern;
using runtime::CaptureMode;
using runtime::ProfilingSession;

/// Random mixed workload over several instances; returns the session.
void random_workload(ProfilingSession& session, std::uint64_t seed) {
    support::Rng rng(seed);
    const std::size_t lists = 2 + rng.next_below(4);
    std::vector<ds::ProfiledList<std::int64_t>> instances;
    instances.reserve(lists);
    for (std::size_t n = 0; n < lists; ++n)
        instances.emplace_back(&session,
                               support::SourceLoc{
                                   "Prop", "L",
                                   static_cast<std::uint32_t>(n)});

    for (int step = 0; step < 4000; ++step) {
        auto& list = instances[rng.next_below(instances.size())];
        switch (rng.next_below(8)) {
            case 0:
            case 1:
            case 2:
                list.add(static_cast<std::int64_t>(rng.next_below(100)));
                break;
            case 3:
                if (!list.empty())
                    (void)list.get(rng.next_below(list.count()));
                break;
            case 4:
                if (!list.empty())
                    list.set(rng.next_below(list.count()),
                             static_cast<std::int64_t>(rng.next_below(100)));
                break;
            case 5:
                if (!list.empty()) list.remove_at(rng.next_below(list.count()));
                break;
            case 6:
                (void)list.index_of(
                    static_cast<std::int64_t>(rng.next_below(100)));
                break;
            default:
                // Occasional sweep to create patterns.
                for (std::size_t i = 0; i < list.count(); ++i)
                    (void)list.get(i);
                break;
        }
    }
}

class PipelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PipelinePropertyTest, PatternInvariants) {
    ProfilingSession session;
    random_workload(session, GetParam());
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);

    for (const InstanceAnalysis& ia : analysis.instances()) {
        const std::size_t events = ia.profile.total_events();
        // Per-thread patterns must not overlap and must lie inside the
        // profile.  (Synthetic ForAll patterns occupy a single event.)
        std::map<runtime::ThreadId, std::uint32_t> last_end;
        for (const Pattern& p : ia.patterns) {
            EXPECT_LE(p.first, p.last);
            EXPECT_LT(p.last, events);
            EXPECT_GT(p.length, 0u);
            EXPECT_GE(p.coverage, 0.0);
            EXPECT_LE(p.coverage, 1.0);
            if (!p.synthetic) {
                EXPECT_EQ(p.length,
                          static_cast<std::uint32_t>(p.last - p.first + 1));
            }
            auto [it, inserted] = last_end.try_emplace(p.thread, p.last);
            if (!inserted) {
                EXPECT_GT(p.first, it->second)
                    << "patterns overlap on thread " << p.thread;
                it->second = p.last;
            }
            // Direction consistency: forward patterns end at or after
            // their start, backward before.
            using core::PatternKind;
            if (p.kind == PatternKind::ReadForward ||
                p.kind == PatternKind::WriteForward) {
                EXPECT_LE(p.start_pos, p.end_pos);
            }
            if (p.kind == PatternKind::ReadBackward ||
                p.kind == PatternKind::WriteBackward) {
                EXPECT_GE(p.start_pos, p.end_pos);
            }
        }
    }
}

TEST_P(PipelinePropertyTest, PhasesPartitionTheProfile) {
    ProfilingSession session;
    random_workload(session, GetParam());
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);

    for (const InstanceAnalysis& ia : analysis.instances()) {
        const auto& phases = ia.profile.phases();
        if (ia.profile.total_events() == 0) {
            EXPECT_TRUE(phases.empty());
            continue;
        }
        ASSERT_FALSE(phases.empty());
        EXPECT_EQ(phases.front().first, 0u);
        EXPECT_EQ(phases.back().last, ia.profile.total_events() - 1);
        for (std::size_t i = 1; i < phases.size(); ++i) {
            EXPECT_EQ(phases[i].first, phases[i - 1].last + 1);
            // Adjacent phases have different access types (maximality).
            EXPECT_NE(phases[i].type, phases[i - 1].type);
        }
        // Type counts from phases match direct counts.
        std::array<std::size_t, core::kAccessTypeCount> from_phases{};
        for (const auto& phase : phases)
            from_phases[static_cast<std::size_t>(phase.type)] +=
                phase.length();
        for (std::size_t t = 0; t < core::kAccessTypeCount; ++t)
            EXPECT_EQ(from_phases[t],
                      ia.profile.count(static_cast<core::AccessType>(t)));
    }
}

TEST_P(PipelinePropertyTest, UseCasesAreConsistentlyLabeled) {
    ProfilingSession session;
    random_workload(session, GetParam());
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);

    std::size_t parallel_flagged = 0;
    for (const InstanceAnalysis& ia : analysis.instances()) {
        for (const core::UseCase& uc : ia.use_cases) {
            EXPECT_EQ(uc.parallel_potential(),
                      core::has_parallel_potential(uc.kind));
            EXPECT_FALSE(uc.reason().empty());
            EXPECT_FALSE(uc.recommendation().empty());
            EXPECT_EQ(uc.instance.id, ia.profile.info().id);
        }
        if (ia.flagged_parallel()) ++parallel_flagged;
    }
    EXPECT_EQ(parallel_flagged, analysis.flagged_instances());
    EXPECT_LE(analysis.flagged_instances(),
              analysis.list_array_instances());
    EXPECT_GE(analysis.search_space_reduction(), 0.0);
    EXPECT_LE(analysis.search_space_reduction(), 1.0);
}

TEST_P(PipelinePropertyTest, CaptureModesAgree) {
    auto counts = [this](CaptureMode mode) {
        ProfilingSession session(mode);
        random_workload(session, GetParam());
        session.stop();
        const AnalysisResult analysis = Dsspy{}.analyze(session);
        std::ostringstream fingerprint;
        for (const InstanceAnalysis& ia : analysis.instances()) {
            fingerprint << ia.profile.total_events() << ':'
                        << ia.patterns.size() << ':' << ia.use_cases.size()
                        << ';';
        }
        return fingerprint.str();
    };
    EXPECT_EQ(counts(CaptureMode::Buffered), counts(CaptureMode::Streaming));
}

TEST_P(PipelinePropertyTest, TraceRoundTripIsLossless) {
    ProfilingSession session;
    random_workload(session, GetParam());
    session.stop();

    std::stringstream buffer;
    runtime::write_trace(buffer, session);
    const runtime::Trace trace = runtime::read_trace(buffer);

    const Dsspy analyzer;
    const AnalysisResult live = analyzer.analyze(session);
    const AnalysisResult offline =
        analyzer.analyze(trace.instances, trace.store);
    EXPECT_EQ(live.use_case_counts(), offline.use_case_counts());
    EXPECT_EQ(live.total_events(), offline.total_events());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dsspy
