// Unit tests for dsspy::support: RNG, stats, strings, tables.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/rng.hpp"
#include "support/source_location.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace dsspy::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusiveBounds) {
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.next_range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == ~0ULL);
    Rng rng(1);
    EXPECT_NE(rng(), rng());
}

TEST(Stats, SummarizeBasics) {
    const double values[] = {1.0, 2.0, 3.0, 4.0, 5.0};
    const Summary s = summarize(values);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
    EXPECT_EQ(s.count, 5u);
}

TEST(Stats, SummarizeEmpty) {
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
    const double values[] = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(values, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(values, 50.0), 25.0);
}

TEST(Stats, SpeedupAndFraction) {
    EXPECT_DOUBLE_EQ(speedup(2.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(speedup(0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(fraction(94.29, 5.71), 0.9429);
    EXPECT_DOUBLE_EQ(fraction(0.0, 0.0), 0.0);
}

TEST(Stats, AmdahlLimits) {
    // Fully parallel: speedup == threads.
    EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 8), 8.0);
    // Fully sequential: speedup == 1.
    EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 8), 1.0);
    // CPU Benchmarks case: 94.29% sequential caps the speedup near 1.06.
    EXPECT_NEAR(amdahl_speedup(0.9429, 8), 1.053, 0.01);
}

TEST(Stats, Geomean) {
    const double values[] = {1.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(values), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, Tokenize) {
    const auto tokens = tokenize("  the quick\tbrown\nfox ");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0], "the");
    EXPECT_EQ(tokens[3], "fox");
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(starts_with("List<int>", "List"));
    EXPECT_FALSE(starts_with("x", "xyz"));
    EXPECT_TRUE(ends_with("file.cs", ".cs"));
    EXPECT_FALSE(ends_with("cs", "file.cs"));
}

TEST(Strings, ReplaceAll) {
    EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
    EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
}

TEST(Strings, CountOccurrences) {
    EXPECT_EQ(count_occurrences("new List new List", "new List"), 2u);
    EXPECT_EQ(count_occurrences("aaaa", "aa"), 2u);  // non-overlapping
    EXPECT_EQ(count_occurrences("abc", ""), 0u);
}

TEST(Table, FormatHelpers) {
    EXPECT_EQ(Table::fmt(2.126, 2), "2.13");
    EXPECT_EQ(Table::with_commas(936356), "936,356");
    EXPECT_EQ(Table::with_commas(-1234), "-1,234");
    EXPECT_EQ(Table::with_commas(0), "0");
    EXPECT_EQ(Table::pct(0.7692), "76.92%");
}

TEST(Table, RendersAlignedRows) {
    Table t({"Name", "LOC"});
    t.add_row({"astrogrep", "4,800"});
    t.add_row({"x", "1"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("astrogrep"), std::string::npos);
    EXPECT_NE(out.find("| Name"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscaping) {
    Table t({"a", "b"});
    t.add_row({"x,y", "q\"q"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"q\"\"q\"\n");
}

TEST(SourceLoc, ToStringAndOrdering) {
    const SourceLoc a{"Cls", "M", 3};
    EXPECT_EQ(a.to_string(), "Cls.M:3");
    const SourceLoc b{"Cls", "M", 4};
    EXPECT_LT(a, b);
    EXPECT_EQ(a, (SourceLoc{"Cls", "M", 3}));
}

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
    Stopwatch sw;
    const auto t1 = sw.elapsed_ns();
    const auto t2 = sw.elapsed_ns();
    EXPECT_GE(t2, t1);
    sw.restart();
    EXPECT_GE(sw.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace dsspy::support
