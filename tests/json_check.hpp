// A real (if minimal) JSON syntax validator shared by test suites that
// assert on JSON documents the code under test emits (the span-trace
// exporter, the serve daemon's /tenants and /tenants/<id>/trace
// endpoints).  The exporters' contract is "loads in Perfetto / any JSON
// consumer", and every consumer starts with a parse — so structural
// tests run a full syntactic parse instead of trusting substring luck.
//
// Validation only: no DOM is built.  RFC 8259 grammar with the usual
// escape set (\" \\ \/ \b \f \n \r \t \uXXXX); unescaped control
// characters inside strings are rejected.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace dsspy_test {

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    bool parse() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == text_.size();
    }

private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (static_cast<unsigned char>(ch) < 0x20) return false;
            if (ch == '"') { ++pos_; return true; }
            if (ch == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return false;
                const char esc = text_[pos_];
                if (esc == 'u') {
                    if (pos_ + 4 >= text_.size()) return false;
                    for (int i = 1; i <= 4; ++i)
                        if (std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])) == 0)
                            return false;
                    pos_ += 4;
                } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                           std::string_view::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (!digits()) return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits()) return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            if (!digits()) return false;
        }
        return pos_ > start;
    }

    bool digits() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
            ++pos_;
        return pos_ > start;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    [[nodiscard]] char peek() const {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

inline bool json_valid(std::string_view text) {
    return JsonParser(text).parse();
}

}  // namespace dsspy_test
