// The structured Advice layer (DESIGN.md §14).
//
// The refactor's byte-identity contract is pinned by a differential: a
// test-local *legacy formatter* reproduces the original inline string
// construction (the code that classify() used before Advice existed,
// ported verbatim from the pre-refactor use_cases.cpp) from the same
// InstanceStats, and every reason/recommendation the seven evaluation
// apps produce must match it byte for byte.  The advice JSON document is
// validated with the test-local RFC 8259 parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/advice.hpp"
#include "core/dsspy.hpp"
#include "core/export.hpp"
#include "core/incremental.hpp"
#include "core/instance_stats.hpp"
#include "core/use_cases.hpp"
#include "json_check.hpp"
#include "runtime/session.hpp"
#include "support/table.hpp"

namespace {

using dsspy::core::AccessType;
using dsspy::core::AdviceAction;
using dsspy::core::AnalysisResult;
using dsspy::core::DetectorConfig;
using dsspy::core::Dsspy;
using dsspy::core::EndTraffic;
using dsspy::core::InstanceStats;
using dsspy::core::ShareBasis;
using dsspy::core::UseCase;
using dsspy::core::UseCaseKind;
using dsspy::support::Table;

// --- the legacy formatter ----------------------------------------------------

struct LegacyText {
    UseCaseKind kind;
    std::string reason;
    std::string recommendation;
};

std::string legacy_recommended_action(UseCaseKind kind) {
    switch (kind) {
        case UseCaseKind::LongInsert:
            return "Parallelize the insert operation.";
        case UseCaseKind::ImplementQueue:
            return "Employ a parallel queue as data container.";
        case UseCaseKind::SortAfterInsert:
            return "The insertion order is not important: parallelize both "
                   "the insert and the search phases.";
        case UseCaseKind::FrequentSearch:
            return "Either employ a parallel data structure that is "
                   "optimized for searches or parallelize the search "
                   "operation by splitting the list into smaller chunks "
                   "searched in parallel.";
        case UseCaseKind::FrequentLongRead:
            return "Check the origin of this access. If it contains a "
                   "program loop that looks for a specific element, "
                   "transform the operation into a parallel search.";
        case UseCaseKind::InsertDeleteFront:
            return "Insert/delete traffic causes high copy overhead on a "
                   "fixed-size array: a dynamic data structure like a list "
                   "might be better suited.";
        case UseCaseKind::StackImplementation:
            return "Insert and delete operations always access a common "
                   "end: think about using a stack implementation.";
        case UseCaseKind::WriteWithoutRead:
            return "The results of the trailing write accesses are never "
                   "read; check whether these writes are necessary or can "
                   "be left to deallocation/garbage collection.";
        case UseCaseKind::Count: break;
    }
    return "?";
}

bool legacy_is_linear(dsspy::runtime::DsKind kind) {
    switch (kind) {
        case dsspy::runtime::DsKind::List:
        case dsspy::runtime::DsKind::Array:
        case dsspy::runtime::DsKind::Stack:
        case dsspy::runtime::DsKind::Queue:
        case dsspy::runtime::DsKind::LinkedList:
            return true;
        default:
            return false;
    }
}

/// Verbatim port of the pre-Advice classify(): same rules, same inline
/// string building.  Only the strings matter here — confidence and rule
/// order are covered by the engine's own tests.
std::vector<LegacyText> legacy_classify(const InstanceStats& s,
                                        const DetectorConfig& config) {
    std::vector<LegacyText> out;
    const dsspy::runtime::InstanceInfo& info = s.info;
    const std::size_t total = s.total;
    if (total == 0) return out;

    auto emit = [&out, &s](UseCaseKind kind, std::string reason) {
        LegacyText t;
        t.kind = kind;
        t.reason = std::move(reason);
        t.recommendation = legacy_recommended_action(kind);
        if (s.thread_count > 1 && dsspy::core::has_parallel_potential(kind)) {
            t.recommendation +=
                " Note: this instance is already accessed by " +
                std::to_string(s.thread_count) +
                " threads; verify synchronization before transforming.";
        }
        out.push_back(std::move(t));
    };

    const bool linear = legacy_is_linear(info.kind);

    const double insert_share =
        config.share_basis == ShareBasis::Time
            ? (s.duration_ns > 0
                   ? static_cast<double>(s.long_insert_ns) /
                         static_cast<double>(s.duration_ns)
                   : 0.0)
            : static_cast<double>(s.long_insert_events) /
                  static_cast<double>(total);
    const bool li_conditions = linear && s.has_longest_insert &&
                               insert_share > config.li_min_insert_share;

    bool sai_fired = false;
    if (li_conditions && s.sai_match) {
        emit(UseCaseKind::SortAfterInsert,
             "Sort follows an insertion phase of " +
                 std::to_string(s.sai_phase_length) + " events (" +
                 Table::pct(insert_share) +
                 " of the profile is long insertions); the "
                 "insertion order is obviously not important.");
        sai_fired = true;
    }

    if (li_conditions && !sai_fired) {
        emit(UseCaseKind::LongInsert,
             "Insertion phases cover " + Table::pct(insert_share) +
                 " of the profile (threshold " +
                 Table::pct(config.li_min_insert_share) +
                 "); longest consecutive insertion streak: " +
                 std::to_string(s.longest_insert_length) +
                 " events from the " +
                 (s.longest_insert_front ? "front." : "end."));
    }

    if (info.kind == dsspy::runtime::DsKind::List &&
        total >= config.iq_min_events) {
        const EndTraffic& t = s.iq_traffic;
        const std::size_t fifo1 =
            t.back_insert + t.front_delete + t.front_read;
        const std::size_t fifo2 =
            t.front_insert + t.back_delete + t.back_read;
        const bool orientation1 = fifo1 >= fifo2;
        const std::size_t insert_side =
            orientation1 ? t.back_insert : t.front_insert;
        const std::size_t consume_side =
            orientation1 ? t.front_delete + t.front_read
                         : t.back_delete + t.back_read;
        const double two_end_share =
            static_cast<double>(insert_side + consume_side) /
            static_cast<double>(total);
        const double balance =
            insert_side + consume_side == 0
                ? 0.0
                : static_cast<double>(std::min(insert_side, consume_side)) /
                      static_cast<double>(insert_side + consume_side);
        if (two_end_share > config.iq_min_two_end_share &&
            balance >= config.iq_min_per_end_share && insert_side > 0 &&
            consume_side > 0) {
            emit(UseCaseKind::ImplementQueue,
                 Table::pct(two_end_share) +
                     " of all accesses affect two different ends of the "
                     "list (" +
                     std::to_string(insert_side) + " inserts at the " +
                     (orientation1 ? "back" : "front") + ", " +
                     std::to_string(consume_side) +
                     " reads/deletes at the " +
                     (orientation1 ? "front" : "back") +
                     "): the list is used like a queue.");
        }
    }

    const std::size_t search_ops =
        s.counts[static_cast<std::size_t>(AccessType::Search)];
    if (linear && search_ops > config.fs_min_search_ops) {
        const double read_pattern_share =
            static_cast<double>(s.read_pattern_events) /
            static_cast<double>(total);
        if (read_pattern_share >= config.fs_min_read_pattern_share) {
            emit(UseCaseKind::FrequentSearch,
                 std::to_string(search_ops) +
                     " search operations (threshold " +
                     std::to_string(config.fs_min_search_ops) + "); " +
                     Table::pct(read_pattern_share) +
                     " of all access events are Read-Forward/Read-Backward "
                     "patterns.");
        }
    }

    if (linear) {
        const double read_share =
            s.weighted_total > 0.0 ? s.weighted_reads / s.weighted_total
                                   : 0.0;
        if (s.long_read_patterns > config.flr_min_read_patterns &&
            read_share >= config.flr_min_read_share) {
            emit(UseCaseKind::FrequentLongRead,
                 std::to_string(s.long_read_patterns) +
                     " sequential read patterns each covering at least " +
                     Table::pct(config.flr_min_coverage) +
                     " of the structure; " + Table::pct(read_share) +
                     " of all access types are Read or Search — this looks "
                     "like a disguised search operation.");
        }
    }

    if (info.kind == dsspy::runtime::DsKind::Array) {
        if (s.resizes >= config.idf_min_resizes) {
            emit(UseCaseKind::InsertDeleteFront,
                 std::to_string(s.resizes) +
                     " array reallocations: every resize copies all "
                     "elements.");
        }
    } else if (info.kind == dsspy::runtime::DsKind::List) {
        const EndTraffic& t = s.edge_traffic;
        if (t.front_insert >= config.idf_min_front_ops &&
            t.front_delete >= config.idf_min_front_ops) {
            emit(UseCaseKind::InsertDeleteFront,
                 std::to_string(t.front_insert) + " front inserts and " +
                     std::to_string(t.front_delete) +
                     " front deletes each shift the whole tail.");
        }
    }

    if (info.kind == dsspy::runtime::DsKind::List) {
        const EndTraffic& t = s.edge_traffic;
        const std::size_t muts = t.inserts() + t.deletes();
        const std::size_t inserts =
            s.counts[static_cast<std::size_t>(AccessType::Insert)];
        const std::size_t deletes =
            s.counts[static_cast<std::size_t>(AccessType::Delete)];
        const std::size_t all_muts = inserts + deletes;
        if (all_muts >= config.si_min_ops && muts > 0 && inserts > 0 &&
            deletes > 0) {
            const double back_share =
                static_cast<double>(t.back_insert + t.back_delete) /
                static_cast<double>(all_muts);
            const double front_share =
                static_cast<double>(t.front_insert + t.front_delete) /
                static_cast<double>(all_muts);
            if (back_share >= config.si_min_common_end_share ||
                front_share >= config.si_min_common_end_share) {
                emit(UseCaseKind::StackImplementation,
                     Table::pct(std::max(back_share, front_share)) +
                         " of all insert/delete operations access the " +
                         (back_share >= front_share ? "back" : "front") +
                         " of the list: this is a stack implementation.");
            }
        }
    }

    if (s.tail_type == AccessType::Write &&
        s.tail_length >= config.wwr_min_events) {
        const double denom = s.tail_last_size > 0
                                 ? static_cast<double>(s.tail_last_size)
                                 : 1.0;
        const double coverage =
            std::min(1.0, static_cast<double>(s.tail_length) / denom);
        if (coverage >= config.wwr_min_coverage) {
            emit(UseCaseKind::WriteWithoutRead,
                 "The profile ends with a write phase of " +
                     std::to_string(s.tail_length) +
                     " events covering " + Table::pct(coverage) +
                     " of the structure whose results are never read.");
        }
    }

    return out;
}

// --- the differential across the evaluation apps -----------------------------

TEST(AdviceDifferential, RenderedTextMatchesLegacyFormatterOnAllApps) {
    const DetectorConfig config{};
    std::size_t compared = 0;
    for (const dsspy::apps::AppInfo& app : dsspy::apps::evaluation_apps()) {
        dsspy::runtime::ProfilingSession session;
        app.run_sequential(&session);
        session.stop();
        const AnalysisResult result = Dsspy{config}.analyze(session);
        for (const dsspy::core::InstanceAnalysis& inst : result.instances()) {
            const InstanceStats stats = dsspy::core::compute_instance_stats(
                inst.profile, inst.patterns, config);
            const std::vector<LegacyText> legacy =
                legacy_classify(stats, config);
            ASSERT_EQ(inst.use_cases.size(), legacy.size())
                << app.name << " " << stats.info.location.to_string();
            for (std::size_t i = 0; i < legacy.size(); ++i) {
                const UseCase& uc = inst.use_cases[i];
                EXPECT_EQ(uc.kind, legacy[i].kind) << app.name;
                EXPECT_EQ(uc.reason(), legacy[i].reason)
                    << app.name << " " << stats.info.location.to_string();
                EXPECT_EQ(uc.recommendation(), legacy[i].recommendation)
                    << app.name << " " << stats.info.location.to_string();
                ++compared;
            }
        }
    }
    // The evaluation corpus flags dozens of use cases; if this drops to
    // zero the differential is vacuous.
    EXPECT_GT(compared, 20u);
}

// --- structured model invariants ---------------------------------------------

TEST(AdviceModel, ActionBijectionAndNames) {
    for (std::size_t i = 0; i < dsspy::core::kUseCaseKindCount; ++i) {
        const auto kind = static_cast<UseCaseKind>(i);
        const AdviceAction action = dsspy::core::advice_action_for(kind);
        EXPECT_NE(dsspy::core::advice_action_name(action), "?");
        // The action's canonical text is the kind's recommended action.
        EXPECT_EQ(dsspy::core::advice_action_text(action),
                  dsspy::core::recommended_action(kind));
        // Parallel potential agrees between the kind and the action.
        EXPECT_EQ(dsspy::core::advice_action_parallel(action),
                  dsspy::core::has_parallel_potential(kind));
    }
    // Distinct kinds map to distinct actions (it is a bijection).
    for (std::size_t a = 0; a < dsspy::core::kUseCaseKindCount; ++a)
        for (std::size_t b = a + 1; b < dsspy::core::kUseCaseKindCount; ++b)
            EXPECT_NE(dsspy::core::advice_action_for(
                          static_cast<UseCaseKind>(a)),
                      dsspy::core::advice_action_for(
                          static_cast<UseCaseKind>(b)));
}

TEST(AdviceModel, MultithreadNoteRendersFromEvidence) {
    dsspy::core::Advice advice;
    advice.action = AdviceAction::ParallelInsert;
    advice.evidence.thread_count = 3;
    const std::string rec = dsspy::core::render_advice_recommendation(advice);
    EXPECT_NE(rec.find("already accessed by 3 threads"), std::string::npos);
    // Non-parallel advice never carries the note.
    advice.action = AdviceAction::UseStack;
    EXPECT_EQ(dsspy::core::render_advice_recommendation(advice)
                  .find("threads"),
              std::string::npos);
}

// --- the advice JSON document ------------------------------------------------

TEST(AdviceJson, PostmortemDocumentParsesAndCarriesActions) {
    const dsspy::apps::AppInfo* app = dsspy::apps::find_app("Mandelbrot");
    ASSERT_NE(app, nullptr);
    dsspy::runtime::ProfilingSession session;
    app->run_sequential(&session);
    session.stop();
    const AnalysisResult result = Dsspy{}.analyze(session);

    std::ostringstream os;
    dsspy::core::write_advice_json(os, result);
    const std::string doc = os.str();
    EXPECT_TRUE(dsspy_test::json_valid(doc)) << doc.substr(0, 400);
    EXPECT_NE(doc.find("\"advice_version\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"verdicts\""), std::string::npos);
    EXPECT_NE(doc.find("\"action\""), std::string::npos);
    EXPECT_NE(doc.find("\"evidence\""), std::string::npos);
    // Every action name in the document is a real enum name.
    for (const UseCase& uc : result.all_use_cases()) {
        const std::string needle =
            "\"action\": \"" +
            std::string(dsspy::core::advice_action_name(uc.advice.action)) +
            "\"";
        EXPECT_NE(doc.find(needle), std::string::npos) << needle;
    }
}

TEST(AdviceJson, StreamDocumentMatchesPostmortemDocument) {
    const dsspy::apps::AppInfo* app = dsspy::apps::find_app("WordWheelSolver");
    ASSERT_NE(app, nullptr);
    dsspy::runtime::ProfilingSession session;
    app->run_sequential(&session);
    session.stop();

    const AnalysisResult pm = Dsspy{}.analyze(session);
    std::ostringstream pm_os;
    dsspy::core::write_advice_json(pm_os, pm);

    dsspy::core::IncrementalAnalyzer analyzer;
    const auto instances = session.registry().snapshot();
    for (const auto& info : instances) analyzer.declare_instance(info);
    for (const auto& info : instances)
        analyzer.fold(session.store().events(info.id));
    const dsspy::core::StreamReport stream = analyzer.finish(instances);
    std::ostringstream st_os;
    dsspy::core::write_advice_json(st_os, stream);

    EXPECT_TRUE(dsspy_test::json_valid(st_os.str()));
    EXPECT_EQ(pm_os.str(), st_os.str())
        << "incremental advice document diverged from post-mortem";
}

}  // namespace
