// Tests for the proxy-instrumented containers: every interface method must
// emit the right event, and a profiled container must behave exactly like
// the plain one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ds/ds.hpp"
#include "support/rng.hpp"

namespace dsspy::ds {
namespace {

using runtime::AccessEvent;
using runtime::CaptureMode;
using runtime::DsKind;
using runtime::InstanceId;
using runtime::OpKind;
using runtime::ProfilingSession;

std::vector<AccessEvent> events_of(ProfilingSession& session,
                                   InstanceId id) {
    session.stop();
    const auto span = session.store().events(id);
    return {span.begin(), span.end()};
}

TEST(Probe, NullSessionRecordsNothing) {
    ProfiledList<int> list(nullptr, {"C", "M", 1});
    list.add(1);
    (void)list.get(0);
    EXPECT_EQ(list.instance_id(), runtime::kInvalidInstance);
    EXPECT_EQ(list.count(), 1u);
}

TEST(Probe, RegistersInstanceMetadata) {
    ProfilingSession session;
    ProfiledList<std::int64_t> list(&session, {"My.Class", "Run", 42});
    const auto info = session.registry().info(list.instance_id());
    EXPECT_EQ(info.kind, DsKind::List);
    EXPECT_EQ(info.type_name, "List<Int64>");
    EXPECT_EQ(info.location.class_name, "My.Class");
    EXPECT_EQ(info.location.method, "Run");
    EXPECT_EQ(info.location.position, 42u);
    EXPECT_FALSE(info.deallocated);
}

TEST(Probe, MarksDeallocatedOnDestruction) {
    ProfilingSession session;
    InstanceId id;
    {
        ProfiledList<int> list(&session, {"C", "M", 1});
        id = list.instance_id();
    }
    EXPECT_TRUE(session.registry().info(id).deallocated);
}

TEST(ProfiledList, AddRecordsLandingIndexAndNewSize) {
    ProfilingSession session;
    ProfiledList<int> list(&session, {"C", "M", 1});
    list.add(10);
    list.add(20);
    list.add(30);
    const auto events = events_of(session, list.instance_id());
    ASSERT_EQ(events.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(events[static_cast<size_t>(i)].op, OpKind::Add);
        EXPECT_EQ(events[static_cast<size_t>(i)].position, i);
        EXPECT_EQ(events[static_cast<size_t>(i)].size,
                  static_cast<std::uint32_t>(i + 1));
        // Append satisfies the Insert-Back invariant: position == size-1.
        EXPECT_EQ(events[static_cast<size_t>(i)].position,
                  static_cast<std::int64_t>(
                      events[static_cast<size_t>(i)].size) - 1);
    }
}

TEST(ProfiledList, GetSetRecordPositionAndCurrentSize) {
    ProfilingSession session;
    ProfiledList<int> list(&session, {"C", "M", 1});
    list.add(1);
    list.add(2);
    (void)list.get(1);
    list.set(0, 7);
    const auto events = events_of(session, list.instance_id());
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[2].op, OpKind::Get);
    EXPECT_EQ(events[2].position, 1);
    EXPECT_EQ(events[2].size, 2u);
    EXPECT_EQ(events[3].op, OpKind::Set);
    EXPECT_EQ(events[3].position, 0);
    EXPECT_EQ(list.get(0), 7);
}

TEST(ProfiledList, RemoveAtRecordsSizeAfterRemoval) {
    ProfilingSession session;
    ProfiledList<int> list(&session, {"C", "M", 1});
    list.add(1);
    list.add(2);
    list.add(3);
    list.remove_at(2);  // back removal: position == size-after
    const auto events = events_of(session, list.instance_id());
    const AccessEvent& ev = events.back();
    EXPECT_EQ(ev.op, OpKind::RemoveAt);
    EXPECT_EQ(ev.position, 2);
    EXPECT_EQ(ev.size, 2u);
}

TEST(ProfiledList, SearchOpsRecordHitPosition) {
    ProfilingSession session;
    ProfiledList<int> list(&session, {"C", "M", 1});
    list.add(5);
    list.add(9);
    EXPECT_EQ(list.index_of(9), 1);
    EXPECT_FALSE(list.contains(42));
    EXPECT_EQ(list.find_index([](int v) { return v > 4; }), 0);
    const auto events = events_of(session, list.instance_id());
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[2].op, OpKind::IndexOf);
    EXPECT_EQ(events[2].position, 1);
    EXPECT_EQ(events[3].op, OpKind::IndexOf);
    EXPECT_EQ(events[3].position, runtime::kWholeContainer);  // miss
    EXPECT_EQ(events[4].position, 0);
}

TEST(ProfiledList, WholeContainerOps) {
    ProfilingSession session;
    ProfiledList<int> list(&session, {"C", "M", 1});
    list.add(3);
    list.add(1);
    list.sort();
    list.reverse();
    std::vector<int> out(2);
    list.copy_to(out);
    int sum = 0;
    list.for_each([&sum](int v) { sum += v; });
    list.clear();
    const auto events = events_of(session, list.instance_id());
    ASSERT_EQ(events.size(), 7u);
    EXPECT_EQ(events[2].op, OpKind::Sort);
    EXPECT_EQ(events[3].op, OpKind::Reverse);
    EXPECT_EQ(events[4].op, OpKind::CopyTo);
    EXPECT_EQ(events[5].op, OpKind::ForEach);
    EXPECT_EQ(events[6].op, OpKind::Clear);
    EXPECT_EQ(events[6].size, 0u);
    EXPECT_EQ(events[2].position, runtime::kWholeContainer);
    EXPECT_EQ(sum, 4);
    EXPECT_EQ(out, (std::vector<int>{3, 1}));  // sorted then reversed
}

TEST(ProfiledArray, SetGetResizeFill) {
    ProfilingSession session;
    ProfiledArray<double> arr(&session, {"C", "M", 2}, 4);
    arr.set(2, 1.5);
    (void)arr.get(2);
    arr.resize(8);
    arr.fill(0.5);
    const auto events = events_of(session, arr.instance_id());
    // 1 set + 1 get + 1 resize + 8 fill-sets
    ASSERT_EQ(events.size(), 11u);
    EXPECT_EQ(events[0].op, OpKind::Set);
    EXPECT_EQ(events[0].size, 4u);
    EXPECT_EQ(events[1].op, OpKind::Get);
    EXPECT_EQ(events[2].op, OpKind::Resize);
    EXPECT_EQ(events[2].size, 8u);
    for (size_t i = 3; i < 11; ++i) {
        EXPECT_EQ(events[i].op, OpKind::Set);
        EXPECT_EQ(events[i].position, static_cast<std::int64_t>(i - 3));
    }
    const auto info = session.registry().info(arr.instance_id());
    EXPECT_EQ(info.kind, DsKind::Array);
    EXPECT_EQ(info.type_name, "Array<Double>");
}

TEST(ProfiledStack, PushPopMapToBackInsertDelete) {
    ProfilingSession session;
    ProfiledStack<int> stack(&session, {"C", "M", 3});
    stack.push(1);
    stack.push(2);
    EXPECT_EQ(stack.pop(), 2);
    const auto events = events_of(session, stack.instance_id());
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].op, OpKind::Add);
    EXPECT_EQ(events[0].position, 0);
    EXPECT_EQ(events[1].position, 1);
    EXPECT_EQ(events[2].op, OpKind::RemoveAt);
    EXPECT_EQ(events[2].position, 1);  // == size-after: back delete
    EXPECT_EQ(events[2].size, 1u);
    EXPECT_EQ(session.registry().info(stack.instance_id()).kind,
              DsKind::Stack);
}

TEST(ProfiledQueue, EnqueueDequeueMapToBackInsertFrontDelete) {
    ProfilingSession session;
    ProfiledQueue<int> queue(&session, {"C", "M", 4});
    queue.enqueue(1);
    queue.enqueue(2);
    EXPECT_EQ(queue.dequeue(), 1);
    const auto events = events_of(session, queue.instance_id());
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].op, OpKind::Add);
    EXPECT_EQ(events[2].op, OpKind::RemoveAt);
    EXPECT_EQ(events[2].position, 0);  // front delete
    EXPECT_EQ(session.registry().info(queue.instance_id()).kind,
              DsKind::Queue);
}

TEST(ProfiledDictionary, RecordsWholeContainerPositions) {
    ProfilingSession session;
    ProfiledDictionary<std::string, int> dict(&session, {"C", "M", 5});
    dict.add("a", 1);
    dict.set("b", 2);
    (void)dict.get("a");
    int out = 0;
    (void)dict.try_get("b", out);
    (void)dict.contains_key("c");
    dict.remove("a");
    dict.clear();
    const auto events = events_of(session, dict.instance_id());
    ASSERT_EQ(events.size(), 7u);
    for (const AccessEvent& ev : events)
        EXPECT_EQ(ev.position, runtime::kWholeContainer);
    EXPECT_EQ(events[0].op, OpKind::Add);
    EXPECT_EQ(events[4].op, OpKind::IndexOf);
    EXPECT_EQ(session.registry().info(dict.instance_id()).type_name,
              "Dictionary<String, Int32>");
}

TEST(ProfiledHashSet, BasicOps) {
    ProfilingSession session;
    ProfiledHashSet<int> set(&session, {"C", "M", 6});
    EXPECT_TRUE(set.add(1));
    EXPECT_FALSE(set.add(1));
    EXPECT_TRUE(set.contains(1));
    EXPECT_TRUE(set.remove(1));
    set.clear();
    const auto events = events_of(session, set.instance_id());
    EXPECT_EQ(events.size(), 5u);
    EXPECT_EQ(session.registry().info(set.instance_id()).kind,
              DsKind::HashSet);
}

TEST(ProfiledLinkedList, FrontBackOpsMapToPositionalVocabulary) {
    ProfilingSession session;
    ProfiledLinkedList<int> list(&session, {"C", "M", 7});
    list.add_last(2);   // Add at 0
    list.add_first(1);  // InsertAt 0
    list.add_last(3);   // Add at 2
    EXPECT_EQ(list.first(), 1);
    EXPECT_EQ(list.last(), 3);
    EXPECT_EQ(list.remove_first(), 1);
    EXPECT_EQ(list.remove_last(), 3);
    EXPECT_TRUE(list.contains(2));
    int sum = 0;
    list.for_each([&sum](int v) { sum += v; });
    list.clear();
    const auto events = events_of(session, list.instance_id());
    ASSERT_EQ(events.size(), 10u);
    EXPECT_EQ(events[0].op, OpKind::Add);
    EXPECT_EQ(events[1].op, OpKind::InsertAt);
    EXPECT_EQ(events[1].position, 0);
    EXPECT_EQ(events[3].op, OpKind::Get);   // first()
    EXPECT_EQ(events[3].position, 0);
    EXPECT_EQ(events[4].op, OpKind::Get);   // last()
    EXPECT_EQ(events[4].position, 2);
    EXPECT_EQ(events[5].op, OpKind::RemoveAt);
    EXPECT_EQ(events[5].position, 0);
    EXPECT_EQ(events[6].op, OpKind::RemoveAt);
    EXPECT_EQ(events[6].position, 1);  // size-after convention
    EXPECT_EQ(events[7].op, OpKind::IndexOf);
    EXPECT_EQ(events[8].op, OpKind::ForEach);
    EXPECT_EQ(events[9].op, OpKind::Clear);
    EXPECT_EQ(sum, 2);
    EXPECT_EQ(session.registry().info(list.instance_id()).kind,
              DsKind::LinkedList);
}

TEST(ProfiledSortedList, InsertsRecordSortedLandingIndex) {
    ProfilingSession session;
    ProfiledSortedList<int, std::string> sl(&session, {"C", "M", 8});
    sl.add(5, "five");
    sl.add(1, "one");   // lands at index 0
    sl.add(3, "three"); // lands at index 1
    EXPECT_EQ(sl.get(3), "three");
    EXPECT_TRUE(sl.contains_key(1));
    EXPECT_FALSE(sl.contains_key(9));
    EXPECT_EQ(sl.key_at(0), 1);
    std::string out;
    EXPECT_TRUE(sl.try_get(5, out));
    EXPECT_TRUE(sl.remove(1));
    const auto events = events_of(session, sl.instance_id());
    ASSERT_EQ(events.size(), 9u);
    EXPECT_EQ(events[0].op, OpKind::InsertAt);
    EXPECT_EQ(events[0].position, 0);
    EXPECT_EQ(events[1].position, 0);  // 1 sorts before 5
    EXPECT_EQ(events[2].position, 1);  // 3 sorts between
    EXPECT_EQ(events[3].op, OpKind::IndexOf);  // get(3)
    EXPECT_EQ(events[3].position, 1);
    EXPECT_EQ(events[5].position, runtime::kWholeContainer);  // miss
    EXPECT_EQ(events[6].op, OpKind::Get);  // key_at
    EXPECT_EQ(events[8].op, OpKind::RemoveAt);
    EXPECT_EQ(session.registry().info(sl.instance_id()).type_name,
              "SortedList<Int32, String>");
}

/// Property: a profiled list behaves identically to a plain list under a
/// long random operation sequence (the proxy must be transparent).
TEST(ProfiledList, BehavesLikePlainListUnderRandomOps) {
    ProfilingSession session;
    ProfiledList<std::int64_t> profiled(&session, {"C", "M", 7});
    List<std::int64_t> plain;
    support::Rng rng(123);
    for (int step = 0; step < 5000; ++step) {
        const auto op = rng.next_below(6);
        switch (op) {
            case 0: {
                const auto v = static_cast<std::int64_t>(rng.next_below(50));
                profiled.add(v);
                plain.add(v);
                break;
            }
            case 1: {
                if (plain.empty()) break;
                const auto idx = rng.next_below(plain.count());
                EXPECT_EQ(profiled.get(idx), plain[idx]);
                break;
            }
            case 2: {
                if (plain.empty()) break;
                const auto idx = rng.next_below(plain.count());
                const auto v = static_cast<std::int64_t>(rng.next_below(50));
                profiled.set(idx, v);
                plain.set(idx, v);
                break;
            }
            case 3: {
                if (plain.empty()) break;
                const auto idx = rng.next_below(plain.count());
                profiled.remove_at(idx);
                plain.remove_at(idx);
                break;
            }
            case 4: {
                const auto idx = rng.next_below(plain.count() + 1);
                const auto v = static_cast<std::int64_t>(rng.next_below(50));
                profiled.insert(idx, v);
                plain.insert(idx, v);
                break;
            }
            default: {
                const auto v = static_cast<std::int64_t>(rng.next_below(50));
                EXPECT_EQ(profiled.index_of(v), plain.index_of(v));
                break;
            }
        }
        ASSERT_EQ(profiled.count(), plain.count());
    }
    EXPECT_EQ(profiled.raw(), plain);
}

}  // namespace
}  // namespace dsspy::ds
