// Differential tests: incremental streaming analyzer vs post-mortem DSspy.
//
// DESIGN.md §8 claims the two pipelines are equivalent — same patterns,
// same use-case verdicts, same recommendation text — because both reduce
// to the same InstanceStats and classify through the same engine.  This
// suite holds them to that, bit for bit, over every evaluation app, every
// corpus workload, live streaming/buffered sessions, adversarial synthetic
// workloads, and non-default configurations.  It also regression-tests the
// streaming trace readers (quote state across buffer refills, DST1 prefix
// carry, malformed-input parity with the slurping reader).
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/dsspy.hpp"
#include "core/export.hpp"
#include "core/incremental.hpp"
#include "core/report.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "ds/ds.hpp"
#include "runtime/session.hpp"
#include "runtime/trace_io.hpp"

namespace dsspy {
namespace {

using core::AnalysisResult;
using core::DetectorConfig;
using core::Dsspy;
using core::IncrementalAnalyzer;
using core::StreamReport;
using core::UseCaseKind;
using runtime::AccessEvent;
using runtime::AnalysisMode;
using runtime::CaptureMode;
using runtime::DsKind;
using runtime::InstanceId;
using runtime::InstanceInfo;
using runtime::kWholeContainer;
using runtime::OpKind;
using runtime::ProfilingSession;

// --- equivalence helpers ----------------------------------------------------

template <typename Report>
std::string report_text(const Report& report) {
    std::ostringstream os;
    core::print_use_case_report(os, report);
    os << "---\n";
    core::print_use_case_report(os, report, /*parallel_only=*/true);
    os << "---\n";
    core::print_instance_summary(os, report);
    os << "---\n";
    core::write_use_cases_csv(os, report);
    os << "---\n";
    core::write_instances_csv(os, report);
    return os.str();
}

/// Assert the post-mortem result and the stream report agree on every
/// observable: aggregates, per-instance verdicts, and all rendered text.
void expect_reports_equal(const AnalysisResult& pm, const StreamReport& sr) {
    ASSERT_EQ(pm.instances().size(), sr.instances().size());
    EXPECT_EQ(pm.total_instances(), sr.total_instances());
    EXPECT_EQ(pm.list_array_instances(), sr.list_array_instances());
    EXPECT_EQ(pm.flagged_instances(), sr.flagged_instances());
    EXPECT_EQ(pm.total_events(), sr.total_events());
    EXPECT_DOUBLE_EQ(pm.search_space_reduction(), sr.search_space_reduction());
    EXPECT_EQ(pm.use_case_counts(), sr.use_case_counts());
    for (std::size_t i = 0; i < pm.instances().size(); ++i) {
        SCOPED_TRACE("instance index " + std::to_string(i));
        const core::InstanceAnalysis& ia = pm.instances()[i];
        const core::StreamInstance& si = sr.instances()[i];
        EXPECT_EQ(ia.patterns.size(), si.total_patterns());
        ASSERT_EQ(ia.use_cases.size(), si.use_cases.size());
        for (std::size_t u = 0; u < ia.use_cases.size(); ++u) {
            SCOPED_TRACE("use case " + std::to_string(u));
            EXPECT_EQ(ia.use_cases[u].kind, si.use_cases[u].kind);
            EXPECT_EQ(ia.use_cases[u].reason(), si.use_cases[u].reason());
            EXPECT_EQ(ia.use_cases[u].recommendation(),
                      si.use_cases[u].recommendation());
            EXPECT_EQ(ia.use_cases[u].parallel_potential(),
                      si.use_cases[u].parallel_potential());
            EXPECT_DOUBLE_EQ(ia.use_cases[u].confidence(),
                             si.use_cases[u].confidence());
            EXPECT_TRUE(ia.use_cases[u] == si.use_cases[u]);
        }
    }
    EXPECT_EQ(report_text(pm), report_text(sr));
}

/// Replay a stopped session's store through an IncrementalAnalyzer
/// (per-instance seq order, the documented fold contract) and diff the
/// result against the post-mortem analysis.
void expect_equivalent(const ProfilingSession& session,
                       const DetectorConfig& config = {}) {
    const AnalysisResult pm = Dsspy{config}.analyze(session);
    const std::vector<InstanceInfo> instances = session.registry().snapshot();
    IncrementalAnalyzer inc(config);
    for (const InstanceInfo& info : instances) inc.declare_instance(info);
    for (const InstanceInfo& info : instances)
        inc.fold(session.store().events(info.id));
    const StreamReport sr = inc.finish(instances);
    expect_reports_equal(pm, sr);
}

bool has_kind(const AnalysisResult& result, UseCaseKind kind) {
    for (const core::InstanceAnalysis& ia : result.instances())
        for (const core::UseCase& uc : ia.use_cases)
            if (uc.kind == kind) return true;
    return false;
}

InstanceId reg(ProfilingSession& s, DsKind kind, const char* method,
               std::uint32_t position = 1) {
    return s.register_instance(kind, "List<int>",
                               {"Differential.Test", method, position});
}

// --- every evaluation app ---------------------------------------------------

class AppDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AppDifferentialTest, IncrementalMatchesPostmortem) {
    const apps::AppInfo* app = apps::find_app(GetParam());
    ASSERT_NE(app, nullptr);
    ProfilingSession session;
    (void)app->run_sequential(&session);
    session.stop();
    ASSERT_GT(session.events_recorded(), 0u);
    expect_equivalent(session);
}

std::vector<std::string> app_names() {
    std::vector<std::string> names;
    for (const apps::AppInfo& app : apps::evaluation_apps())
        names.push_back(app.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppDifferentialTest, ::testing::ValuesIn(app_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string id;
        for (char ch : info.param)
            if (std::isalnum(static_cast<unsigned char>(ch))) id += ch;
        return id;
    });

// --- every corpus workload --------------------------------------------------

TEST(CorpusDifferential, EvalWorkloadsMatch) {
    for (const corpus::ProgramModel& program : corpus::all_programs()) {
        if (!program.in_eval23) continue;
        SCOPED_TRACE(program.name);
        ProfilingSession session;
        corpus::run_eval_workload(program, &session);
        session.stop();
        expect_equivalent(session);
    }
}

TEST(CorpusDifferential, Study15WorkloadsMatch) {
    for (const corpus::ProgramModel& program : corpus::all_programs()) {
        if (!program.in_study15) continue;
        SCOPED_TRACE(program.name);
        ProfilingSession session;
        corpus::run_study15_workload(program, &session);
        session.stop();
        expect_equivalent(session);
    }
}

// --- quickstart / examples-style workloads ----------------------------------

/// The quickstart example's workload (fill, scan twice, clear, repeat).
void drive_quickstart(ProfilingSession& session) {
    ds::ProfiledList<int> tasks(&session,
                                {"Quickstart.Worker", "ProcessBatch", 7});
    for (int round = 0; round < 15; ++round) {
        for (int i = 0; i < 200; ++i) tasks.add(round * 1000 + i);
        long best = 0;
        for (std::size_t i = 0; i < tasks.count(); ++i)
            best = std::max<long>(best, tasks.get(i));
        for (std::size_t i = 0; i < tasks.count(); ++i) (void)tasks.get(i);
        tasks.clear();
        (void)best;
    }
}

TEST(ExampleDifferential, QuickstartWorkloadMatches) {
    ProfilingSession session;
    drive_quickstart(session);
    session.stop();
    expect_equivalent(session);
}

TEST(ExampleDifferential, EventByEventFoldMatchesBatchFold) {
    ProfilingSession session;
    drive_quickstart(session);
    session.stop();

    const std::vector<InstanceInfo> instances = session.registry().snapshot();
    IncrementalAnalyzer batched, single;
    for (const InstanceInfo& info : instances) {
        batched.declare_instance(info);
        single.declare_instance(info);
    }
    for (const InstanceInfo& info : instances) {
        const std::span<const AccessEvent> events =
            session.store().events(info.id);
        batched.fold(events);
        for (const AccessEvent& ev : events) single.fold(ev);
    }
    EXPECT_EQ(batched.events_folded(), single.events_folded());
    EXPECT_EQ(report_text(batched.finish(instances)),
              report_text(single.finish(instances)));
}

// --- live sessions: ordered sink delivery -----------------------------------

/// Multithreaded workload in the style of examples/multithreaded_profiling:
/// a producer fills a shared list while two consumers scan it, plus one
/// private list per consumer.
void drive_multithreaded(ProfilingSession& session) {
    ds::ProfiledList<std::int64_t> work(&session,
                                        {"Shared.Pipeline", "Run", 11});
    std::mutex work_mutex;
    std::jthread producer([&] {
        for (std::int64_t i = 0; i < 2000; ++i) {
            const std::scoped_lock lock(work_mutex);
            work.add(i);
        }
    });
    auto consumer = [&](int which) {
        ds::ProfiledList<std::int64_t> local(
            &session,
            {"Shared.Pipeline", "Consume", 20u + static_cast<unsigned>(which)});
        for (int round = 0; round < 50; ++round) {
            {
                const std::scoped_lock lock(work_mutex);
                for (std::size_t i = 0; i < work.count(); ++i)
                    (void)work.get(i);
            }
            for (int i = 0; i < 40; ++i) local.add(i);
            local.clear();
        }
    };
    std::jthread consumer1(consumer, 1);
    std::jthread consumer2(consumer, 2);
}

TEST(LiveSessionDifferential, StreamingSinkMatchesPostmortem) {
    ProfilingSession session(CaptureMode::Streaming);
    IncrementalAnalyzer inc;
    core::attach_incremental(session, inc);
    drive_multithreaded(session);
    session.stop();

    ASSERT_GT(session.events_recorded(), 0u);
    EXPECT_EQ(inc.events_folded(), session.events_recorded());
    const AnalysisResult pm = Dsspy{}.analyze(session);
    expect_reports_equal(pm, Dsspy::finish(inc, session));
}

TEST(LiveSessionDifferential, BufferedSinkMatchesPostmortem) {
    ProfilingSession session(CaptureMode::Buffered);
    IncrementalAnalyzer inc;
    core::attach_incremental(session, inc);
    drive_multithreaded(session);
    session.stop();

    EXPECT_EQ(inc.events_folded(), session.events_recorded());
    const AnalysisResult pm = Dsspy{}.analyze(session);
    expect_reports_equal(pm, Dsspy::finish(inc, session));
}

TEST(LiveSessionDifferential, IncrementalModeRetainsNoEvents) {
    // Same deterministic single-threaded workload twice: once retained for
    // post-mortem analysis, once in AnalysisMode::Incremental where the
    // store must stay empty and the verdicts must still match.
    ProfilingSession reference;
    drive_quickstart(reference);
    reference.stop();
    const AnalysisResult pm = Dsspy{}.analyze(reference);

    ProfilingSession session(CaptureMode::Streaming, 64 * 1024,
                             AnalysisMode::Incremental);
    IncrementalAnalyzer inc;
    core::attach_incremental(session, inc);
    drive_quickstart(session);
    session.stop();

    EXPECT_EQ(session.store().total_events(), 0u);
    EXPECT_EQ(inc.events_folded(), session.events_recorded());
    EXPECT_EQ(session.events_recorded(), reference.events_recorded());
    expect_reports_equal(pm, Dsspy::finish(inc, session));
}

TEST(LiveSessionDifferential, SnapshotDoesNotPerturbAndMatchesPrefix) {
    ProfilingSession session;
    drive_quickstart(session);
    session.stop();
    const std::vector<InstanceInfo> instances = session.registry().snapshot();
    ASSERT_EQ(instances.size(), 1u);
    const std::span<const AccessEvent> events =
        session.store().events(instances[0].id);
    const std::size_t half = events.size() / 2;

    IncrementalAnalyzer streamed, prefix_only;
    streamed.declare_instance(instances[0]);
    prefix_only.declare_instance(instances[0]);
    streamed.fold(events.subspan(0, half));
    prefix_only.fold(events.subspan(0, half));

    // A mid-stream snapshot equals the terminal report of an analyzer that
    // saw only the prefix ...
    EXPECT_EQ(report_text(streamed.snapshot(instances)),
              report_text(prefix_only.finish(instances)));

    // ... and taking it must not change the final verdicts.
    streamed.fold(events.subspan(half));
    const AnalysisResult pm = Dsspy{}.analyze(session);
    expect_reports_equal(pm, streamed.finish(instances));
}

// --- adversarial synthetic workloads ----------------------------------------

TEST(SyntheticDifferential, SortAfterInsertClosedRun) {
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "SaiClosed");
    for (int i = 0; i < 150; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    session.record(id, OpKind::Sort, kWholeContainer, 150);
    for (int i = 0; i < 20; ++i) session.record(id, OpKind::Get, i, 150);
    session.stop();
    EXPECT_TRUE(has_kind(Dsspy{}.analyze(session),
                         UseCaseKind::SortAfterInsert));
    expect_equivalent(session);
}

TEST(SyntheticDifferential, SortAfterInsertOpenRunAtSort) {
    // The qualifying insertion run is still open when the Sort arrives,
    // and a second insert run is still open at end of stream.
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "SaiOpen");
    for (int i = 0; i < 140; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    session.record(id, OpKind::Sort, kWholeContainer, 140);
    for (int i = 0; i < 120; ++i)
        session.record(id, OpKind::Add, 140 + i,
                       static_cast<std::uint32_t>(141 + i));
    session.record(id, OpKind::Sort, kWholeContainer, 260);
    session.stop();
    EXPECT_TRUE(has_kind(Dsspy{}.analyze(session),
                         UseCaseKind::SortAfterInsert));
    expect_equivalent(session);
}

TEST(SyntheticDifferential, StaleInsertPhaseOutsideSortGap) {
    // The insertion phase ends, then more than sai_max_gap_events reads
    // pass before the Sort: the candidate must have expired in both
    // pipelines.
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "SaiStale");
    for (int i = 0; i < 150; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    for (int i = 0; i < 40; ++i) session.record(id, OpKind::Get, i, 150);
    session.record(id, OpKind::Sort, kWholeContainer, 150);
    session.stop();
    EXPECT_FALSE(has_kind(Dsspy{}.analyze(session),
                          UseCaseKind::SortAfterInsert));
    expect_equivalent(session);
}

TEST(SyntheticDifferential, WriteWithoutReadTail) {
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "WwrTail");
    for (int i = 0; i < 20; ++i) session.record(id, OpKind::Add, i, i + 1);
    for (int i = 0; i < 40; ++i) session.record(id, OpKind::Get, i % 20, 20);
    for (int i = 0; i < 15; ++i) session.record(id, OpKind::Set, i, 20);
    session.stop();
    EXPECT_TRUE(has_kind(Dsspy{}.analyze(session),
                         UseCaseKind::WriteWithoutRead));
    expect_equivalent(session);
}

TEST(SyntheticDifferential, ImplementQueueTwoEndTraffic) {
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "Queueish");
    std::uint32_t size = 0;
    for (int i = 0; i < 30; ++i) {
        session.record(id, OpKind::Add, size, size + 1);
        ++size;
    }
    for (int i = 0; i < 45; ++i) {
        session.record(id, OpKind::Add, size, size + 1);
        ++size;
        session.record(id, OpKind::Get, 0, size);
        session.record(id, OpKind::Get, size - 1, size);
        --size;
        session.record(id, OpKind::RemoveAt, 0, size);
    }
    session.stop();
    EXPECT_TRUE(has_kind(Dsspy{}.analyze(session),
                         UseCaseKind::ImplementQueue));
    expect_equivalent(session);
}

TEST(SyntheticDifferential, StackImplementationCommonEnd) {
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "Stackish");
    std::uint32_t size = 0;
    for (int round = 0; round < 15; ++round) {
        session.record(id, OpKind::Add, size, size + 1);
        ++size;
        session.record(id, OpKind::Add, size, size + 1);
        ++size;
        session.record(id, OpKind::RemoveAt, size - 1, size - 1);
        --size;
        session.record(id, OpKind::RemoveAt, size - 1, size - 1);
        --size;
    }
    session.stop();
    EXPECT_TRUE(has_kind(Dsspy{}.analyze(session),
                         UseCaseKind::StackImplementation));
    expect_equivalent(session);
}

TEST(SyntheticDifferential, InsertDeleteFrontAndArrayResizes) {
    ProfilingSession session;
    const InstanceId front = reg(session, DsKind::List, "FrontChurn");
    std::uint32_t size = 0;
    for (int i = 0; i < 60; ++i) session.record(front, OpKind::InsertAt, 0, ++size);
    for (int i = 0; i < 60; ++i) session.record(front, OpKind::RemoveAt, 0, --size);
    const InstanceId arr = reg(session, DsKind::Array, "GrowingArray", 2);
    std::uint32_t cap = 4;
    for (int i = 0; i < 12; ++i) {
        session.record(arr, OpKind::Resize, kWholeContainer, cap *= 2);
        for (std::uint32_t p = 0; p < 4; ++p)
            session.record(arr, OpKind::Set, p, cap);
    }
    session.stop();
    EXPECT_TRUE(has_kind(Dsspy{}.analyze(session),
                         UseCaseKind::InsertDeleteFront));
    expect_equivalent(session);
}

TEST(SyntheticDifferential, FrequentSearchAndLongRead) {
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "Searchy");
    for (int i = 0; i < 100; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    for (int sweep = 0; sweep < 12; ++sweep)
        for (int i = 0; i < 100; ++i) session.record(id, OpKind::Get, i, 100);
    for (int i = 0; i < 1100; ++i)
        session.record(id, OpKind::IndexOf, i % 100, 100);
    session.stop();
    const AnalysisResult pm = Dsspy{}.analyze(session);
    EXPECT_TRUE(has_kind(pm, UseCaseKind::FrequentSearch));
    EXPECT_TRUE(has_kind(pm, UseCaseKind::FrequentLongRead));
    expect_equivalent(session);
}

TEST(SyntheticDifferential, WholeContainerOpsAndForAll) {
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "WholeOps");
    for (int i = 0; i < 50; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    for (int i = 0; i < 5; ++i)
        session.record(id, OpKind::ForEach, kWholeContainer, 50);
    session.record(id, OpKind::Reverse, kWholeContainer, 50);
    session.record(id, OpKind::CopyTo, kWholeContainer, 50);
    session.record(id, OpKind::Clear, kWholeContainer, 0);
    session.stop();
    expect_equivalent(session);
}

TEST(SyntheticDifferential, InterleavedThreadsOnSharedInstance) {
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "SharedByThreads");
    for (int i = 0; i < 100; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    auto worker = [&session, id](int lane) {
        for (int round = 0; round < 30; ++round)
            for (int i = lane; i < 100; i += 2)
                session.record(id, OpKind::Get, i, 100);
    };
    {
        std::jthread a(worker, 0);
        std::jthread b(worker, 1);
    }
    session.stop();
    EXPECT_GE(session.thread_count(), 2u);
    expect_equivalent(session);
}

TEST(SyntheticDifferential, EmptySessionAndEventFreeInstance) {
    ProfilingSession empty;
    empty.stop();
    expect_equivalent(empty);

    ProfilingSession session;
    (void)reg(session, DsKind::List, "NeverTouched");
    const InstanceId used = reg(session, DsKind::List, "Touched", 3);
    for (int i = 0; i < 10; ++i) session.record(used, OpKind::Add, i, i + 1);
    session.mark_deallocated(used);
    session.stop();
    expect_equivalent(session);
}

TEST(SyntheticDifferential, NonDefaultConfigs) {
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "Configured");
    for (int i = 0; i < 40; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    session.record(id, OpKind::Sort, kWholeContainer, 40);
    for (int i = 0; i < 40; ++i) session.record(id, OpKind::Get, i, 40);
    for (int i = 0; i < 30; ++i) session.record(id, OpKind::IndexOf, i, 40);
    session.stop();

    DetectorConfig sensitive;
    sensitive.min_pattern_events = 1;
    sensitive.li_min_phase_events = 5;
    sensitive.sai_min_phase_events = 5;
    sensitive.fs_min_search_ops = 10;
    sensitive.iq_min_events = 5;
    sensitive.flr_min_read_patterns = 1;
    expect_equivalent(session, sensitive);

    DetectorConfig timed = sensitive;
    timed.share_basis = core::ShareBasis::Time;
    expect_equivalent(session, timed);

    DetectorConfig strict;
    strict.min_pattern_events = 7;
    strict.wwr_min_events = 2;
    expect_equivalent(session, strict);
}

// --- streaming trace readers (satellite regression tests) --------------------

struct RecordingSink final : runtime::TraceSink {
    std::vector<InstanceInfo> instances;
    std::map<InstanceId, std::vector<AccessEvent>> events;
    void on_instance(const InstanceInfo& info) override {
        instances.push_back(info);
    }
    void on_events(std::span<const AccessEvent> batch) override {
        for (const AccessEvent& ev : batch) events[ev.instance].push_back(ev);
    }
};

/// A session whose instance metadata is hostile to CSV: commas, escaped
/// quotes, and embedded newlines, with names long enough that any refill
/// boundary lands inside quoted fields.
void drive_hostile_names(ProfilingSession& session) {
    std::string gnarly = "Ty,pe\"quoted\"\nline2<";
    for (int i = 0; i < 12; ++i) gnarly += "pad,\"x\"\nmore";
    gnarly += ">";
    const InstanceId a = session.register_instance(
        DsKind::List, gnarly, {"Cl,ass\"A\"", "Meth\nod,One", 7});
    const InstanceId b = session.register_instance(
        DsKind::Array, "Plain<int>", {"Plain.Class", "Run", 2});
    for (int i = 0; i < 120; ++i) {
        session.record(a, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
        session.record(b, OpKind::Set, i % 8, 8);
    }
    for (int i = 0; i < 40; ++i) session.record(a, OpKind::Get, i, 120);
}

void expect_stream_matches_slurp(const std::string& bytes,
                                 std::size_t buffer_bytes) {
    SCOPED_TRACE("buffer_bytes=" + std::to_string(buffer_bytes));
    std::istringstream slurp_in(bytes);
    const runtime::Trace trace = runtime::read_trace(slurp_in);

    RecordingSink sink;
    std::istringstream stream_in(bytes);
    const std::size_t delivered =
        runtime::read_trace_stream(stream_in, sink, buffer_bytes);

    EXPECT_EQ(delivered, trace.store.total_events());
    ASSERT_EQ(sink.instances.size(), trace.instances.size());
    for (std::size_t i = 0; i < sink.instances.size(); ++i)
        EXPECT_TRUE(sink.instances[i] == trace.instances[i]);
    for (const InstanceInfo& info : trace.instances) {
        const std::span<const AccessEvent> expected =
            trace.store.events(info.id);
        const std::vector<AccessEvent>& got = sink.events[info.id];
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_TRUE(got[i] == expected[i]);
    }
}

TEST(StreamingTraceReader, CsvQuoteStateSurvivesEveryBufferBoundary) {
    ProfilingSession session;
    drive_hostile_names(session);
    session.stop();
    std::ostringstream os;
    (void)runtime::write_trace(os, session, runtime::TraceFormat::Csv);
    const std::string bytes = os.str();
    // 64 is the reader's floor; odd sizes walk refill boundaries through
    // quoted fields, escaped quotes, and embedded newlines.
    for (std::size_t buffer : {std::size_t{1}, std::size_t{64},
                               std::size_t{65}, std::size_t{97},
                               std::size_t{1} << 20})
        expect_stream_matches_slurp(bytes, buffer);
}

TEST(StreamingTraceReader, Dst1PrefixCarryMatchesSlurp) {
    ProfilingSession session;
    drive_hostile_names(session);
    session.stop();
    std::ostringstream os;
    (void)runtime::write_trace(os, session, runtime::TraceFormat::Binary);
    const std::string bytes = os.str();
    for (std::size_t buffer : {std::size_t{64}, std::size_t{1} << 20})
        expect_stream_matches_slurp(bytes, buffer);
}

TEST(StreamingTraceReader, StreamedAnalyzeMatchesPostmortemBothFormats) {
    // The `dsspy analyze` default path: stream the trace into an
    // IncrementalAnalyzer and compare with slurp + post-mortem analysis.
    ProfilingSession session;
    drive_quickstart(session);
    session.stop();
    for (const runtime::TraceFormat format :
         {runtime::TraceFormat::Csv, runtime::TraceFormat::Binary}) {
        SCOPED_TRACE(format == runtime::TraceFormat::Csv ? "csv" : "binary");
        std::ostringstream os;
        (void)runtime::write_trace(os, session, format);
        const std::string bytes = os.str();

        std::istringstream slurp_in(bytes);
        const runtime::Trace trace = runtime::read_trace(slurp_in);
        const AnalysisResult pm =
            Dsspy{}.analyze(trace.instances, trace.store);

        IncrementalAnalyzer inc;
        struct AnalyzerSink final : runtime::TraceSink {
            IncrementalAnalyzer& inc;
            std::vector<InstanceInfo> instances;
            explicit AnalyzerSink(IncrementalAnalyzer& a) : inc(a) {}
            void on_instance(const InstanceInfo& info) override {
                instances.push_back(info);
                inc.declare_instance(info);
            }
            void on_events(std::span<const AccessEvent> batch) override {
                inc.fold(batch);
            }
        } sink{inc};
        std::istringstream stream_in(bytes);
        (void)runtime::read_trace_stream(stream_in, sink, 128);
        expect_reports_equal(pm, inc.finish(sink.instances));
    }
}

void expect_both_readers_throw_same(const std::string& bytes) {
    std::string slurp_error;
    try {
        std::istringstream in(bytes);
        (void)runtime::read_trace(in);
        FAIL() << "read_trace accepted malformed input";
    } catch (const std::runtime_error& err) {
        slurp_error = err.what();
    }
    try {
        RecordingSink sink;
        std::istringstream in(bytes);
        (void)runtime::read_trace_stream(in, sink, 64);
        FAIL() << "read_trace_stream accepted malformed input";
    } catch (const std::runtime_error& err) {
        EXPECT_EQ(slurp_error, err.what());
    }
}

TEST(StreamingTraceReader, MalformedInputParityWithSlurpReader) {
    // Unterminated quote.
    expect_both_readers_throw_same("I,0,List,\"unterminated,oops\n");
    // Unknown record tag.
    expect_both_readers_throw_same("X,1,2,3\n");
    // Wrong field count on an event record.
    expect_both_readers_throw_same("E,1,2\n");
    // Non-numeric field.
    expect_both_readers_throw_same(
        "I,0,List,T,C,M,1,0\nE,abc,0,0,Get,0,1,0\n");

    // Truncated DST1 payload.
    ProfilingSession session;
    const InstanceId id = reg(session, DsKind::List, "Truncated");
    for (int i = 0; i < 500; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    session.stop();
    std::ostringstream os;
    (void)runtime::write_trace(os, session, runtime::TraceFormat::Binary);
    const std::string bytes = os.str();
    expect_both_readers_throw_same(bytes.substr(0, bytes.size() - 7));
}

}  // namespace
}  // namespace dsspy
