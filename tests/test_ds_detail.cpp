// Tests for the container internals: introsort, the open-addressing hash
// core, the AVL core, and RawBuffer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ds/detail/avl_tree.hpp"
#include "ds/detail/hash_table.hpp"
#include "ds/detail/raw_buffer.hpp"
#include "ds/detail/sort.hpp"
#include "support/rng.hpp"

namespace dsspy::ds::detail {
namespace {

// ------------------------------ introsort ----------------------------------

class IntrosortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IntrosortTest, MatchesStdSortOnRandomData) {
    support::Rng rng(GetParam());
    std::vector<std::int64_t> data(1 + GetParam() * 977 % 20'000);
    for (auto& v : data)
        v = static_cast<std::int64_t>(rng.next_below(1000));
    std::vector<std::int64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    introsort(data.data(), data.data() + data.size());
    EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IntrosortTest,
                         ::testing::Values(1, 2, 3, 7, 23, 24, 25, 100, 999),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

TEST(Introsort, AdversarialShapes) {
    for (int shape = 0; shape < 5; ++shape) {
        std::vector<int> data(5000);
        for (int i = 0; i < 5000; ++i) {
            switch (shape) {
                case 0: data[static_cast<size_t>(i)] = i; break;          // sorted
                case 1: data[static_cast<size_t>(i)] = 5000 - i; break;   // reversed
                case 2: data[static_cast<size_t>(i)] = 7; break;          // constant
                case 3: data[static_cast<size_t>(i)] = i % 4; break;      // few values
                default: data[static_cast<size_t>(i)] = i % 2 ? i : -i;   // sawtooth
            }
        }
        std::vector<int> expected = data;
        std::sort(expected.begin(), expected.end());
        introsort(data.data(), data.data() + data.size());
        EXPECT_EQ(data, expected) << "shape " << shape;
    }
}

TEST(Introsort, EmptyAndSingle) {
    std::vector<int> empty;
    introsort(empty.data(), empty.data());
    std::vector<int> one{42};
    introsort(one.data(), one.data() + 1);
    EXPECT_EQ(one[0], 42);
}

TEST(Introsort, MoveOnlyFriendlyComparator) {
    std::vector<std::string> data{"pear", "apple", "fig", "banana"};
    introsort(data.data(), data.data() + data.size(),
              [](const std::string& a, const std::string& b) {
                  return a.size() < b.size();
              });
    EXPECT_EQ(data.front().size(), 3u);
    EXPECT_EQ(data.back().size(), 6u);
}

TEST(HeapSortFallback, SortsDirectly) {
    support::Rng rng(5);
    std::vector<int> data(3000);
    for (auto& v : data) v = static_cast<int>(rng.next_below(100));
    std::vector<int> expected = data;
    std::sort(expected.begin(), expected.end());
    heap_sort(data.data(), data.data() + data.size(), std::less<int>{});
    EXPECT_EQ(data, expected);
}

TEST(InsertionSortUnit, SmallInputs) {
    std::vector<int> data{3, 1, 2};
    insertion_sort(data.data(), data.data() + data.size(),
                   std::less<int>{});
    EXPECT_EQ(data, (std::vector<int>{1, 2, 3}));
}

// ------------------------------ hash table ---------------------------------

TEST(HashTableCore, GrowsAndFindsEverything) {
    HashTable<int, int> table;
    for (int i = 0; i < 5000; ++i)
        EXPECT_TRUE(table.insert_if_absent(i, i * 2));
    EXPECT_EQ(table.size(), 5000u);
    EXPECT_GE(table.bucket_count(), 5000u);
    for (int i = 0; i < 5000; ++i) {
        const int* v = table.find(i);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, i * 2);
    }
}

TEST(HashTableCore, PathologicalHashStillWorks) {
    struct BadHash {
        std::size_t operator()(int) const { return 42; }  // all collide
    };
    HashTable<int, int, BadHash> table;
    for (int i = 0; i < 300; ++i) table.insert_or_assign(i, i);
    for (int i = 0; i < 300; ++i) {
        ASSERT_NE(table.find(i), nullptr);
        EXPECT_EQ(*table.find(i), i);
    }
    for (int i = 0; i < 300; i += 2) EXPECT_TRUE(table.erase(i));
    for (int i = 1; i < 300; i += 2) EXPECT_NE(table.find(i), nullptr);
    EXPECT_EQ(table.size(), 150u);
}

TEST(HashTableCore, TombstoneReuseKeepsTableCompact) {
    HashTable<int, int> table;
    // Insert/erase churn at a bounded live size must not grow unboundedly.
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 64; ++i)
            table.insert_or_assign(round * 64 + i, i);
        for (int i = 0; i < 64; ++i) EXPECT_TRUE(table.erase(round * 64 + i));
    }
    EXPECT_EQ(table.size(), 0u);
    EXPECT_LT(table.bucket_count(), 4096u);
}

// ------------------------------ AVL core ------------------------------------

TEST(AvlCore, LowerBoundSemantics) {
    AvlTree<int, int> tree;
    for (int v : {10, 20, 30}) tree.insert_if_absent(v, v);
    ASSERT_NE(tree.lower_bound(15), nullptr);
    EXPECT_EQ(tree.lower_bound(15)->key, 20);
    EXPECT_EQ(tree.lower_bound(10)->key, 10);
    EXPECT_EQ(tree.lower_bound(31), nullptr);
    EXPECT_TRUE(tree.validate());
}

TEST(AvlCore, HeightIsLogarithmic) {
    AvlTree<int, std::byte> tree;
    for (int i = 0; i < 100'000; ++i)
        tree.insert_if_absent(i, std::byte{});
    // 1.44 * log2(100002) ~= 24.
    EXPECT_LE(tree.height(), 25);
    EXPECT_TRUE(tree.validate());
}

TEST(AvlCore, EraseTwoChildrenNodes) {
    AvlTree<int, int> tree;
    for (int v : {50, 30, 70, 20, 40, 60, 80}) tree.insert_if_absent(v, v);
    EXPECT_TRUE(tree.erase(50));  // root with two children
    EXPECT_FALSE(tree.contains(50));
    EXPECT_TRUE(tree.validate());
    EXPECT_EQ(tree.size(), 6u);
    for (int v : {30, 70, 20, 40, 60, 80}) EXPECT_TRUE(tree.contains(v));
}

// ------------------------------ raw buffer ----------------------------------

TEST(RawBuffer, MoveTransfersOwnership) {
    RawBuffer<int> a(16);
    int* data = a.data();
    RawBuffer<int> b(std::move(a));
    EXPECT_EQ(b.data(), data);
    EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(a.capacity(), 0u);
    EXPECT_EQ(b.capacity(), 16u);
    RawBuffer<int> c;
    c = std::move(b);
    EXPECT_EQ(c.data(), data);
}

TEST(RawBuffer, ZeroCapacity) {
    RawBuffer<int> buffer(0);
    EXPECT_EQ(buffer.data(), nullptr);
    EXPECT_EQ(buffer.capacity(), 0u);
}

}  // namespace
}  // namespace dsspy::ds::detail
