// Tests for the self-telemetry layer (src/obs): per-thread shard
// aggregation determinism, histogram bucket math, JSON / Prometheus
// exporters, the DSSPY_SPAN macro, the self-overhead estimate, orphan
// event surfacing, and the differential guarantee that enabling telemetry
// never changes an analysis result.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dsspy.hpp"
#include "core/export.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/self_overhead.hpp"
#include "obs/span.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/profile_store.hpp"
#include "runtime/session.hpp"

namespace dsspy::obs {
namespace {

/// Enables the global registry for one test and restores the disabled
/// default (with zeroed cells) on exit, keeping tests order-independent.
class GlobalTelemetryGuard {
public:
    GlobalTelemetryGuard() {
        MetricsRegistry::global().reset();
        MetricsRegistry::global().set_enabled(true);
    }
    ~GlobalTelemetryGuard() {
        MetricsRegistry::global().set_enabled(false);
        MetricsRegistry::global().reset();
    }
};

const MetricValue* find_metric(const std::vector<MetricValue>& metrics,
                               std::string_view name) {
    for (const MetricValue& m : metrics)
        if (m.name == name) return &m;
    return nullptr;
}

TEST(ObsRegistry, RegistrationInternsByName) {
    MetricsRegistry reg;
    const MetricId a = reg.counter("test.hits");
    const MetricId b = reg.counter("test.hits");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, kInvalidMetric);
    // Same name, different kind: refused.
    EXPECT_EQ(reg.gauge("test.hits"), kInvalidMetric);
}

TEST(ObsRegistry, CounterAggregatesExactlyAcrossThreads) {
    MetricsRegistry reg;
    reg.set_enabled(true);
    const MetricId hits = reg.counter("test.hits");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg, hits] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) reg.add(hits);
        });
    for (std::thread& th : threads) th.join();

    const std::vector<MetricValue> metrics = reg.collect();
    const MetricValue* m = find_metric(metrics, "test.hits");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind, MetricKind::Counter);
    EXPECT_EQ(m->value, kThreads * kPerThread);
    EXPECT_GE(reg.shard_count(), 1u);
}

TEST(ObsRegistry, DeterministicUnderThreadPoolSharding) {
    // The same logical work sharded across different pool widths must
    // aggregate to identical totals — counters sum, shardings differ.
    constexpr std::uint64_t kItems = 50000;
    std::vector<std::uint64_t> totals;
    for (unsigned pool_threads : {1u, 2u, 4u}) {
        MetricsRegistry reg;
        reg.set_enabled(true);
        const MetricId items = reg.counter("test.items");
        const MetricId batch = reg.histogram("test.batch");
        par::ThreadPool pool(pool_threads);
        par::parallel_for_chunks(
            pool, 0, kItems, [&](std::size_t lo, std::size_t hi) {
                reg.add(items, hi - lo);
                reg.observe(batch, hi - lo);
            });
        pool.wait_idle();
        const std::vector<MetricValue> metrics = reg.collect();
        const MetricValue* m = find_metric(metrics, "test.items");
        ASSERT_NE(m, nullptr);
        totals.push_back(m->value);
        const MetricValue* h = find_metric(metrics, "test.batch");
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->sum, kItems);
    }
    EXPECT_EQ(totals[0], kItems);
    EXPECT_EQ(totals[1], kItems);
    EXPECT_EQ(totals[2], kItems);
}

TEST(ObsRegistry, GaugesAggregateAsMax) {
    MetricsRegistry reg;
    reg.set_enabled(true);
    const MetricId depth = reg.gauge("test.depth");
    reg.gauge_set(depth, 5);
    reg.gauge_max(depth, 3);  // lower: ignored
    std::thread other([&reg, depth] { reg.gauge_max(depth, 9); });
    other.join();
    const std::vector<MetricValue> metrics = reg.collect();
    const MetricValue* m = find_metric(metrics, "test.depth");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->value, 9u);
}

TEST(ObsRegistry, InvalidMetricUpdatesAreNoOps) {
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.counter("test.hits");
    reg.add(kInvalidMetric, 100);
    reg.observe(kInvalidMetric, 100);
    reg.gauge_set(kInvalidMetric, 100);
    reg.gauge_max(kInvalidMetric, 100);
    const std::vector<MetricValue> metrics = reg.collect();
    const MetricValue* m = find_metric(metrics, "test.hits");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->value, 0u);
}

TEST(ObsRegistry, ResetZeroesCellsButKeepsRegistrations) {
    MetricsRegistry reg;
    reg.set_enabled(true);
    const MetricId hits = reg.counter("test.hits");
    reg.add(hits, 7);
    reg.reset();
    const std::vector<MetricValue> metrics = reg.collect();
    const MetricValue* m = find_metric(metrics, "test.hits");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->value, 0u);
    EXPECT_EQ(reg.counter("test.hits"), hits);
}

TEST(ObsRegistry, ConcurrentRegistrationAndUpdateStress) {
    // Lock-free shard list + mutexed registration under contention; run
    // under DSSPY_SANITIZE=thread this is the TSan sweep of the registry.
    MetricsRegistry reg;
    reg.set_enabled(true);
    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg, &ready, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) std::this_thread::yield();
            const MetricId shared = reg.counter("stress.shared");
            const MetricId own =
                reg.counter("stress.own." + std::to_string(t));
            const MetricId hist = reg.histogram("stress.hist");
            for (int i = 0; i < 5000; ++i) {
                reg.add(shared);
                reg.add(own);
                reg.observe(hist, static_cast<std::uint64_t>(i));
                if (i % 1000 == 0) (void)reg.collect();
            }
        });
    for (std::thread& th : threads) th.join();
    const std::vector<MetricValue> metrics = reg.collect();
    const MetricValue* shared = find_metric(metrics, "stress.shared");
    ASSERT_NE(shared, nullptr);
    EXPECT_EQ(shared->value, kThreads * 5000u);
    const MetricValue* hist = find_metric(metrics, "stress.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, kThreads * 5000u);
}

TEST(ObsHistogram, BucketBoundaries) {
    // Bucket 0 is [0,2); bucket i>0 is [2^i, 2^(i+1)); the last bucket
    // absorbs everything above.
    EXPECT_EQ(MetricsRegistry::bucket_index(0), 0u);
    EXPECT_EQ(MetricsRegistry::bucket_index(1), 0u);
    EXPECT_EQ(MetricsRegistry::bucket_index(2), 1u);
    EXPECT_EQ(MetricsRegistry::bucket_index(3), 1u);
    EXPECT_EQ(MetricsRegistry::bucket_index(4), 2u);
    EXPECT_EQ(MetricsRegistry::bucket_index(7), 2u);
    EXPECT_EQ(MetricsRegistry::bucket_index(8), 3u);
    EXPECT_EQ(MetricsRegistry::bucket_index((1ull << 31) - 1), 30u);
    EXPECT_EQ(MetricsRegistry::bucket_index(1ull << 31), 31u);
    EXPECT_EQ(MetricsRegistry::bucket_index(~std::uint64_t{0}),
              kHistogramBuckets - 1);

    EXPECT_EQ(MetricsRegistry::bucket_upper_bound(0), 1u);
    EXPECT_EQ(MetricsRegistry::bucket_upper_bound(1), 3u);
    EXPECT_EQ(MetricsRegistry::bucket_upper_bound(2), 7u);

    // Observations land where bucket_index says, and count/sum track.
    MetricsRegistry reg;
    reg.set_enabled(true);
    const MetricId h = reg.histogram("test.hist");
    for (const std::uint64_t v : {0ull, 1ull, 2ull, 1024ull})
        reg.observe(h, v);
    const std::vector<MetricValue> metrics = reg.collect();
    const MetricValue* m = find_metric(metrics, "test.hist");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->count, 4u);
    EXPECT_EQ(m->sum, 1027u);
    EXPECT_EQ(m->buckets[0], 2u);
    EXPECT_EQ(m->buckets[1], 1u);
    EXPECT_EQ(m->buckets[10], 1u);
}

TEST(ObsExport, JsonAndPrometheusCarryTheSameSnapshot) {
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.add(reg.counter("test.count"), 42);
    reg.gauge_set(reg.gauge("test.gauge"), 7);
    const MetricId h = reg.histogram("test.lat");
    reg.observe(h, 1);
    reg.observe(h, 1000);
    const std::vector<MetricValue> metrics = reg.collect();

    std::ostringstream json;
    write_metrics_json(json, metrics);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"test.count\""), std::string::npos);
    EXPECT_NE(j.find("\"value\": 42"), std::string::npos);
    EXPECT_NE(j.find("\"test.gauge\""), std::string::npos);
    EXPECT_NE(j.find("\"test.lat\""), std::string::npos);
    EXPECT_NE(j.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(j.find("\"sum\": 1001"), std::string::npos);

    std::ostringstream prom;
    write_metrics_prometheus(prom, metrics);
    const std::string p = prom.str();
    EXPECT_NE(p.find("dsspy_test_count 42"), std::string::npos);
    EXPECT_NE(p.find("dsspy_test_gauge 7"), std::string::npos);
    EXPECT_NE(p.find("dsspy_test_lat_count 2"), std::string::npos);
    EXPECT_NE(p.find("dsspy_test_lat_sum 1001"), std::string::npos);
    EXPECT_NE(p.find("dsspy_test_lat_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    // Cumulative buckets: the le="1" bucket holds only the observe(1).
    EXPECT_NE(p.find("dsspy_test_lat_bucket{le=\"1\"} 1"),
              std::string::npos);

    // Equal registry states export byte-identical documents.
    std::ostringstream json2;
    write_metrics_json(json2, reg.collect());
    EXPECT_EQ(j, json2.str());
}

TEST(ObsExport, SelfOverheadAppearsWhenGiven) {
    MetricsRegistry reg;
    SelfOverhead overhead;
    overhead.events = 1000;
    overhead.capture_wall_ns = 5000000;
    overhead.estimated_slowdown = 1.25;
    std::ostringstream json;
    write_metrics_json(json, reg.collect(), &overhead);
    EXPECT_NE(json.str().find("\"self_overhead\""), std::string::npos);
    EXPECT_NE(json.str().find("\"estimated_slowdown\""), std::string::npos);
    std::ostringstream prom;
    write_metrics_prometheus(prom, reg.collect(), &overhead);
    EXPECT_NE(prom.str().find("dsspy_self_overhead_estimated_slowdown"),
              std::string::npos);
}

TEST(ObsSpan, MacroTimesScopeIntoGlobalHistogram) {
    const GlobalTelemetryGuard guard;
    {
        DSSPY_SPAN("test.scope");
        std::this_thread::yield();
    }
    const std::vector<MetricValue> metrics =
        MetricsRegistry::global().collect();
    const MetricValue* m = find_metric(metrics, "span.test.scope");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind, MetricKind::Histogram);
    EXPECT_EQ(m->count, 1u);
}

TEST(ObsSelfOverhead, EstimateIsSaneAndClamped) {
    const SelfOverhead est = estimate_self_overhead(
        100000, 10'000'000,
        runtime::ProfilingSession::kTimestampStride);
    EXPECT_EQ(est.events, 100000u);
    EXPECT_GT(est.instrumented_ns_per_event, 0.0);
    EXPECT_GT(est.amortized_ns_per_event, 0.0);
    EXPECT_GE(est.overhead_fraction, 0.0);
    EXPECT_GE(est.estimated_slowdown, 1.0);
    // The amortized path reads the clock 1/stride as often; it must not
    // cost more than the clock-every-event loop by any real margin.
    EXPECT_LT(est.amortized_ns_per_event,
              est.instrumented_ns_per_event * 1.5);

    const SelfOverhead zero = estimate_self_overhead(0, 10'000'000, 64);
    EXPECT_DOUBLE_EQ(zero.estimated_slowdown, 1.0);
}

TEST(ObsOrphans, StoreCountsEventsPastTheRegisteredRange) {
    runtime::ProfileStore store;
    std::vector<runtime::AccessEvent> events(7);
    for (std::size_t i = 0; i < events.size(); ++i) {
        events[i].seq = i;
        events[i].instance = i < 3 ? 0u : 5u;  // 4 events on id 5
    }
    store.append(events);
    EXPECT_EQ(store.orphan_events(6), 0u);
    EXPECT_EQ(store.orphan_events(5), 4u);
    EXPECT_EQ(store.orphan_events(0), 7u);
}

TEST(ObsOrphans, SessionSurfacesStoreOnlyEvents) {
    runtime::ProfilingSession session;
    // Record against an instance id the registry never issued.
    for (int i = 0; i < 5; ++i)
        session.record(7, runtime::OpKind::Add, i, 1);
    session.stop();
    EXPECT_EQ(session.orphan_events(), 5u);
    EXPECT_EQ(session.store().total_events(), 5u);
}

TEST(ObsDifferential, TelemetryDoesNotChangeAnalysisResults) {
    // Fixed synthetic input (hand-built store, deterministic timestamps):
    // the exported analysis JSON must be bit-identical with telemetry on
    // and off.
    const auto build_input = [](std::vector<runtime::InstanceInfo>& instances,
                                runtime::ProfileStore& store) {
        runtime::InstanceInfo info;
        info.id = 0;
        info.kind = runtime::DsKind::List;
        info.type_name = "List<Int32>";
        info.location.class_name = "Obs.Test";
        info.location.method = "Main";
        info.location.position = 1;
        instances.push_back(info);
        std::vector<runtime::AccessEvent> events;
        events.reserve(300);
        for (std::uint64_t i = 0; i < 300; ++i) {
            runtime::AccessEvent ev;
            ev.seq = i;
            ev.time_ns = 1000 + 10 * i;
            ev.instance = 0;
            ev.op = i < 150 ? runtime::OpKind::Add : runtime::OpKind::Get;
            ev.position = i < 150 ? static_cast<std::int64_t>(i)
                                  : static_cast<std::int64_t>(i - 150);
            ev.size = i < 150 ? static_cast<std::uint32_t>(i + 1) : 150u;
            ev.thread = 0;
            events.push_back(ev);
        }
        store.append(events);
        store.finalize();
    };

    const auto analyze_to_json = [&] {
        std::vector<runtime::InstanceInfo> instances;
        runtime::ProfileStore store;
        build_input(instances, store);
        const core::Dsspy analyzer;
        const core::AnalysisResult result =
            analyzer.analyze(instances, store,
                             &par::ThreadPool::default_pool());
        std::ostringstream os;
        core::write_analysis_json(os, result);
        return os.str();
    };

    const std::string off = analyze_to_json();
    std::string on;
    {
        const GlobalTelemetryGuard guard;
        on = analyze_to_json();
    }
    EXPECT_EQ(off, on);

    // And the telemetry actually ran during the "on" pass: the analyze
    // span must have fired at least once (the guard reset the registry
    // afterwards, so re-run and inspect inside a guard).
    {
        const GlobalTelemetryGuard guard;
        (void)analyze_to_json();
        const MetricValue* span = find_metric(
            MetricsRegistry::global().collect(), "span.analyze.total");
        ASSERT_NE(span, nullptr);
        EXPECT_GE(span->count, 1u);
    }
}

}  // namespace
}  // namespace dsspy::obs
