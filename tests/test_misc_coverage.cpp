// Remaining coverage: Probe move semantics, report filters, iterator
// interop, and miscellaneous edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>

#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "ds/ds.hpp"

namespace dsspy {
namespace {

using runtime::ProfilingSession;

TEST(Probe, MoveTransfersRecordingOwnership) {
    ProfilingSession session;
    ds::Probe a(&session, runtime::DsKind::List, "List<Int32>",
                {"C", "M", 1});
    const runtime::InstanceId id = a.id();
    ds::Probe b(std::move(a));
    EXPECT_FALSE(a.profiled());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.profiled());
    EXPECT_EQ(b.id(), id);
    b.rec(runtime::OpKind::Add, 0, 1);
    a.rec(runtime::OpKind::Add, 1, 2);  // no-op: a was moved from
    session.stop();
    EXPECT_EQ(session.store().events(id).size(), 1u);
    // The instance is NOT yet deallocated: b still owns it.
    // (b goes out of scope after stop(); mark happens then.)
}

TEST(Probe, MoveAssignmentReleasesPrevious) {
    ProfilingSession session;
    ds::Probe a(&session, runtime::DsKind::List, "List<Int32>",
                {"C", "A", 1});
    ds::Probe b(&session, runtime::DsKind::List, "List<Int32>",
                {"C", "B", 2});
    const runtime::InstanceId a_id = a.id();
    const runtime::InstanceId b_id = b.id();
    a = std::move(b);
    // a's original instance was released (deallocated); a now records as b.
    EXPECT_TRUE(session.registry().info(a_id).deallocated);
    EXPECT_FALSE(session.registry().info(b_id).deallocated);
    EXPECT_EQ(a.id(), b_id);
}

TEST(Report, ParallelOnlyFilterSkipsSequentialUseCases) {
    ProfilingSession session;
    {
        // Stack-Implementation only (sequential).
        ds::ProfiledList<int> stack(&session, {"R", "Stack", 1});
        for (int round = 0; round < 30; ++round) {
            stack.add(round);
            stack.add(round);
            stack.remove_at(stack.count() - 1);
        }
        while (stack.count() > 0) stack.remove_at(stack.count() - 1);
    }
    session.stop();
    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);

    std::ostringstream all;
    core::print_use_case_report(all, analysis, /*parallel_only=*/false);
    EXPECT_NE(all.str().find("Stack-Implementation"), std::string::npos);

    std::ostringstream parallel;
    core::print_use_case_report(parallel, analysis, /*parallel_only=*/true);
    EXPECT_NE(parallel.str().find("No use cases detected."),
              std::string::npos);
}

TEST(List, IteratorInteropWithStdAlgorithms) {
    ds::List<int> list{5, 3, 1, 4, 2};
    EXPECT_EQ(std::accumulate(list.begin(), list.end(), 0), 15);
    std::sort(list.begin(), list.end());
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    const ds::List<int>& clist = list;
    EXPECT_EQ(*std::max_element(clist.begin(), clist.end()), 5);
}

TEST(Array, IteratorInterop) {
    ds::Array<int> arr(5);
    std::iota(arr.begin(), arr.end(), 10);
    EXPECT_EQ(arr[0], 10);
    EXPECT_EQ(arr[4], 14);
    EXPECT_EQ(std::accumulate(arr.begin(), arr.end(), 0), 60);
}

TEST(Queue, MoveAssignment) {
    ds::Queue<int> a;
    a.enqueue(1);
    a.enqueue(2);
    ds::Queue<int> b;
    b.enqueue(99);
    b = std::move(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.dequeue(), 1);
    EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AnalysisResult, UseCaseConfidenceIsExported) {
    ProfilingSession session;
    {
        ds::ProfiledList<int> list(&session, {"Conf", "M", 1});
        for (int i = 0; i < 3000; ++i) list.add(i);
    }
    session.stop();
    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);
    const auto ucs = analysis.all_use_cases();
    ASSERT_EQ(ucs.size(), 1u);
    EXPECT_GT(ucs[0].confidence(), 0.0);
    EXPECT_LE(ucs[0].confidence(), 1.0);
}

TEST(Session, CaptureDurationGrowsWhileRunning) {
    ProfilingSession session;
    std::atomic<int> sink{0};
    auto burn = [&sink] {
        for (int i = 0; i < 100000; ++i)
            sink.fetch_add(1, std::memory_order_relaxed);
    };
    const auto d1 = session.capture_duration_ns();
    burn();
    const auto d2 = session.capture_duration_ns();
    EXPECT_GE(d2, d1);
    session.stop();
    const auto frozen = session.capture_duration_ns();
    burn();
    EXPECT_EQ(session.capture_duration_ns(), frozen);
}

}  // namespace
}  // namespace dsspy
