// Tests for the HTML report generator.
#include <gtest/gtest.h>

#include <sstream>

#include "core/dsspy.hpp"
#include "ds/ds.hpp"
#include "viz/html_report.hpp"

namespace dsspy::viz {
namespace {

core::AnalysisResult make_analysis(runtime::ProfilingSession& session) {
    {
        ds::ProfiledList<int> hot(&session,
                                  {"Html.Test<Gen>", "Hot & Fast", 1});
        for (int i = 0; i < 300; ++i) hot.add(i);
        ds::ProfiledList<int> cold(&session, {"Html.Test", "Cold", 2});
        cold.add(1);
        (void)cold.get(0);
    }
    session.stop();
    return core::Dsspy{}.analyze(session);
}

TEST(HtmlReport, ContainsSummaryTableAndUseCases) {
    runtime::ProfilingSession session;
    const auto analysis = make_analysis(session);
    std::ostringstream os;
    write_html_report(os, analysis);
    const std::string html = os.str();

    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("search space reduction"), std::string::npos);
    EXPECT_NE(html.find("Long-Insert"), std::string::npos);
    EXPECT_NE(html.find("Parallelize the insert operation."),
              std::string::npos);
    // Embedded SVG chart for the flagged instance.
    EXPECT_NE(html.find("<svg"), std::string::npos);
    // Both instances in the table.
    EXPECT_NE(html.find("Hot &amp; Fast"), std::string::npos);
    EXPECT_NE(html.find("Cold"), std::string::npos);
    EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(HtmlReport, EscapesMarkupInNames) {
    runtime::ProfilingSession session;
    const auto analysis = make_analysis(session);
    std::ostringstream os;
    write_html_report(os, analysis);
    const std::string html = os.str();
    // The raw "<Gen>" must never appear unescaped outside the SVG.
    EXPECT_NE(html.find("Html.Test&lt;Gen&gt;"), std::string::npos);
}

TEST(HtmlReport, CustomTitleAndEmptyAnalysis) {
    runtime::ProfilingSession session;
    session.stop();
    const auto analysis = core::Dsspy{}.analyze(session);
    std::ostringstream os;
    HtmlReportOptions options;
    options.title = "Custom <title>";
    write_html_report(os, analysis, options);
    EXPECT_NE(os.str().find("Custom &lt;title&gt;"), std::string::npos);
    EXPECT_NE(os.str().find("No flagged locations."), std::string::npos);
}

TEST(HtmlReport, FileOutput) {
    runtime::ProfilingSession session;
    const auto analysis = make_analysis(session);
    const std::string path = ::testing::TempDir() + "/dsspy_report.html";
    EXPECT_TRUE(write_html_report_file(path, analysis));
    std::remove(path.c_str());
    EXPECT_FALSE(write_html_report_file("/nonexistent/dir/x.html", analysis));
}

}  // namespace
}  // namespace dsspy::viz
