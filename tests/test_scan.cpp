// Tests for the static scanner and the synthetic source generator.
#include <gtest/gtest.h>

#include "scan/source_synth.hpp"
#include "scan/static_scanner.hpp"

namespace dsspy::scan {
namespace {

using runtime::DsKind;

ScanResult scan_one(const std::string& source) {
    StaticScanner scanner;
    SourceProgram program;
    program.name = "test";
    program.files.push_back(SourceFile{"test.cs", source});
    return scanner.scan_program(program);
}

TEST(StaticScanner, FindsGenericInstantiations) {
    const auto r = scan_one(R"(
        var a = new List<int>();
        var b = new Dictionary<string, int>(16);
        var c = new Stack<double>();
        var d = new Queue<Foo>();
        var e = new HashSet<long>();
    )");
    EXPECT_EQ(r.dynamic_total, 5u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::List)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::Dictionary)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::Stack)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::Queue)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::HashSet)], 1u);
}

TEST(StaticScanner, DistinguishesSortedVariantsAndLinkedList) {
    const auto r = scan_one(R"(
        var a = new SortedList<int, int>();
        var b = new SortedSet<int>();
        var c = new SortedDictionary<int, int>();
        var d = new LinkedList<int>();
        var e = new List<int>();
    )");
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::SortedList)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::SortedSet)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::SortedDictionary)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::LinkedList)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::List)], 1u);
}

TEST(StaticScanner, FindsNonGenericArrayListAndHashtable) {
    const auto r = scan_one(R"(
        var a = new ArrayList();
        var b = new Hashtable(64);
    )");
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::ArrayList)], 1u);
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::Hashtable)], 1u);
    EXPECT_EQ(r.dynamic_total, 2u);
}

TEST(StaticScanner, FindsArrays) {
    const auto r = scan_one(R"(
        var a = new double[256];
        var b = new int[n];
        var c = new Foo.Bar[x];
        int noarray = compute(x);
    )");
    EXPECT_EQ(r.arrays, 3u);
    EXPECT_EQ(r.dynamic_total, 0u);
}

TEST(StaticScanner, NestedGenericsAndMultipleOnOneLine) {
    const auto r = scan_one(
        "var a = new List<List<int>>(); var b = new List<int>();\n");
    EXPECT_EQ(r.by_kind[static_cast<size_t>(DsKind::List)], 2u);
}

TEST(StaticScanner, RecordsHitLocations) {
    const auto r = scan_one("\n\nvar a = new List<int>();\n");
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_EQ(r.hits[0].line, 3u);
    EXPECT_EQ(r.hits[0].file, "test.cs");
    EXPECT_EQ(r.hits[0].type_args, "int");
}

TEST(StaticScanner, CountsClassesAndListMembers) {
    const auto r = scan_one(R"(
        public class A {
            private List<int> items;
            public void M() {}
        }
        public class B {
            private int x;
        }
    )");
    EXPECT_EQ(r.classes, 2u);
    EXPECT_EQ(r.list_member_decls, 1u);
    EXPECT_EQ(r.classes_with_list_member, 1u);
}

TEST(StaticScanner, CountsNonEmptyLoc) {
    const auto r = scan_one("a\n\n  \nb\nc\n");
    EXPECT_EQ(r.loc, 3u);
}

TEST(SourceSynth, RoundTripsInstanceCountsExactly) {
    ProgramSpec spec;
    spec.name = "roundtrip";
    spec.loc = 2000;
    spec.instances[static_cast<size_t>(DsKind::List)] = 40;
    spec.instances[static_cast<size_t>(DsKind::Dictionary)] = 12;
    spec.instances[static_cast<size_t>(DsKind::Stack)] = 3;
    spec.instances[static_cast<size_t>(DsKind::Queue)] = 2;
    spec.instances[static_cast<size_t>(DsKind::ArrayList)] = 5;
    spec.instances[static_cast<size_t>(DsKind::Hashtable)] = 1;
    spec.arrays = 17;
    spec.seed = 99;

    const SourceProgram program = synthesize_program(spec);
    const ScanResult r = StaticScanner{}.scan_program(program);

    for (std::size_t k = 0; k < runtime::kDsKindCount; ++k)
        EXPECT_EQ(r.by_kind[k], spec.instances[k]) << "kind " << k;
    EXPECT_EQ(r.arrays, spec.arrays);
    EXPECT_EQ(r.dynamic_total, 63u);
}

TEST(SourceSynth, LocIsApproximatelyTarget) {
    ProgramSpec spec;
    spec.name = "loccheck";
    spec.loc = 5000;
    spec.instances[static_cast<size_t>(DsKind::List)] = 10;
    const SourceProgram program = synthesize_program(spec);
    const ScanResult r = StaticScanner{}.scan_program(program);
    EXPECT_GT(r.loc, 4000u);
    EXPECT_LT(r.loc, 6500u);
}

TEST(SourceSynth, DeterministicForSameSeed) {
    ProgramSpec spec;
    spec.name = "det";
    spec.loc = 500;
    spec.instances[static_cast<size_t>(DsKind::List)] = 5;
    spec.seed = 7;
    const SourceProgram a = synthesize_program(spec);
    const SourceProgram b = synthesize_program(spec);
    ASSERT_EQ(a.files.size(), b.files.size());
    for (std::size_t i = 0; i < a.files.size(); ++i)
        EXPECT_EQ(a.files[i].content, b.files[i].content);
}

TEST(SourceSynth, MemberDensityRoughlyMatches) {
    ProgramSpec spec;
    spec.name = "members";
    spec.loc = 12'000;
    spec.instances[static_cast<size_t>(DsKind::List)] = 30;
    spec.list_member_class_share = 1.0 / 3.0;
    const SourceProgram program = synthesize_program(spec);
    const ScanResult r = StaticScanner{}.scan_program(program);
    ASSERT_GT(r.classes, 10u);
    const double share = static_cast<double>(r.classes_with_list_member) /
                         static_cast<double>(r.classes);
    EXPECT_NEAR(share, 1.0 / 3.0, 0.12);
}

}  // namespace
}  // namespace dsspy::scan
