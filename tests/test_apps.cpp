// Tests for the seven evaluation apps: sequential/parallel equivalence,
// instrumentation transparency, and expected DSspy classifications.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/algorithmia.hpp"
#include "apps/app_registry.hpp"
#include "apps/astrogrep.hpp"
#include "apps/contentfinder.hpp"
#include "apps/cpubench.hpp"
#include "apps/gpdotnet.hpp"
#include "apps/mandelbrot.hpp"
#include "apps/text_corpus.hpp"
#include "apps/wordwheel.hpp"
#include "core/dsspy.hpp"

namespace dsspy::apps {
namespace {

using core::AnalysisResult;
using core::Dsspy;
using core::UseCaseKind;
using runtime::ProfilingSession;

// --------------------------- text corpus ----------------------------------

TEST(TextCorpus, DeterministicDocuments) {
    const auto a = make_documents(5, 20, 1);
    const auto b = make_documents(5, 20, 1);
    ASSERT_EQ(a.size(), 5u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].lines, b[i].lines);
    }
}

TEST(TextCorpus, DocumentsContainVocabularyWords) {
    const auto docs = make_documents(3, 30, 2);
    std::size_t lines = 0;
    for (const auto& doc : docs) lines += doc.lines.size();
    EXPECT_GT(lines, 30u);
    EXPECT_FALSE(corpus_vocabulary().empty());
}

TEST(TextCorpus, WordListHasValidLengths) {
    const auto words = make_word_list(1000);
    ASSERT_EQ(words.size(), 1000u);
    for (const auto& w : words) {
        EXPECT_GE(w.size(), 3u);
        EXPECT_LE(w.size(), 9u);
    }
}

// --------------------------- registry --------------------------------------

TEST(AppRegistry, HasSevenAppsWithPaperNumbers) {
    const auto& apps = evaluation_apps();
    ASSERT_EQ(apps.size(), 7u);
    std::size_t instances = 0;
    std::size_t flagged = 0;
    std::size_t loc = 0;
    for (const AppInfo& app : apps) {
        EXPECT_NE(app.run_sequential, nullptr);
        EXPECT_NE(app.run_parallel, nullptr);
        instances += app.paper_instances;
        flagged += app.paper_flagged;
        loc += app.paper_loc;
    }
    EXPECT_EQ(instances, 104u);  // "from 104 down to 24"
    EXPECT_EQ(flagged, 24u);
    EXPECT_EQ(loc, 15'550u);  // Table IV LOC total
    EXPECT_NE(find_app("Gpdotnet"), nullptr);
    EXPECT_EQ(find_app("nope"), nullptr);
}

// --------------------------- per-app behaviour ------------------------------

class AppTest : public ::testing::TestWithParam<std::size_t> {
protected:
    [[nodiscard]] const AppInfo& app() const {
        return evaluation_apps()[GetParam()];
    }
};

TEST_P(AppTest, SequentialRunIsDeterministic) {
    const RunResult a = app().run_sequential(nullptr);
    const RunResult b = app().run_sequential(nullptr);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST_P(AppTest, InstrumentationDoesNotChangeBehaviour) {
    const RunResult plain = app().run_sequential(nullptr);
    ProfilingSession session;
    const RunResult instrumented = app().run_sequential(&session);
    session.stop();
    EXPECT_DOUBLE_EQ(plain.checksum, instrumented.checksum);
    EXPECT_GT(session.store().total_events(), 100u);
}

TEST_P(AppTest, ParallelRunMatchesSequentialChecksum) {
    const RunResult seq = app().run_sequential(nullptr);
    par::ThreadPool pool(4);
    const RunResult par_result = app().run_parallel(pool);
    // Floating-point sums may be reordered; allow a tiny relative error.
    const double tolerance =
        1e-6 * std::max(1.0, std::abs(seq.checksum));
    EXPECT_NEAR(seq.checksum, par_result.checksum, tolerance)
        << app().name;
}

TEST_P(AppTest, InstrumentedInstanceCountMatchesPaper) {
    ProfilingSession session;
    (void)app().run_sequential(&session);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    EXPECT_EQ(analysis.list_array_instances(), app().paper_instances)
        << app().name;
}

TEST_P(AppTest, SimulatedRunMatchesSequentialChecksum) {
    const RunResult seq = app().run_sequential(nullptr);
    ASSERT_NE(app().run_simulated, nullptr);
    const RunResult sim = app().run_simulated(8);
    const double tolerance =
        1e-6 * std::max(1.0, std::abs(seq.checksum));
    EXPECT_NEAR(seq.checksum, sim.checksum, tolerance) << app().name;
    // The projected time on 8 virtual workers never exceeds the measured
    // sequential time by more than noise, and is positive.
    EXPECT_GT(sim.total_ns, 0u);
    EXPECT_LE(sim.parallelizable_ns, sim.total_ns);
}

TEST_P(AppTest, SimulatedSpeedupGrowsWithWorkers) {
    const RunResult one = app().run_simulated(1);
    const RunResult eight = app().run_simulated(8);
    // The 8-worker projection is at least as fast as the 1-worker one
    // (allow 25% timing noise on this shared machine).
    EXPECT_LT(static_cast<double>(eight.total_ns),
              static_cast<double>(one.total_ns) * 1.25)
        << app().name;
}

TEST_P(AppTest, ParallelizableFractionIsMeasured) {
    const RunResult seq = app().run_sequential(nullptr);
    EXPECT_GT(seq.total_ns, 0u);
    EXPECT_LE(seq.parallelizable_ns, seq.total_ns);
    const double fraction = seq.sequential_fraction();
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppTest, ::testing::Range<std::size_t>(0, 7),
    [](const auto& info) {
        std::string name = evaluation_apps()[info.param].name;
        for (char& ch : name)
            if (ch == ' ') ch = '_';
        return name;
    });

// --------------------------- flagged locations ------------------------------

std::size_t flagged_instances(const AnalysisResult& analysis) {
    return analysis.flagged_instances();
}

TEST(Algorithmia, FlagsPriorityQueueAndInits) {
    ProfilingSession session;
    (void)run_algorithmia(&session);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    const auto counts = analysis.use_case_counts();
    EXPECT_GE(counts[static_cast<size_t>(UseCaseKind::FrequentLongRead)],
              1u);
    EXPECT_GE(counts[static_cast<size_t>(UseCaseKind::LongInsert)], 3u);
    EXPECT_EQ(flagged_instances(analysis), 4u);  // paper: 4 of 16 (75%)
    EXPECT_NEAR(analysis.search_space_reduction(), 0.75, 1e-9);
}

TEST(Gpdotnet, FlagsTableVLocations) {
    ProfilingSession session;
    (void)run_gpdotnet(&session);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);

    bool population_li = false;
    bool population_flr = false;
    bool series_flr = false;
    bool fitness_li = false;
    bool fitness_flr = false;
    for (const auto& ia : analysis.instances()) {
        const auto& loc = ia.profile.info().location;
        for (const auto& uc : ia.use_cases) {
            if (loc.method == ".ctor") {
                population_li |= uc.kind == UseCaseKind::LongInsert;
                population_flr |= uc.kind == UseCaseKind::FrequentLongRead;
            }
            if (loc.method == "GenerateTerminalSet")
                series_flr |= uc.kind == UseCaseKind::FrequentLongRead;
            if (loc.method == "FitnessProportionateSelection") {
                fitness_li |= uc.kind == UseCaseKind::LongInsert;
                fitness_flr |= uc.kind == UseCaseKind::FrequentLongRead;
            }
        }
    }
    EXPECT_TRUE(population_li);   // Table V use case 3
    EXPECT_TRUE(population_flr);  // Table V use case 2
    EXPECT_TRUE(series_flr);      // Table V use case 1
    EXPECT_TRUE(fitness_li);      // Table V use case 5
    EXPECT_TRUE(fitness_flr);     // Table V use case 4
}

TEST(Mandelbrot, FlagsFourOfSevenInstances) {
    ProfilingSession session;
    (void)run_mandelbrot(&session);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    EXPECT_EQ(analysis.list_array_instances(), 7u);
    EXPECT_EQ(flagged_instances(analysis), 4u);  // paper: 4 of 7 (42.86%)
}

TEST(WordWheel, FlagsWordListAndSolutions) {
    ProfilingSession session;
    (void)run_wordwheel(&session);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    EXPECT_EQ(analysis.list_array_instances(), 5u);
    EXPECT_EQ(flagged_instances(analysis), 2u);  // paper: 2 of 5 (60%)
    const auto counts = analysis.use_case_counts();
    EXPECT_GE(counts[static_cast<size_t>(UseCaseKind::FrequentLongRead)],
              1u);
    EXPECT_GE(counts[static_cast<size_t>(UseCaseKind::LongInsert)], 1u);
}

TEST(Astrogrep, FlagsResultAccumulators) {
    ProfilingSession session;
    (void)run_astrogrep(&session);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    EXPECT_EQ(analysis.list_array_instances(), 21u);
    EXPECT_EQ(flagged_instances(analysis), 2u);  // paper: 2 of 21 (90.48%)
}

TEST(Contentfinder, FlagsTwoOfEleven) {
    ProfilingSession session;
    (void)run_contentfinder(&session);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    EXPECT_EQ(analysis.list_array_instances(), 11u);
    EXPECT_EQ(flagged_instances(analysis), 2u);  // paper: 2 of 11 (81.82%)
}

TEST(CpuBench, SequentialFractionDominates) {
    // The Table VI story: most of the suite's runtime is not covered by
    // the recommendation targets (Whetstone + pivoting chain).
    const RunResult seq = run_cpubench(nullptr);
    EXPECT_GT(seq.sequential_fraction(), 0.5);
}

TEST(Gpdotnet, ParallelizableFractionDominates) {
    // Opposite end of Table VI: fitness evaluation dominates (paper
    // measured a 3.89% sequential fraction).
    const RunResult seq = run_gpdotnet(nullptr);
    EXPECT_LT(seq.sequential_fraction(), 0.6);
}

}  // namespace
}  // namespace dsspy::apps
