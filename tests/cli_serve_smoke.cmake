# Black-box smoke test for `dsspy serve` / `dsspy push` (docs/SERVE.md):
# exit-code convention first, then a full daemon lifecycle — start on an
# ephemeral TCP port, push a freshly recorded trace, poll a status
# endpoint, and assert a clean SIGTERM shutdown.
# Run as: cmake -DDSSPY_BIN=<dsspy> -DWORK_DIR=<scratch> -P cli_serve_smoke.cmake
if(NOT DEFINED DSSPY_BIN)
  message(FATAL_ERROR "pass -DDSSPY_BIN=<path to the dsspy binary>")
endif()
if(NOT DEFINED WORK_DIR)
  set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

function(expect_exit code)
  execute_process(COMMAND ${DSSPY_BIN} ${ARGN}
                  RESULT_VARIABLE actual
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT actual EQUAL ${code})
    string(JOIN " " shown ${ARGN})
    message(FATAL_ERROR
      "dsspy ${shown}: expected exit ${code}, got ${actual}")
  endif()
endfunction()

# Usage errors (exit 2): malformed specs and missing operands.
expect_exit(2 serve --listen smoke-signal)
expect_exit(2 serve --listen tcp://127.0.0.1:notaport)
expect_exit(2 serve --max-tenants=0)
expect_exit(2 push)
expect_exit(2 push trace.csv --connect carrier-pigeon:coop)
expect_exit(2 push trace.csv --frame-bytes=0)

# Runtime failures (exit 1): missing trace file, daemon not running.
expect_exit(1 push ${WORK_DIR}/no_such_trace.csv
            --connect unix:${WORK_DIR}/no_daemon.sock)
expect_exit(1 serve --listen unix:/proc/definitely/not/writable.sock)

# The daemon lifecycle needs job control; drive it from a shell.
find_program(BASH_BIN bash)
if(NOT BASH_BIN)
  message(STATUS "bash not found; skipping the daemon lifecycle smoke")
  return()
endif()

file(WRITE ${WORK_DIR}/serve_smoke.sh [=[
set -eu
DSSPY="$1"; WORK="$2"
log="$WORK/serve_smoke.log"
trace="$WORK/serve_smoke_trace.csv"
rm -f "$log"

"$DSSPY" demo WordWheelSolver --summary --trace "$trace" --format=csv \
    > /dev/null

"$DSSPY" serve --listen tcp://127.0.0.1:0 --max-tenants=8 > "$log" 2>&1 &
pid=$!
trap 'kill -9 $pid 2> /dev/null || true' EXIT

# The daemon prints the kernel-resolved port once it is listening.
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on tcp:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' \
           "$log" 2> /dev/null || true)
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || { echo "daemon never started:"; cat "$log"; exit 1; }

# Push the recorded trace; the daemon's verdict names a finished tenant.
"$DSSPY" push "$trace" --connect "tcp://127.0.0.1:$port" | grep -q finished

# Poll a status endpoint over plain HTTP (bash /dev/tcp, no curl needed).
exec 3<> "/dev/tcp/127.0.0.1/$port"
printf 'GET /tenants HTTP/1.1\r\nHost: dsspy\r\n\r\n' >&3
tenants=$(cat <&3)
exec 3>&- || true
echo "$tenants" | grep -q '"state": "finished"'

# A second daemon on the same port must fail with a runtime error, and
# must not disturb the first.
"$DSSPY" serve --listen "tcp://127.0.0.1:$port" > /dev/null 2>&1 && exit 1
rc=$?
[ "$rc" -eq 1 ] || { echo "port-clash exit was $rc, want 1"; exit 1; }

# Clean shutdown: SIGTERM -> exit 0 and a shutdown summary in the log.
kill -TERM $pid
rc=0; wait $pid || rc=$?
trap - EXIT
[ "$rc" -eq 0 ] || { echo "SIGTERM exit was $rc, want 0"; cat "$log"; exit 1; }
grep -q "shut down after" "$log"
grep -q "finished" "$log"
]=])

execute_process(COMMAND ${BASH_BIN} ${WORK_DIR}/serve_smoke.sh
                        ${DSSPY_BIN} ${WORK_DIR}
                RESULT_VARIABLE smoke_rc)
if(NOT smoke_rc EQUAL 0)
  message(FATAL_ERROR "serve lifecycle smoke failed (exit ${smoke_rc})")
endif()
