# Black-box assertions of the CLI exit-code convention:
#   0  success
#   1  runtime failure (unknown app/program, unreadable input, failed job)
#   2  usage error (unknown command or flag, conflicting options)
# Run as: cmake -DDSSPY_BIN=<path-to-dsspy> -P cli_exit_codes.cmake
if(NOT DEFINED DSSPY_BIN)
  message(FATAL_ERROR "pass -DDSSPY_BIN=<path to the dsspy binary>")
endif()

function(expect_exit code)
  execute_process(COMMAND ${DSSPY_BIN} ${ARGN}
                  RESULT_VARIABLE actual
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT actual EQUAL ${code})
    string(JOIN " " shown ${ARGN})
    message(FATAL_ERROR
      "dsspy ${shown}: expected exit ${code}, got ${actual}")
  endif()
endfunction()

# Success paths.
expect_exit(0 list)
expect_exit(0 config)
expect_exit(0 config --threads=3)
expect_exit(0 run Mandelbrot --summary)
expect_exit(0 batch Mandelbrot WordWheelSolver --summary --threads=2)
expect_exit(0 advise Mandelbrot)
expect_exit(0 advise Mandelbrot --json)

# Usage errors: bad command, bad flag, missing operand, conflicting
# options, unsupported batch flags.
expect_exit(2)
expect_exit(2 frobnicate)
expect_exit(2 run Mandelbrot --no-such-flag)
expect_exit(2 analyze)
expect_exit(2 advise)
expect_exit(2 batch)
expect_exit(2 run Mandelbrot --threads=0)
expect_exit(2 analyze trace.csv --incremental --postmortem)
expect_exit(2 analyze trace.csv --incremental --json)
expect_exit(2 watch Mandelbrot --json)
expect_exit(2 batch Mandelbrot --trace out.csv)
expect_exit(2 batch Mandelbrot --html out.html)

# Runtime failures: unknown targets, unreadable input, one failed batch
# job, unwritable side outputs.
expect_exit(1 run NoSuchApp)
expect_exit(1 advise NoSuchTarget)
expect_exit(1 corpus NoSuchProgram)
expect_exit(1 analyze ${CMAKE_CURRENT_BINARY_DIR}/no_such_trace.dst)
expect_exit(1 convert ${CMAKE_CURRENT_BINARY_DIR}/no_such_trace.dst out.dst)
expect_exit(1 batch Mandelbrot NoSuchAnything --summary --threads=2)
expect_exit(1 run Mandelbrot --summary --trace /no-such-dir/sub/trace.csv)
