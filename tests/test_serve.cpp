// Serve-layer tests (DESIGN.md §12, docs/SERVE.md): the DSRV wire
// protocol, the multi-tenant daemon, and both clients.
//
// The load-bearing property is report parity: a trace pushed through the
// daemon must produce a report byte-identical to offline incremental
// analysis of the same bytes — including when the stream is cut mid-way
// (the aborted tenant's report equals offline analysis of the received
// prefix, with the truncation visible as orphan events, never as a crash
// or a wrong verdict).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "core/incremental.hpp"
#include "core/report.hpp"
#include "json_check.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "pipeline/run_plan.hpp"
#include "pipeline/serve_plan.hpp"
#include "runtime/trace_io.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/socket.hpp"
#include "serve/wire.hpp"
#include "support/table.hpp"

namespace {

using namespace dsspy;
using namespace std::chrono_literals;

// --- trace generation ---------------------------------------------------

/// Deterministic CSV trace: `n_instances` lists, each with an insert
/// phase then a read sweep (enough structure for the detectors to flag
/// some instances).  `seed` varies sizes so different tenants produce
/// different reports.
std::string make_trace(unsigned n_instances, unsigned events_per,
                       unsigned seed) {
    std::ostringstream os;
    for (unsigned i = 0; i < n_instances; ++i)
        os << "I," << i << ",0,List<Int32>,ServeTest,Method" << i << ','
           << (i + 1) << ",0\n";
    std::uint64_t seq = 0;
    for (unsigned i = 0; i < n_instances; ++i) {
        const unsigned events = events_per + (seed + i) % 7;
        const unsigned inserts = events / 2;
        unsigned size = 0;
        for (unsigned e = 0; e < events; ++e) {
            const bool insert = e < inserts;
            const unsigned op = insert ? 2u : 0u;  // Add : Get
            const unsigned pos = insert ? size : (e - inserts) % (size + 1);
            if (insert) ++size;
            os << "E," << seq << ',' << (seq * 10) << ',' << i << ',' << op
               << ',' << pos << ',' << size << ",1\n";
            ++seq;
        }
    }
    return os.str();
}

// --- offline reference --------------------------------------------------

class OfflineSink final : public runtime::TraceSink {
public:
    explicit OfflineSink(core::IncrementalAnalyzer& analyzer)
        : analyzer_(analyzer) {}
    void on_instance(const runtime::InstanceInfo& info) override {
        instances.push_back(info);
        analyzer_.declare_instance(info);
    }
    void on_events(std::span<const runtime::AccessEvent> events) override {
        analyzer_.fold(events);
    }
    std::vector<runtime::InstanceInfo> instances;

private:
    core::IncrementalAnalyzer& analyzer_;
};

/// What `dsspy analyze <trace> --report` prints for this CSV: the
/// use-case report plus the search-space reduction footer the CLI's
/// report sink appends.
std::string render_report(const core::StreamReport& report) {
    std::ostringstream os;
    core::print_use_case_report(os, report);
    os << "Search space reduction: "
       << support::Table::pct(report.search_space_reduction()) << " ("
       << report.flagged_instances() << " of "
       << report.list_array_instances()
       << " list/array instances flagged)\n";
    return os.str();
}

std::string offline_report(const std::string& csv) {
    core::IncrementalAnalyzer analyzer;
    OfflineSink sink(analyzer);
    std::istringstream is(csv);
    runtime::read_trace_stream(is, sink);
    return render_report(analyzer.finish(sink.instances));
}

/// What `dsspy advise <trace>` prints for this CSV: the structured
/// advice document.
std::string offline_advice(const std::string& csv) {
    core::IncrementalAnalyzer analyzer;
    OfflineSink sink(analyzer);
    std::istringstream is(csv);
    runtime::read_trace_stream(is, sink);
    std::ostringstream os;
    core::write_advice_json(os, analyzer.finish(sink.instances));
    return os.str();
}

// --- daemon fixture -----------------------------------------------------

serve::DaemonOptions loopback_options() {
    serve::DaemonOptions options;
    options.listen = "tcp://127.0.0.1:0";
    options.client_timeout_ms = 5000;
    return options;
}

std::string write_temp_trace(const std::string& name,
                             const std::string& body) {
    const std::string path =
        testing::TempDir() + "serve_" + name + ".csv";
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << body;
    return path;
}

/// Poll until the tenant reaches a terminal state (a closed socket is
/// seen by the daemon thread asynchronously).
serve::TenantSummary wait_terminal(const serve::Daemon& daemon,
                                   std::uint32_t id) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    for (;;) {
        for (const serve::TenantSummary& s : daemon.tenants())
            if (s.id == id && s.state != serve::TenantState::Streaming)
                return s;
        if (std::chrono::steady_clock::now() > deadline) {
            ADD_FAILURE() << "tenant " << id << " never finalized";
            return {};
        }
        std::this_thread::sleep_for(10ms);
    }
}

// --- wire / address tests ----------------------------------------------

TEST(ServeWire, AddressParsing) {
    std::string error;
    const auto unix_addr = serve::parse_address("unix:/tmp/x.sock", &error);
    ASSERT_TRUE(unix_addr.has_value());
    EXPECT_EQ(unix_addr->kind, serve::Address::Kind::Unix);
    EXPECT_EQ(unix_addr->path, "/tmp/x.sock");
    EXPECT_EQ(unix_addr->to_string(), "unix:/tmp/x.sock");

    const auto tcp = serve::parse_address("tcp://127.0.0.1:9909", &error);
    ASSERT_TRUE(tcp.has_value());
    EXPECT_EQ(tcp->kind, serve::Address::Kind::Tcp);
    EXPECT_EQ(tcp->host, "127.0.0.1");
    EXPECT_EQ(tcp->port, 9909u);

    EXPECT_FALSE(serve::parse_address("udp://x:1", &error).has_value());
    EXPECT_FALSE(serve::parse_address("unix:", &error).has_value());
    EXPECT_FALSE(serve::parse_address("tcp://h:notaport", &error)
                     .has_value());
    EXPECT_FALSE(serve::parse_address("tcp://h:70000", &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(ServeWire, EncodingRoundTrips) {
    const std::string hello = serve::wire::encode_hello("alpha");
    ASSERT_EQ(hello.substr(0, 4), serve::wire::kHelloMagic);
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(hello.data());
    EXPECT_EQ(serve::wire::get_u16(bytes + 4), serve::wire::kVersion);
    EXPECT_EQ(serve::wire::get_u16(bytes + 8), 5u);
    EXPECT_EQ(hello.substr(10), "alpha");

    const std::string accept = serve::wire::encode_accept(0xdeadbeef);
    const auto* abytes =
        reinterpret_cast<const unsigned char*>(accept.data());
    EXPECT_EQ(accept.substr(0, 4), serve::wire::kAcceptMagic);
    EXPECT_EQ(serve::wire::get_u32(abytes + 6), 0xdeadbeefu);

    const std::string header =
        serve::wire::encode_frame_header(serve::wire::kFrameTrace, 70000);
    ASSERT_EQ(header.size(), serve::wire::kFrameHeaderBytes);
    EXPECT_EQ(header[0], serve::wire::kFrameTrace);
    EXPECT_EQ(serve::wire::get_u32(reinterpret_cast<const unsigned char*>(
                                       header.data()) +
                                   1),
              70000u);
}

// --- end-to-end parity --------------------------------------------------

TEST(ServeDaemon, PushedReportIsByteIdenticalToOffline) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const std::string csv = make_trace(6, 400, 3);
    const std::string path = write_temp_trace("parity", csv);
    const serve::ClientResult result =
        serve::push_trace_file(daemon.address(), path, "parity");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_NE(result.summary.find("finished"), std::string::npos);

    const auto report = daemon.tenant_report(result.tenant_id);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(*report, offline_report(csv));

    const serve::TenantSummary s = wait_terminal(daemon, result.tenant_id);
    EXPECT_EQ(s.state, serve::TenantState::Finished);
    EXPECT_EQ(s.orphan_events, 0u);
    EXPECT_EQ(s.bytes, csv.size());
    daemon.stop();
}

TEST(ServeDaemon, ThirtyTwoConcurrentTenants) {
    serve::DaemonOptions options = loopback_options();
    options.max_tenants = 64;
    serve::Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    constexpr unsigned kTenants = 32;
    std::vector<std::string> traces(kTenants);
    std::vector<serve::ClientResult> results(kTenants);
    for (unsigned t = 0; t < kTenants; ++t)
        traces[t] = make_trace(2 + t % 4, 120, t);

    std::vector<std::thread> clients;
    clients.reserve(kTenants);
    for (unsigned t = 0; t < kTenants; ++t)
        clients.emplace_back([&, t] {
            const std::string path = write_temp_trace(
                "tenant" + std::to_string(t), traces[t]);
            results[t] = serve::push_trace_file(
                daemon.address(), path, "tenant" + std::to_string(t),
                /*frame_bytes=*/512 + t * 37);
        });
    for (std::thread& th : clients) th.join();

    for (unsigned t = 0; t < kTenants; ++t) {
        ASSERT_TRUE(results[t].ok) << "tenant " << t << ": "
                                   << results[t].error;
        const auto report = daemon.tenant_report(results[t].tenant_id);
        ASSERT_TRUE(report.has_value());
        EXPECT_EQ(*report, offline_report(traces[t]))
            << "tenant " << t << " diverged from offline analysis";
    }
    EXPECT_EQ(daemon.tenants().size(), kTenants);
    daemon.stop();
}

TEST(ServeDaemon, LiveSocketSinkMatchesOffline) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // Stream the same records through a SocketTraceSink (framed CSV on
    // the fly) and through the offline path.
    const std::string csv = make_trace(3, 300, 11);
    core::IncrementalAnalyzer offline;
    OfflineSink reference(offline);
    serve::SocketTraceSink sink(daemon.address(), "live",
                                /*flush_bytes=*/512);
    ASSERT_TRUE(sink.ok()) << sink.error();
    class Tee final : public runtime::TraceSink {
    public:
        Tee(runtime::TraceSink& a, runtime::TraceSink& b) : a_(a), b_(b) {}
        void on_instance(const runtime::InstanceInfo& info) override {
            a_.on_instance(info);
            b_.on_instance(info);
        }
        void on_events(
            std::span<const runtime::AccessEvent> events) override {
            a_.on_events(events);
            b_.on_events(events);
        }

    private:
        runtime::TraceSink& a_;
        runtime::TraceSink& b_;
    } tee(reference, sink);
    std::istringstream is(csv);
    runtime::read_trace_stream(is, tee);

    const serve::ClientResult result = sink.finish();
    ASSERT_TRUE(result.ok) << result.error;
    const std::string ref_text =
        render_report(offline.finish(reference.instances));
    const auto daemon_report = daemon.tenant_report(result.tenant_id);
    ASSERT_TRUE(daemon_report.has_value());
    EXPECT_EQ(*daemon_report, ref_text);
    daemon.stop();
}

// --- crash recovery -----------------------------------------------------

TEST(ServeDaemon, ClientCrashYieldsAbortedTenantWithOrphanCount) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // One declared instance with 5 events, plus 10 events on an instance
    // that never gets an 'I' record — then the client "crashes" (socket
    // closed, no end-of-stream frame).
    std::ostringstream os;
    os << "I,0,0,List<Int32>,Crash,Test,1,0\n";
    for (unsigned e = 0; e < 5; ++e)
        os << "E," << e << ',' << e * 10 << ",0,2," << e << ',' << e + 1
           << ",1\n";
    for (unsigned e = 5; e < 15; ++e)
        os << "E," << e << ',' << e * 10 << ",99,0,0,1,1\n";
    const std::string partial = os.str();

    std::uint32_t tenant_id = 0;
    serve::Socket sock = serve::open_tenant_stream(
        daemon.address(), "crash", &tenant_id, &error);
    ASSERT_TRUE(sock.valid()) << error;
    ASSERT_TRUE(sock.write_all(serve::wire::encode_frame_header(
        serve::wire::kFrameTrace,
        static_cast<std::uint32_t>(partial.size()))));
    ASSERT_TRUE(sock.write_all(partial));
    sock.close();  // crash: no 'E' frame, no clean shutdown

    const serve::TenantSummary s = wait_terminal(daemon, tenant_id);
    EXPECT_EQ(s.state, serve::TenantState::Aborted);
    EXPECT_NE(s.error.find("disconnected"), std::string::npos) << s.error;
    EXPECT_EQ(s.events, 15u);
    EXPECT_EQ(s.instances, 1u);
    EXPECT_EQ(s.orphan_events, 10u);

    // The partial report still equals offline analysis of the received
    // prefix: crash degrades to a finalized partial report.
    const auto report = daemon.tenant_report(tenant_id);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(*report, offline_report(partial));
    daemon.stop();
}

// --- failure isolation & bounds -----------------------------------------

TEST(ServeDaemon, MalformedFrameClosesOnlyThatConnection) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // Healthy tenant streams concurrently with a misbehaving one.
    const std::string csv = make_trace(2, 200, 5);
    std::uint32_t bad_id = 0;
    serve::Socket bad = serve::open_tenant_stream(daemon.address(), "bad",
                                                  &bad_id, &error);
    ASSERT_TRUE(bad.valid()) << error;
    ASSERT_TRUE(bad.write_all(
        serve::wire::encode_frame_header('Z', 12345)));  // unknown type

    const std::string path = write_temp_trace("isolated", csv);
    const serve::ClientResult good =
        serve::push_trace_file(daemon.address(), path, "good");
    ASSERT_TRUE(good.ok) << good.error;
    const auto report = daemon.tenant_report(good.tenant_id);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(*report, offline_report(csv));

    const serve::TenantSummary s = wait_terminal(daemon, bad_id);
    EXPECT_EQ(s.state, serve::TenantState::Aborted);
    EXPECT_NE(s.error.find("malformed frame"), std::string::npos)
        << s.error;
    EXPECT_GE(daemon.stats().malformed, 1u);
    daemon.stop();
}

TEST(ServeDaemon, OversizedFrameIsRejected) {
    serve::DaemonOptions options = loopback_options();
    options.max_frame_bytes = 1024;
    serve::Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    std::uint32_t id = 0;
    serve::Socket sock =
        serve::open_tenant_stream(daemon.address(), "big", &id, &error);
    ASSERT_TRUE(sock.valid()) << error;
    ASSERT_TRUE(sock.write_all(serve::wire::encode_frame_header(
        serve::wire::kFrameTrace, 1u << 20)));

    const serve::TenantSummary s = wait_terminal(daemon, id);
    EXPECT_EQ(s.state, serve::TenantState::Aborted);
    EXPECT_NE(s.error.find("max-frame-bytes"), std::string::npos)
        << s.error;
    daemon.stop();
}

TEST(ServeDaemon, TenantInstanceCapAbortsTenantNotDaemon) {
    serve::DaemonOptions options = loopback_options();
    options.max_tenant_instances = 3;
    serve::Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const std::string path =
        write_temp_trace("cap", make_trace(5, 50, 1));
    const serve::ClientResult result =
        serve::push_trace_file(daemon.address(), path, "cap");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("instance limit"), std::string::npos)
        << result.error;

    // The daemon survives and still accepts new work.
    const std::string ok_csv = make_trace(2, 50, 2);
    const std::string ok_path = write_temp_trace("cap_ok", ok_csv);
    const serve::ClientResult ok =
        serve::push_trace_file(daemon.address(), ok_path, "cap-ok");
    ASSERT_TRUE(ok.ok) << ok.error;
    daemon.stop();
}

TEST(ServeDaemon, TenantLimitRejectsWithReason) {
    serve::DaemonOptions options = loopback_options();
    options.max_tenants = 1;
    serve::Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    std::uint32_t first_id = 0;
    serve::Socket first = serve::open_tenant_stream(
        daemon.address(), "holder", &first_id, &error);
    ASSERT_TRUE(first.valid()) << error;  // holds the only slot open

    std::uint32_t second_id = 0;
    std::string second_error;
    serve::Socket second = serve::open_tenant_stream(
        daemon.address(), "overflow", &second_id, &second_error);
    EXPECT_FALSE(second.valid());
    EXPECT_NE(second_error.find("tenant limit"), std::string::npos)
        << second_error;
    EXPECT_GE(daemon.stats().rejected, 1u);
    daemon.stop();
}

// --- status endpoints ---------------------------------------------------

/// Minimal HTTP GET over the serve socket; returns the full response.
std::string http_get(const serve::Address& address,
                     const std::string& target) {
    std::string error;
    serve::Socket sock = serve::connect_to(address, &error);
    if (!sock.valid()) return "connect failed: " + error;
    const std::string request =
        "GET " + target + " HTTP/1.1\r\nHost: dsspy\r\n\r\n";
    if (!sock.write_all(request)) return "write failed";
    std::string response;
    char buf[4096];
    for (;;) {
        std::size_t got = 0;
        if (sock.read_some(buf, sizeof(buf), &got) != serve::IoStatus::Ok)
            break;
        response.append(buf, got);
    }
    return response;
}

TEST(ServeDaemon, HttpStatusEndpoints) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const std::string csv = make_trace(3, 150, 9);
    const std::string path = write_temp_trace("http", csv);
    const serve::ClientResult result =
        serve::push_trace_file(daemon.address(), path, "http-tenant");
    ASSERT_TRUE(result.ok) << result.error;

    const std::string health = http_get(daemon.address(), "/healthz");
    EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
    EXPECT_NE(health.find("ok"), std::string::npos);

    const std::string tenants = http_get(daemon.address(), "/tenants");
    EXPECT_NE(tenants.find("\"name\": \"http-tenant\""), std::string::npos)
        << tenants;
    EXPECT_NE(tenants.find("\"state\": \"finished\""), std::string::npos);

    const std::string report = http_get(
        daemon.address(),
        "/tenants/" + std::to_string(result.tenant_id) + "/report");
    const std::string offline = offline_report(csv);
    EXPECT_NE(report.find(offline), std::string::npos)
        << "report endpoint body diverged";

    const std::string metrics = http_get(daemon.address(), "/metrics");
    EXPECT_NE(metrics.find("dsspy_serve_connections"), std::string::npos);
    EXPECT_NE(
        metrics.find("dsspy_serve_tenant_events{tenant=\"" +
                     std::to_string(result.tenant_id) +
                     "\",name=\"http-tenant\",state=\"finished\"}"),
        std::string::npos)
        << metrics;

    const std::string missing = http_get(daemon.address(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos);
    daemon.stop();
}

TEST(ServeDaemon, AdviceEndpointMatchesOfflineAdvise) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const std::string csv = make_trace(3, 150, 9);
    const std::string path = write_temp_trace("advice", csv);
    const serve::ClientResult result =
        serve::push_trace_file(daemon.address(), path, "advice-tenant");
    ASSERT_TRUE(result.ok) << result.error;

    const std::string response = http_get(
        daemon.address(),
        "/tenants/" + std::to_string(result.tenant_id) + "/advice");
    EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
    EXPECT_NE(response.find("application/json"), std::string::npos);
    const std::size_t sep = response.find("\r\n\r\n");
    ASSERT_NE(sep, std::string::npos);
    const std::string body = response.substr(sep + 4);
    EXPECT_TRUE(dsspy_test::json_valid(body)) << body.substr(0, 400);
    EXPECT_EQ(body, offline_advice(csv))
        << "advice endpoint body diverged from offline dsspy advise";

    const std::string missing =
        http_get(daemon.address(), "/tenants/99999/advice");
    EXPECT_NE(missing.find("404"), std::string::npos);
    daemon.stop();
}

/// The response body (everything after the blank line); whole response
/// when no header separator is found.
std::string http_body(const std::string& response) {
    const std::size_t sep = response.find("\r\n\r\n");
    return sep == std::string::npos ? response : response.substr(sep + 4);
}

/// Quotes that start or end a label value (i.e. not preceded by an
/// escaping backslash); an even count means no value broke out.
std::size_t count_unescaped_quotes(const std::string& line) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '\\') {
            ++i;  // skip the escaped character
        } else if (line[i] == '"') {
            ++count;
        }
    }
    return count;
}

/// Open a tenant stream under `name`, end it cleanly, and wait for the
/// finished state.  Returns the tenant id (0 on failure).
std::uint32_t finish_named_tenant(const serve::Daemon& daemon,
                                  const std::string& name) {
    std::string error;
    std::uint32_t id = 0;
    serve::Socket sock =
        serve::open_tenant_stream(daemon.address(), name, &id, &error);
    EXPECT_TRUE(sock.valid()) << error;
    if (!sock.valid()) return 0;
    EXPECT_TRUE(sock.write_all(
        serve::wire::encode_frame_header(serve::wire::kFrameEnd, 0)));
    wait_terminal(daemon, id);
    return id;
}

TEST(ServeDaemon, HostileTenantNamesAreEscapedInJsonAndMetrics) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // Quotes, backslashes, a newline, braces, and multi-byte UTF-8 — a
    // tenant name is client-controlled and must not be able to corrupt
    // either exposition document.
    const std::string hostile = "evil\"name\\with\nnewline{}";
    const std::string utf8 = "tenant-\xc3\xbc";
    const std::uint32_t hostile_id = finish_named_tenant(daemon, hostile);
    const std::uint32_t utf8_id = finish_named_tenant(daemon, utf8);
    ASSERT_NE(hostile_id, 0u);
    ASSERT_NE(utf8_id, 0u);

    // /tenants stays parseable JSON with the name escaped, not raw.
    const std::string tenants =
        http_body(http_get(daemon.address(), "/tenants"));
    EXPECT_TRUE(dsspy_test::json_valid(tenants)) << tenants;
    EXPECT_NE(
        tenants.find("\"name\": \"evil\\\"name\\\\with\\u000anewline{}\""),
        std::string::npos)
        << tenants;
    EXPECT_NE(tenants.find("\"name\": \"" + utf8 + "\""),
              std::string::npos);

    // /metrics escapes the label value per the Prometheus exposition
    // format (backslash, quote, newline) and keeps one sample per line.
    const std::string metrics =
        http_body(http_get(daemon.address(), "/metrics"));
    EXPECT_NE(
        metrics.find("dsspy_serve_tenant_events{tenant=\"" +
                     std::to_string(hostile_id) +
                     "\",name=\"evil\\\"name\\\\with\\nnewline{}\","
                     "state=\"finished\"}"),
        std::string::npos)
        << metrics;
    std::istringstream lines(metrics);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("{tenant=") == std::string::npos) continue;
        // Well-formed sample: an even number of quotes, the brace block
        // closed, and a numeric value after it — a raw newline or quote
        // in the name would have split or unbalanced the line.
        EXPECT_EQ(count_unescaped_quotes(line) % 2, 0u) << line;
        const std::size_t close = line.rfind("} ");
        ASSERT_NE(close, std::string::npos) << line;
        for (std::size_t i = close + 2; i < line.size(); ++i)
            EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i])))
                << line;
    }
    daemon.stop();
}

TEST(ServeExport, PrometheusSampleSanitizesHostileLabelNames) {
    // Label names have no escape syntax in the exposition format, so the
    // writer must sanitize them: invalid characters map to '_', a
    // leading digit gets a '_' prefix, and empty names drop the label.
    std::ostringstream os;
    const std::array<obs::PromLabel, 4> labels = {{
        {"bad name\"}\n", "v1"},
        {"9lead", "v2"},
        {"", "dropped"},
        {"ok_name", "v3"},
    }};
    obs::write_prometheus_sample(os, "serve.test_series", labels, 7);
    EXPECT_EQ(os.str(),
              "dsspy_serve_test_series{bad_name___=\"v1\",_9lead=\"v2\","
              "ok_name=\"v3\"} 7\n");

    // All labels dropped: no empty brace block.
    std::ostringstream bare;
    const std::array<obs::PromLabel, 1> none = {{{"", "x"}}};
    obs::write_prometheus_sample(bare, "serve.test_series", none, 1);
    EXPECT_EQ(bare.str(), "dsspy_serve_test_series 1\n");
}

TEST(ServeDaemon, TenantTraceEndpointServesPerTenantTimelines) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    // start() turns the global span recorder on so live timelines work
    // without any CLI flag.
    EXPECT_TRUE(obs::trace_enabled());

    const std::string csv_a = make_trace(3, 200, 21);
    const std::string csv_b = make_trace(2, 150, 22);
    const serve::ClientResult a = serve::push_trace_file(
        daemon.address(), write_temp_trace("trace_a", csv_a), "trace-a");
    const serve::ClientResult b = serve::push_trace_file(
        daemon.address(), write_temp_trace("trace_b", csv_b), "trace-b");
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;

    const std::string trace_a = http_get(
        daemon.address(),
        "/tenants/" + std::to_string(a.tenant_id) + "/trace");
    EXPECT_NE(trace_a.find("200 OK"), std::string::npos) << trace_a;
    const std::string body_a = http_body(trace_a);
    EXPECT_TRUE(dsspy_test::json_valid(body_a)) << body_a;
    // The tenant's session renders as one tree: the root span plus
    // frame/fold/finalize children, annotated with the terminal state.
    EXPECT_NE(body_a.find("\"name\": \"serve.tenant\""), std::string::npos)
        << body_a;
    EXPECT_NE(body_a.find("\"name\": \"serve.fold\""), std::string::npos);
    EXPECT_NE(body_a.find("\"name\": \"serve.finalize\""),
              std::string::npos);
    EXPECT_NE(body_a.find("tenant=trace-a state=finished"),
              std::string::npos)
        << body_a;

    // The second tenant gets its own tree, not a copy of the first.
    const std::string body_b = http_body(http_get(
        daemon.address(),
        "/tenants/" + std::to_string(b.tenant_id) + "/trace"));
    EXPECT_TRUE(dsspy_test::json_valid(body_b));
    EXPECT_NE(body_b.find("tenant=trace-b state=finished"),
              std::string::npos);
    EXPECT_EQ(body_b.find("tenant=trace-a"), std::string::npos);
    EXPECT_NE(body_a, body_b);

    // The HTTP endpoint serves exactly what the API returns.
    const auto api_a = daemon.tenant_trace(a.tenant_id);
    ASSERT_TRUE(api_a.has_value());
    EXPECT_EQ(*api_a, body_a);
    EXPECT_FALSE(daemon.tenant_trace(999).has_value());
    const std::string missing =
        http_get(daemon.address(), "/tenants/999/trace");
    EXPECT_NE(missing.find("404"), std::string::npos) << missing;
    daemon.stop();

    // Leave the global recorder the way non-serve tests expect it.
    obs::TraceRecorder::global().set_enabled(false);
    obs::TraceRecorder::global().reset();
}

// --- unix transport & plan layer ----------------------------------------

TEST(ServeDaemon, UnixSocketRoundTripAndStaleReplacement) {
    const std::string sock_path = "/tmp/dsspy_test_serve.sock";
    // Plant a stale socket-path file (as a crashed daemon would leave
    // behind): a new daemon must probe it, find nobody answering, and
    // replace it.
    {
        std::ofstream stale(sock_path, std::ios::trunc);
        stale << "";
    }
    serve::DaemonOptions options;
    options.listen = "unix:" + sock_path;
    serve::Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const std::string csv = make_trace(2, 100, 4);
    const std::string path = write_temp_trace("unix", csv);
    const serve::ClientResult result =
        serve::push_trace_file(daemon.address(), path, "unix");
    ASSERT_TRUE(result.ok) << result.error;
    const auto report = daemon.tenant_report(result.tenant_id);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(*report, offline_report(csv));
    daemon.stop();
}

TEST(ServeDaemon, FailedBindNeverUnlinksALiveDaemonsSocket) {
    const std::string sock_path =
        testing::TempDir() + "dsspy_test_live.sock";
    serve::DaemonOptions options;
    options.listen = "unix:" + sock_path;
    serve::Daemon first(options);
    std::string error;
    ASSERT_TRUE(first.start(&error)) << error;

    // A second daemon on the same path must fail to bind (the probe
    // finds the first one alive) — and its failure path must leave the
    // first daemon's socket file alone.
    {
        serve::Daemon second(options);
        std::string second_error;
        EXPECT_FALSE(second.start(&second_error));
        EXPECT_NE(second_error.find("bind"), std::string::npos)
            << second_error;
    }

    // The first daemon is still reachable through the same socket file.
    const std::string csv = make_trace(2, 100, 6);
    const std::string path = write_temp_trace("live", csv);
    const serve::ClientResult result =
        serve::push_trace_file(first.address(), path, "live");
    ASSERT_TRUE(result.ok) << result.error;
    const auto report = first.tenant_report(result.tenant_id);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(*report, offline_report(csv));
    first.stop();
}

TEST(ServeDaemon, TerminalTenantsAreEvictedBeyondRetentionCap) {
    serve::DaemonOptions options = loopback_options();
    options.max_finished_tenants = 2;
    serve::Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    std::vector<std::uint32_t> ids;
    for (unsigned t = 0; t < 5; ++t) {
        const std::string csv = make_trace(2, 80, t);
        const std::string path =
            write_temp_trace("evict" + std::to_string(t), csv);
        const serve::ClientResult result = serve::push_trace_file(
            daemon.address(), path, "evict-" + std::to_string(t));
        ASSERT_TRUE(result.ok) << result.error;
        ids.push_back(result.tenant_id);
    }

    // Only the last max_finished_tenants terminal sessions survive;
    // older ones are gone from /tenants and their reports 404.
    EXPECT_EQ(daemon.tenants().size(), 2u);
    EXPECT_FALSE(daemon.tenant_report(ids[0]).has_value());
    EXPECT_FALSE(daemon.tenant_report(ids[2]).has_value());
    EXPECT_TRUE(daemon.tenant_report(ids[3]).has_value());
    EXPECT_TRUE(daemon.tenant_report(ids[4]).has_value());
    daemon.stop();
}

TEST(ServeDaemon, OversizedHelloNameIsTruncatedServerSide) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // Hand-rolled hello claiming a 300-byte name: the reference client
    // truncates before sending, so bypass it to prove the daemon
    // enforces the 255-byte cap itself.
    serve::Socket sock = serve::connect_to(daemon.address(), &error);
    ASSERT_TRUE(sock.valid()) << error;
    std::string hello(serve::wire::kHelloMagic);
    serve::wire::put_u16(hello, serve::wire::kVersion);
    serve::wire::put_u16(hello, 0);
    serve::wire::put_u16(hello, 300);
    hello.append(300, 'n');
    ASSERT_TRUE(sock.write_all(hello));

    std::array<unsigned char, 10> accept{};  // DSOK ver:u16 id:u32
    ASSERT_EQ(sock.read_exact(accept.data(), accept.size()),
              serve::IoStatus::Ok);
    ASSERT_EQ(std::string(reinterpret_cast<const char*>(accept.data()), 4),
              serve::wire::kAcceptMagic);
    const std::uint32_t id = serve::wire::get_u32(accept.data() + 6);
    ASSERT_TRUE(
        sock.write_all(serve::wire::encode_frame_header(serve::wire::kFrameEnd, 0)));

    const serve::TenantSummary s = wait_terminal(daemon, id);
    EXPECT_EQ(s.state, serve::TenantState::Finished);
    EXPECT_EQ(s.name, std::string(serve::wire::kMaxTenantNameBytes, 'n'));
    daemon.stop();
}

TEST(ServeDaemon, ReportIdBeyondUint32Is404NotAliased) {
    serve::Daemon daemon(loopback_options());
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const std::string csv = make_trace(2, 80, 7);
    const std::string path = write_temp_trace("overflow", csv);
    const serve::ClientResult result =
        serve::push_trace_file(daemon.address(), path, "overflow");
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(result.tenant_id, 1u);

    // 4294967297 == 2^32 + 1 truncates to 1; it must 404, not alias
    // tenant 1's report.
    const std::string aliased =
        http_get(daemon.address(), "/tenants/4294967297/report");
    EXPECT_NE(aliased.find("404"), std::string::npos) << aliased;
    const std::string real =
        http_get(daemon.address(), "/tenants/1/report");
    EXPECT_NE(real.find("200 OK"), std::string::npos) << real;
    daemon.stop();
}

TEST(ServePlan, RunServeHonorsStopAndRunPushRoundTrips) {
    const std::string sock_path = "/tmp/dsspy_test_plan.sock";
    pipeline::ServePlan plan;
    plan.listen = "unix:" + sock_path;
    std::atomic<bool> stop{false};
    std::ostringstream serve_out;  // only read after join: run_serve
    std::ostringstream serve_err;  // writes it from the server thread
    std::thread server([&] {
        EXPECT_EQ(pipeline::run_serve(plan, serve_out, serve_err, stop),
                  pipeline::kExitOk);
    });
    // Ready when the socket answers (scripts poll the printed line
    // instead; in-process we must not read the stream concurrently).
    serve::Address address;
    address.kind = serve::Address::Kind::Unix;
    address.path = sock_path;
    for (int i = 0; i < 500; ++i) {
        std::string probe_error;
        if (serve::Socket probe = serve::connect_to(address, &probe_error);
            probe.valid())
            break;
        std::this_thread::sleep_for(10ms);
    }

    pipeline::PushPlan push;
    push.connect = "unix:" + sock_path;
    const std::string csv = make_trace(2, 80, 8);
    push.trace_path = write_temp_trace("plan", csv);
    std::ostringstream push_out;
    std::ostringstream push_err;
    EXPECT_EQ(pipeline::run_push(push, push_out, push_err),
              pipeline::kExitOk)
        << push_err.str();
    EXPECT_NE(push_out.str().find("finished"), std::string::npos);

    // Bad specs are usage errors; a dead endpoint is a runtime error.
    std::ostringstream sink_out;
    std::ostringstream sink_err;
    push.connect = "carrier-pigeon:coop";
    EXPECT_EQ(pipeline::run_push(push, sink_out, sink_err),
              pipeline::kExitUsageError);
    push.connect = "unix:/tmp/dsspy_no_such_daemon.sock";
    EXPECT_EQ(pipeline::run_push(push, sink_out, sink_err),
              pipeline::kExitRuntimeError);

    stop.store(true, std::memory_order_release);
    server.join();
    EXPECT_NE(serve_out.str().find("listening on unix:" + sock_path),
              std::string::npos)
        << serve_out.str();
    EXPECT_NE(serve_out.str().find("shut down after"), std::string::npos);

    pipeline::ServePlan bad;
    bad.listen = "smoke-signal";
    std::atomic<bool> stop2{false};
    EXPECT_EQ(pipeline::run_serve(bad, serve_out, serve_err, stop2),
              pipeline::kExitUsageError);
}

}  // namespace
