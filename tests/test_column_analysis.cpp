// Differential tests for the columnar analysis core (DESIGN.md §11).
//
// Two layers of bit-identity guarantees are pinned here:
//   1. Kernel level — every vectorized detector kernel returns exactly the
//      scalar core's bits at every dispatch tier the CPU supports, over
//      adversarial fuzzed columns (remainder lengths, negative positions,
//      saturated sizes).
//   2. Verdict level — Dsspy::analyze (columnar, SIMD, event-balanced
//      shards) produces digest-identical results to analyze_reference (the
//      pre-columnar AoS path) across the seven evaluation apps and the
//      whole empirical-study corpus, for scalar and SIMD dispatch, under
//      1/2/4 worker threads, and through the zero-copy column reader.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/column_analysis.hpp"
#include "core/detector_kernels.hpp"
#include "core/dsspy.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "ds/ds.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/session.hpp"
#include "runtime/trace_binary.hpp"
#include "runtime/trace_mmap.hpp"

namespace dsspy::core {
namespace {

using kernels::SimdLevel;

// ------------------------------------------------------------- fuzz input

/// Deterministic 64-bit LCG (no std::random: identical streams everywhere).
struct Lcg {
    std::uint64_t state;
    std::uint64_t next() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 11;
    }
    std::uint64_t next(std::uint64_t bound) { return next() % bound; }
};

/// One fuzzed column set: valid ops plus derived types, positions with a
/// negative sprinkle, small-cardinality threads, occasional huge sizes.
struct FuzzColumns {
    std::vector<std::uint8_t> ops;
    std::vector<std::uint8_t> types;
    std::vector<std::int64_t> positions;
    std::vector<std::uint32_t> sizes;
    std::vector<std::uint16_t> threads;
};

FuzzColumns make_columns(std::size_t n, Lcg& rng) {
    FuzzColumns c;
    c.ops.resize(n);
    c.types.resize(n);
    c.positions.resize(n);
    c.sizes.resize(n);
    c.threads.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        c.ops[i] = static_cast<std::uint8_t>(rng.next(runtime::kOpKindCount));
        c.types[i] = static_cast<std::uint8_t>(derive_access_type(
            static_cast<runtime::OpKind>(c.ops[i])));
        const std::uint64_t r = rng.next(100);
        c.positions[i] = r < 10 ? -1
                                : static_cast<std::int64_t>(rng.next(64));
        c.sizes[i] = r > 95 ? 0xFFFFFFF0u + static_cast<std::uint32_t>(r)
                            : static_cast<std::uint32_t>(rng.next(64));
        c.threads[i] = static_cast<std::uint16_t>(rng.next(5));
    }
    return c;
}

/// Dispatch tiers to sweep: scalar always, plus whatever the CPU offers.
std::vector<SimdLevel> sweep_levels() {
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    kernels::reset_forced_simd_level();
    const SimdLevel best = kernels::active_simd_level();
    if (best >= SimdLevel::Sse42) levels.push_back(SimdLevel::Sse42);
    if (best >= SimdLevel::Avx2) levels.push_back(SimdLevel::Avx2);
    return levels;
}

/// Lengths that stress every remainder path (vector width 4/16/32).
constexpr std::size_t kFuzzLengths[] = {0,  1,  3,  4,   5,   15,  16, 17,
                                        31, 32, 33, 100, 255, 1000, 4097};

class KernelSweep : public ::testing::Test {
protected:
    void TearDown() override { kernels::reset_forced_simd_level(); }
};

TEST_F(KernelSweep, FoldKernelsMatchScalarAtEveryTier) {
    Lcg rng{42};
    for (const std::size_t n : kFuzzLengths) {
        const FuzzColumns c = make_columns(n, rng);

        // Scalar reference for every fold.
        kernels::force_simd_level(SimdLevel::Scalar);
        std::vector<std::uint8_t> ref_types(n);
        kernels::derive_types(c.ops.data(), n, ref_types.data());
        std::array<std::size_t, kAccessTypeCount> ref_hist{};
        kernels::type_histogram(c.types.data(), n, ref_hist);
        const std::uint32_t ref_max = kernels::max_size_u32(c.sizes.data(), n);
        const std::size_t ref_threads =
            kernels::distinct_threads(c.threads.data(), n);
        const std::size_t ref_resize =
            kernels::count_op(c.ops.data(), n, runtime::OpKind::Resize);
        EndTraffic ref_iq, ref_edge;
        kernels::end_traffic(c.types.data(), c.positions.data(),
                             c.sizes.data(), n, 3, ref_iq, ref_edge);
        const kernels::WeightedReads ref_wr =
            kernels::weighted_reads(c.types.data(), c.sizes.data(), n);
        const std::vector<Phase> ref_phases =
            kernels::phases_from_types(c.types.data(), n);
        std::vector<std::uint32_t> ref_sorts;
        kernels::collect_type_indices(
            c.types.data(), n, static_cast<std::uint8_t>(AccessType::Sort),
            ref_sorts);

        for (const SimdLevel level : sweep_levels()) {
            kernels::force_simd_level(level);
            SCOPED_TRACE(testing::Message()
                         << "n=" << n << " level="
                         << kernels::simd_level_name(level));

            std::vector<std::uint8_t> types(n);
            kernels::derive_types(c.ops.data(), n, types.data());
            EXPECT_EQ(types, ref_types);

            std::array<std::size_t, kAccessTypeCount> hist{};
            kernels::type_histogram(c.types.data(), n, hist);
            EXPECT_EQ(hist, ref_hist);

            EXPECT_EQ(kernels::max_size_u32(c.sizes.data(), n), ref_max);
            EXPECT_EQ(kernels::distinct_threads(c.threads.data(), n),
                      ref_threads);
            EXPECT_EQ(
                kernels::count_op(c.ops.data(), n, runtime::OpKind::Resize),
                ref_resize);

            EndTraffic iq, edge;
            kernels::end_traffic(c.types.data(), c.positions.data(),
                                 c.sizes.data(), n, 3, iq, edge);
            EXPECT_EQ(iq.front_insert, ref_iq.front_insert);
            EXPECT_EQ(iq.back_insert, ref_iq.back_insert);
            EXPECT_EQ(iq.front_delete, ref_iq.front_delete);
            EXPECT_EQ(iq.back_delete, ref_iq.back_delete);
            EXPECT_EQ(iq.front_read, ref_iq.front_read);
            EXPECT_EQ(iq.back_read, ref_iq.back_read);
            EXPECT_EQ(edge.front_insert, ref_edge.front_insert);
            EXPECT_EQ(edge.back_insert, ref_edge.back_insert);
            EXPECT_EQ(edge.front_delete, ref_edge.front_delete);
            EXPECT_EQ(edge.back_delete, ref_edge.back_delete);
            EXPECT_EQ(edge.front_read, ref_edge.front_read);
            EXPECT_EQ(edge.back_read, ref_edge.back_read);

            const kernels::WeightedReads wr =
                kernels::weighted_reads(c.types.data(), c.sizes.data(), n);
            EXPECT_EQ(wr.reads, ref_wr.reads);
            EXPECT_EQ(wr.total, ref_wr.total);

            const std::vector<Phase> phases =
                kernels::phases_from_types(c.types.data(), n);
            ASSERT_EQ(phases.size(), ref_phases.size());
            for (std::size_t p = 0; p < phases.size(); ++p) {
                EXPECT_EQ(phases[p].type, ref_phases[p].type);
                EXPECT_EQ(phases[p].first, ref_phases[p].first);
                EXPECT_EQ(phases[p].last, ref_phases[p].last);
            }

            std::vector<std::uint32_t> sorts;
            kernels::collect_type_indices(
                c.types.data(), n,
                static_cast<std::uint8_t>(AccessType::Sort), sorts);
            EXPECT_EQ(sorts, ref_sorts);

            // Constant-type span fold == general fold over a column filled
            // with that type, for every class the span kernel specializes
            // (plus one it must treat as a no-op).
            for (const AccessType span_type :
                 {AccessType::Read, AccessType::Write, AccessType::Insert,
                  AccessType::Delete, AccessType::Search}) {
                const auto ty = static_cast<std::uint8_t>(span_type);
                const std::vector<std::uint8_t> const_types(n, ty);
                EndTraffic span_iq, span_edge, full_iq, full_edge;
                kernels::end_traffic_span(ty, c.positions.data(),
                                          c.sizes.data(), n, 3, span_iq,
                                          span_edge);
                kernels::end_traffic(const_types.data(), c.positions.data(),
                                     c.sizes.data(), n, 3, full_iq,
                                     full_edge);
                EXPECT_EQ(span_iq.front_insert, full_iq.front_insert);
                EXPECT_EQ(span_iq.back_insert, full_iq.back_insert);
                EXPECT_EQ(span_iq.front_delete, full_iq.front_delete);
                EXPECT_EQ(span_iq.back_delete, full_iq.back_delete);
                EXPECT_EQ(span_iq.front_read, full_iq.front_read);
                EXPECT_EQ(span_iq.back_read, full_iq.back_read);
                EXPECT_EQ(span_edge.front_insert, full_edge.front_insert);
                EXPECT_EQ(span_edge.back_insert, full_edge.back_insert);
                EXPECT_EQ(span_edge.front_delete, full_edge.front_delete);
                EXPECT_EQ(span_edge.back_delete, full_edge.back_delete);
                EXPECT_EQ(span_edge.front_read, full_edge.front_read);
                EXPECT_EQ(span_edge.back_read, full_edge.back_read);
            }
        }
    }
}

TEST_F(KernelSweep, StreakKernelsMatchScalarAtEveryTier) {
    Lcg rng{1234};
    for (const std::size_t n : kFuzzLengths) {
        // Streak-friendly columns: long same-type same-thread runs with
        // regular positions so the vector bodies actually execute, plus
        // fuzzed interruptions.
        FuzzColumns c = make_columns(n, rng);
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.next(100) < 85) {  // mostly streaky
                c.types[i] = static_cast<std::uint8_t>(
                    rng.next(2) ? AccessType::Read : AccessType::Insert);
                c.threads[i] = 1;
                c.positions[i] = static_cast<std::int64_t>(i);
                c.sizes[i] = static_cast<std::uint32_t>(i + 1);
            }
        }

        struct Probe {
            std::uint8_t type;
            std::uint16_t tid;
            std::int64_t prev_pos;
            std::int64_t dir;
        };
        const Probe probes[] = {
            {static_cast<std::uint8_t>(AccessType::Read), 1, -1, 1},
            {static_cast<std::uint8_t>(AccessType::Read), 1,
             static_cast<std::int64_t>(n), -1},
            {static_cast<std::uint8_t>(AccessType::Write), 0, 5, 1},
            {static_cast<std::uint8_t>(AccessType::Read), 9, 0, 1},
        };
        const kernels::EndAnchor anchors[] = {
            kernels::EndAnchor::InsertBack, kernels::EndAnchor::DeleteBack,
            kernels::EndAnchor::Front};

        kernels::force_simd_level(SimdLevel::Scalar);
        std::vector<std::size_t> ref;
        for (const Probe& p : probes)
            ref.push_back(kernels::monotone_streak(
                c.types.data(), c.positions.data(), c.threads.data(), n,
                p.type, p.tid, p.prev_pos, p.dir));
        for (const kernels::EndAnchor a : anchors)
            ref.push_back(kernels::end_anchor_streak(
                c.types.data(), c.positions.data(), c.sizes.data(),
                c.threads.data(), n,
                static_cast<std::uint8_t>(a == kernels::EndAnchor::DeleteBack
                                              ? AccessType::Delete
                                              : AccessType::Insert),
                1, a));
        ref.push_back(kernels::flushable_streak(
            c.types.data(), c.positions.data(), c.threads.data(), n, 1));

        for (const SimdLevel level : sweep_levels()) {
            kernels::force_simd_level(level);
            SCOPED_TRACE(testing::Message()
                         << "n=" << n << " level="
                         << kernels::simd_level_name(level));
            std::size_t k = 0;
            for (const Probe& p : probes)
                EXPECT_EQ(kernels::monotone_streak(
                              c.types.data(), c.positions.data(),
                              c.threads.data(), n, p.type, p.tid, p.prev_pos,
                              p.dir),
                          ref[k++]);
            for (const kernels::EndAnchor a : anchors)
                EXPECT_EQ(
                    kernels::end_anchor_streak(
                        c.types.data(), c.positions.data(), c.sizes.data(),
                        c.threads.data(), n,
                        static_cast<std::uint8_t>(
                            a == kernels::EndAnchor::DeleteBack
                                ? AccessType::Delete
                                : AccessType::Insert),
                        1, a),
                    ref[k++]);
            EXPECT_EQ(kernels::flushable_streak(c.types.data(),
                                                c.positions.data(),
                                                c.threads.data(), n, 1),
                      ref[k++]);
        }
    }
}

TEST_F(KernelSweep, ForcedLevelClampsToCpuAndNames) {
    kernels::force_simd_level(SimdLevel::Avx2);
    // Whatever the CPU supports, the active level never exceeds the
    // forced request and never exceeds the hardware.
    EXPECT_LE(static_cast<int>(kernels::active_simd_level()),
              static_cast<int>(SimdLevel::Avx2));
    kernels::force_simd_level(SimdLevel::Scalar);
    EXPECT_EQ(kernels::active_simd_level(), SimdLevel::Scalar);
    EXPECT_EQ(kernels::simd_level_name(SimdLevel::Scalar), "scalar");
    EXPECT_EQ(kernels::simd_level_name(SimdLevel::Sse42), "sse4.2");
    EXPECT_EQ(kernels::simd_level_name(SimdLevel::Avx2), "avx2");
}

// --------------------------------------------------- verdict differential

/// Everything that constitutes a verdict, flattened to text: profile
/// aggregates, every pattern field, every use-case field.  Two analyses
/// are "bit-identical" iff their digests compare equal.
std::string digest(const AnalysisResult& result) {
    std::ostringstream os;
    os << result.total_instances() << '|' << result.list_array_instances()
       << '|' << result.flagged_instances() << '|' << result.total_events()
       << '\n';
    for (const InstanceAnalysis& ia : result.instances()) {
        const RuntimeProfile& p = ia.profile;
        os << p.info().id << ':' << p.total_events() << ':' << p.max_size()
           << ':' << p.duration_ns() << ':' << p.thread_count();
        for (std::size_t t = 0; t < kAccessTypeCount; ++t)
            os << ',' << p.count(static_cast<AccessType>(t));
        for (const Phase& ph : p.phases())
            os << ';' << static_cast<int>(ph.type) << '.' << ph.first << '.'
               << ph.last;
        os << '\n';
        for (const Pattern& pat : ia.patterns)
            os << "  P" << static_cast<int>(pat.kind) << ' ' << pat.first
               << ' ' << pat.last << ' ' << pat.length << ' '
               << pat.start_pos << ' ' << pat.end_pos << ' ' << pat.coverage
               << ' ' << pat.thread << ' ' << pat.synthetic << '\n';
        for (const UseCase& uc : ia.use_cases)
            os << "  U" << static_cast<int>(uc.kind) << ' '
               << uc.parallel_potential() << ' ' << uc.confidence() << ' '
               << uc.reason() << " -> " << uc.recommendation() << '\n';
    }
    return std::move(os).str();
}

/// Run `analyze` (columnar) against `analyze_reference` (AoS) over the
/// same session, sweeping dispatch tiers and worker-thread counts.
void expect_columnar_matches_reference(const runtime::ProfilingSession& s,
                                       const std::string& label) {
    const std::vector<runtime::InstanceInfo> instances =
        s.registry().snapshot();
    const Dsspy analyzer;
    kernels::reset_forced_simd_level();
    const std::string ref =
        digest(analyzer.analyze_reference(instances, s.store()));

    for (const SimdLevel level : sweep_levels()) {
        kernels::force_simd_level(level);
        for (const unsigned threads : {1u, 2u, 4u}) {
            SCOPED_TRACE(testing::Message()
                         << label << " level="
                         << kernels::simd_level_name(level)
                         << " threads=" << threads);
            par::ThreadPool pool(threads);
            EXPECT_EQ(digest(analyzer.analyze(instances, s.store(), &pool)),
                      ref);
        }
    }
    kernels::reset_forced_simd_level();
}

class VerdictDifferential : public ::testing::Test {
protected:
    void TearDown() override { kernels::reset_forced_simd_level(); }
};

TEST_F(VerdictDifferential, SevenEvaluationApps) {
    for (const apps::AppInfo& app : apps::evaluation_apps()) {
        runtime::ProfilingSession session;
        (void)app.run_sequential(&session);
        session.stop();
        expect_columnar_matches_reference(session, app.name);
    }
}

TEST_F(VerdictDifferential, EmpiricalStudyCorpus) {
    for (const corpus::ProgramModel& program : corpus::all_programs()) {
        runtime::ProfilingSession session;
        if (program.in_eval23)
            corpus::run_eval_workload(program, &session);
        else
            corpus::run_study15_workload(program, &session);
        session.stop();
        expect_columnar_matches_reference(session, program.name);
    }
}

TEST_F(VerdictDifferential, ZeroCopyColumnReaderMatchesAoSAnalysis) {
    // write binary -> mmap-decode to columns -> analyze(columns) must give
    // the same verdicts as the AoS trace load it replaces.
    runtime::ProfilingSession session;
    const apps::AppInfo* app = apps::find_app("WordWheelSolver");
    ASSERT_NE(app, nullptr);
    (void)app->run_sequential(&session);
    session.stop();

    std::ostringstream out;
    runtime::write_trace_binary(out, session.registry().snapshot(),
                                session.store());
    const std::string bytes = std::move(out).str();

    const runtime::Trace aos = runtime::read_trace_binary(bytes);
    const runtime::ColumnTrace cols = runtime::read_trace_columns(bytes);

    const Dsspy analyzer;
    const std::string ref =
        digest(analyzer.analyze_reference(aos.instances, aos.store));
    EXPECT_EQ(digest(analyzer.analyze(cols.instances, cols.columns)), ref);
    par::ThreadPool pool(4);
    EXPECT_EQ(digest(analyzer.analyze(cols.instances, cols.columns, &pool)),
              ref);
}

TEST_F(VerdictDifferential, SkewedEventDistributionShardsCorrectly) {
    // One whale instance plus many minnows: instance-count partitioning
    // would put the whale and a third of the minnows on one worker; the
    // event-balanced shards must still produce identical verdicts.
    runtime::ProfilingSession session;
    {
        ds::ProfiledList<int> whale(&session, {"Skew.Whale", "run", 1});
        for (int i = 0; i < 50000; ++i) whale.add(i);
        for (std::size_t i = 0; i < whale.count(); ++i) (void)whale.get(i);
        for (int m = 0; m < 60; ++m) {
            ds::ProfiledList<int> minnow(
                &session, {"Skew.Minnow" + std::to_string(m), "run", 2});
            for (int i = 0; i < 5; ++i) minnow.add(i);
        }
    }
    session.stop();
    expect_columnar_matches_reference(session, "skewed");
}

}  // namespace
}  // namespace dsspy::core
