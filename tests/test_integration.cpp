// End-to-end integration tests: instrumented containers -> session ->
// analysis -> report, across capture modes and threads.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "ds/ds.hpp"
#include "parallel/algorithms.hpp"
#include "support/rng.hpp"

namespace dsspy {
namespace {

using core::AnalysisResult;
using core::Dsspy;
using core::PatternKind;
using core::UseCaseKind;
using runtime::CaptureMode;
using runtime::ProfilingSession;

class PipelineModeTest : public ::testing::TestWithParam<CaptureMode> {};

TEST_P(PipelineModeTest, Figure3WorkloadEndToEnd) {
    // The paper's Figure 3 profile: repeated append phases, each followed
    // by a full forward read, then a clear -> Long-Insert +
    // Frequent-Long-Read on the same list.
    ProfilingSession session(GetParam());
    {
        ds::ProfiledList<int> list(&session, {"Paper", "Figure3", 1});
        for (int round = 0; round < 15; ++round) {
            for (int i = 0; i < 200; ++i) list.add(i);
            for (std::size_t i = 0; i < list.count(); ++i)
                (void)list.get(i);
            for (std::size_t i = 0; i < list.count(); ++i)
                (void)list.get(i);
            list.clear();
        }
    }
    session.stop();

    const AnalysisResult analysis = Dsspy{}.analyze(session);
    ASSERT_EQ(analysis.instances().size(), 1u);
    const auto& ia = analysis.instances()[0];

    // Pattern level: Insert-Back and Read-Forward both present.
    bool insert_back = false;
    bool read_forward = false;
    for (const auto& p : ia.patterns) {
        insert_back |= p.kind == PatternKind::InsertBack;
        read_forward |= p.kind == PatternKind::ReadForward;
    }
    EXPECT_TRUE(insert_back);
    EXPECT_TRUE(read_forward);

    // Use-case level.
    bool li = false;
    bool flr = false;
    for (const auto& uc : ia.use_cases) {
        li |= uc.kind == UseCaseKind::LongInsert;
        flr |= uc.kind == UseCaseKind::FrequentLongRead;
    }
    EXPECT_TRUE(li);
    EXPECT_TRUE(flr);
}

INSTANTIATE_TEST_SUITE_P(BothModes, PipelineModeTest,
                         ::testing::Values(CaptureMode::Buffered,
                                           CaptureMode::Streaming),
                         [](const auto& info) {
                             return info.param == CaptureMode::Buffered
                                        ? "Buffered"
                                        : "Streaming";
                         });

TEST(Pipeline, BufferedAndStreamingProduceIdenticalAnalyses) {
    auto run = [](CaptureMode mode) {
        ProfilingSession session(mode);
        {
            ds::ProfiledList<int> list(&session, {"X", "M", 1});
            for (int i = 0; i < 500; ++i) list.add(i);
            for (int sweep = 0; sweep < 12; ++sweep)
                for (std::size_t i = 0; i < list.count(); ++i)
                    (void)list.get(i);
        }
        session.stop();
        return Dsspy{}.analyze(session).use_case_counts();
    };
    EXPECT_EQ(run(CaptureMode::Buffered), run(CaptureMode::Streaming));
}

TEST(Pipeline, MultithreadedAccessIsAnalyzedPerThread) {
    // Two threads each sweep the same list forward; the per-thread pattern
    // detector must see two clean Read-Forward streams instead of noise.
    ProfilingSession session;
    runtime::InstanceId id;
    {
        ds::ProfiledList<int> list(&session, {"MT", "M", 1});
        for (int i = 0; i < 1000; ++i) list.add(i);
        id = list.instance_id();
        std::thread t1([&list] {
            for (std::size_t i = 0; i < list.count(); ++i) (void)list.get(i);
        });
        std::thread t2([&list] {
            for (std::size_t i = 0; i < list.count(); ++i) (void)list.get(i);
        });
        t1.join();
        t2.join();
    }
    session.stop();

    const AnalysisResult analysis = Dsspy{}.analyze(session);
    const auto& ia = analysis.instances()[0];
    ASSERT_EQ(ia.profile.info().id, id);
    std::size_t full_read_sweeps = 0;
    for (const auto& p : ia.patterns)
        if (p.kind == PatternKind::ReadForward && p.length == 1000)
            ++full_read_sweeps;
    EXPECT_EQ(full_read_sweeps, 2u);
    EXPECT_EQ(ia.profile.thread_count(), 3u);  // main + 2 workers
}

TEST(Pipeline, SearchSpaceReductionCountsOnlyListsAndArrays) {
    ProfilingSession session;
    {
        // One flagged list, one unflagged list, one dictionary (excluded
        // from the denominator), one unflagged array.
        ds::ProfiledList<int> hot(&session, {"P", "Hot", 1});
        for (int i = 0; i < 200; ++i) hot.add(i);

        ds::ProfiledList<int> cold(&session, {"P", "Cold", 2});
        cold.add(1);
        (void)cold.get(0);

        ds::ProfiledDictionary<int, int> dict(&session, {"P", "Dict", 3});
        dict.set(1, 1);

        ds::ProfiledArray<int> arr(&session, {"P", "Arr", 4}, 8);
        arr.set(3, 1);
    }
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    EXPECT_EQ(analysis.total_instances(), 4u);
    EXPECT_EQ(analysis.list_array_instances(), 3u);
    EXPECT_EQ(analysis.flagged_instances(), 1u);
    EXPECT_NEAR(analysis.search_space_reduction(), 2.0 / 3.0, 1e-9);
}

TEST(Pipeline, ReportContainsTableVFields) {
    ProfilingSession session;
    {
        ds::ProfiledList<int> list(&session,
                                   {"GPdotNet.Engine.CHPopulation", ".ctor",
                                    14});
        for (int i = 0; i < 300; ++i) list.add(i);
    }
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);

    std::ostringstream os;
    core::print_use_case_report(os, analysis);
    const std::string report = os.str();
    EXPECT_NE(report.find("Use Case 1"), std::string::npos);
    EXPECT_NE(report.find("GPdotNet.Engine.CHPopulation"), std::string::npos);
    EXPECT_NE(report.find(".ctor"), std::string::npos);
    EXPECT_NE(report.find("14"), std::string::npos);
    EXPECT_NE(report.find("List<Int32>"), std::string::npos);
    EXPECT_NE(report.find("Long-Insert"), std::string::npos);
    EXPECT_NE(report.find("Parallelize the insert operation."),
              std::string::npos);

    std::ostringstream summary;
    core::print_instance_summary(summary, analysis);
    EXPECT_NE(summary.str().find("LI"), std::string::npos);
}

TEST(Pipeline, EmptySessionProducesEmptyReport) {
    ProfilingSession session;
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    EXPECT_EQ(analysis.total_instances(), 0u);
    EXPECT_DOUBLE_EQ(analysis.search_space_reduction(), 0.0);
    std::ostringstream os;
    core::print_use_case_report(os, analysis);
    EXPECT_NE(os.str().find("No use cases detected."), std::string::npos);
}

TEST(Pipeline, RecommendationIsActionable) {
    // Follow the recommendation end-to-end: detect a Frequent-Long-Read on
    // a priority-queue-on-a-list, then apply the recommended parallel
    // search and verify it computes the same result.
    ProfilingSession session;
    ds::List<double> plain;
    runtime::InstanceId id;
    {
        ds::ProfiledList<double> queue(&session, {"PQ", "ExtractMax", 1});
        support::Rng rng(5);
        for (int i = 0; i < 2000; ++i) {
            const double v = rng.next_double();
            queue.add(v);
            plain.add(v);
        }
        for (int sweep = 0; sweep < 12; ++sweep) {
            std::size_t best = 0;
            double best_value = queue.get(0);
            for (std::size_t i = 1; i < queue.count(); ++i) {
                const double value = queue.get(i);
                if (best_value < value) {
                    best_value = value;
                    best = i;
                }
            }
            (void)best;
        }
        id = queue.instance_id();
    }
    session.stop();

    const AnalysisResult analysis = Dsspy{}.analyze(session);
    bool flr = false;
    for (const auto& ia : analysis.instances())
        if (ia.profile.info().id == id)
            for (const auto& uc : ia.use_cases)
                flr |= uc.kind == UseCaseKind::FrequentLongRead;
    ASSERT_TRUE(flr);

    // Apply the recommendation.
    std::size_t seq_best = 0;
    for (std::size_t i = 1; i < plain.count(); ++i)
        if (plain[seq_best] < plain[i]) seq_best = i;
    par::ThreadPool pool(4);
    const auto par_best = par::parallel_max_index(
        pool, std::span<const double>(plain.data(), plain.count()));
    EXPECT_EQ(static_cast<std::size_t>(par_best), seq_best);
}

}  // namespace
}  // namespace dsspy
