// Unit tests for dsspy::runtime: SPSC ring, registry, store, session.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/instance_registry.hpp"
#include "runtime/profile_store.hpp"
#include "runtime/session.hpp"
#include "runtime/spsc_ring.hpp"

namespace dsspy::runtime {
namespace {

TEST(SpscRing, PushPopSingleThread) {
    SpscRing<int> ring(8);
    EXPECT_TRUE(ring.empty_approx());
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
    EXPECT_FALSE(ring.try_push(99));  // full
    for (int i = 0; i < 8; ++i) {
        const auto v = ring.try_pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
    SpscRing<int> ring(100);
    EXPECT_EQ(ring.capacity(), 128u);
}

TEST(SpscRing, BatchedPopPreservesOrder) {
    SpscRing<int> ring(64);
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(ring.try_push(i));
    std::vector<int> out(32);
    const std::size_t n1 = ring.pop_into(out);
    EXPECT_EQ(n1, 32u);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
    const std::size_t n2 = ring.pop_into(out);
    EXPECT_EQ(n2, 18u);
    EXPECT_EQ(out[0], 32);
}

TEST(SpscRing, ConcurrentProducerConsumer) {
    SpscRing<std::uint64_t> ring(1024);
    constexpr std::uint64_t kCount = 200'000;
    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            while (!ring.try_push(i)) std::this_thread::yield();
        }
    });
    std::uint64_t expected = 0;
    std::uint64_t sum = 0;
    while (expected < kCount) {
        const auto v = ring.try_pop();
        if (!v) {
            std::this_thread::yield();
            continue;
        }
        EXPECT_EQ(*v, expected);  // FIFO order, no loss, no duplication
        sum += *v;
        ++expected;
    }
    producer.join();
    EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(InstanceRegistry, RegisterAndLookup) {
    InstanceRegistry registry;
    const InstanceId a = registry.register_instance(
        DsKind::List, "List<Int32>", {"Cls", "M", 1});
    const InstanceId b = registry.register_instance(
        DsKind::Array, "Array<Double>", {"Cls", "N", 2});
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.info(a).type_name, "List<Int32>");
    EXPECT_EQ(registry.info(b).kind, DsKind::Array);
    EXPECT_FALSE(registry.info(a).deallocated);
    registry.mark_deallocated(a);
    EXPECT_TRUE(registry.info(a).deallocated);
}

TEST(ProfileStore, GroupsByInstanceAndSortsBySeq) {
    ProfileStore store;
    AccessEvent e1{.seq = 2, .time_ns = 20, .position = 1, .instance = 0,
                   .size = 2, .op = OpKind::Get, .thread = 0};
    AccessEvent e2{.seq = 1, .time_ns = 10, .position = 0, .instance = 0,
                   .size = 1, .op = OpKind::Add, .thread = 0};
    AccessEvent e3{.seq = 3, .time_ns = 30, .position = 0, .instance = 2,
                   .size = 1, .op = OpKind::Add, .thread = 1};
    const AccessEvent batch[] = {e1, e2, e3};
    store.append(batch);
    store.finalize();
    EXPECT_EQ(store.total_events(), 3u);
    EXPECT_EQ(store.populated_instances(), 2u);
    const auto ev0 = store.events(0);
    ASSERT_EQ(ev0.size(), 2u);
    EXPECT_EQ(ev0[0].seq, 1u);  // sorted by seq
    EXPECT_EQ(ev0[1].seq, 2u);
    EXPECT_EQ(store.events(1).size(), 0u);
    EXPECT_EQ(store.events(2).size(), 1u);
    EXPECT_EQ(store.events(77).size(), 0u);  // out of range -> empty
}

TEST(ProfileStore, IgnoresInvalidInstance) {
    ProfileStore store;
    AccessEvent ev;
    ev.instance = kInvalidInstance;
    store.append({&ev, 1});
    EXPECT_EQ(store.total_events(), 0u);
}

class SessionModeTest : public ::testing::TestWithParam<CaptureMode> {};

TEST_P(SessionModeTest, RecordsEventsWithMetadata) {
    ProfilingSession session(GetParam());
    const InstanceId id = session.register_instance(
        DsKind::List, "List<Int32>", {"Cls", "M", 1});
    for (int i = 0; i < 100; ++i)
        session.record(id, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    session.stop();

    const auto events = session.store().events(id);
    ASSERT_EQ(events.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(events[static_cast<size_t>(i)].position, i);
        EXPECT_EQ(events[static_cast<size_t>(i)].op, OpKind::Add);
        EXPECT_EQ(events[static_cast<size_t>(i)].size,
                  static_cast<std::uint32_t>(i + 1));
    }
    // Sequence numbers are strictly increasing.
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].seq, events[i].seq);
    EXPECT_EQ(session.thread_count(), 1u);
    EXPECT_EQ(session.events_recorded(), 100u);
}

TEST_P(SessionModeTest, MultiThreadedRecordingLosesNothing) {
    ProfilingSession session(GetParam());
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25'000;
    std::vector<InstanceId> ids;
    for (int t = 0; t < kThreads; ++t)
        ids.push_back(session.register_instance(
            DsKind::List, "List<Int64>",
            {"Cls", "M", static_cast<std::uint32_t>(t)}));

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&session, &ids, t] {
            for (int i = 0; i < kPerThread; ++i)
                session.record(ids[static_cast<size_t>(t)], OpKind::Get, i,
                               100);
        });
    }
    for (auto& th : threads) th.join();
    session.stop();

    std::size_t total = 0;
    for (const InstanceId id : ids) {
        const auto events = session.store().events(id);
        EXPECT_EQ(events.size(), static_cast<std::size_t>(kPerThread));
        total += events.size();
        // Per-instance events come from one thread: positions in order.
        for (size_t i = 1; i < events.size(); ++i)
            EXPECT_EQ(events[i].position, events[i - 1].position + 1);
    }
    EXPECT_EQ(total, static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(session.thread_count(), static_cast<std::size_t>(kThreads));
}

TEST_P(SessionModeTest, StopIsIdempotentAndStopsCapture) {
    ProfilingSession session(GetParam());
    const InstanceId id = session.register_instance(
        DsKind::List, "List<Int32>", {"Cls", "M", 1});
    session.record(id, OpKind::Add, 0, 1);
    EXPECT_TRUE(session.capturing());
    session.stop();
    EXPECT_FALSE(session.capturing());
    session.record(id, OpKind::Add, 1, 2);  // ignored after stop
    session.stop();                         // idempotent
    EXPECT_EQ(session.store().events(id).size(), 1u);
    EXPECT_GT(session.capture_duration_ns(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, SessionModeTest,
                         ::testing::Values(CaptureMode::Buffered,
                                           CaptureMode::Streaming),
                         [](const auto& info) {
                             return info.param == CaptureMode::Buffered
                                        ? "Buffered"
                                        : "Streaming";
                         });

TEST(Session, StreamingBackpressureLosesNothingWithTinyRings) {
    // A deliberately undersized ring forces the producers to block on the
    // collector; every event must still arrive exactly once.
    ProfilingSession session(CaptureMode::Streaming, /*ring_capacity=*/4);
    constexpr int kThreads = 3;
    constexpr int kPerThread = 20'000;
    std::vector<InstanceId> ids;
    for (int t = 0; t < kThreads; ++t)
        ids.push_back(session.register_instance(
            DsKind::List, "List<Int64>",
            {"BP", "M", static_cast<std::uint32_t>(t)}));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&session, &ids, t] {
            for (int i = 0; i < kPerThread; ++i)
                session.record(ids[static_cast<size_t>(t)], OpKind::Add, i,
                               static_cast<std::uint32_t>(i + 1));
        });
    }
    for (auto& th : threads) th.join();
    session.stop();
    for (const InstanceId id : ids) {
        const auto events = session.store().events(id);
        ASSERT_EQ(events.size(), static_cast<std::size_t>(kPerThread));
        for (size_t i = 0; i < events.size(); ++i)
            EXPECT_EQ(events[i].position, static_cast<std::int64_t>(i));
    }
}

TEST(Session, TwoLiveSessionsDoNotInterfere) {
    ProfilingSession s1(CaptureMode::Buffered);
    ProfilingSession s2(CaptureMode::Buffered);
    const InstanceId a = s1.register_instance(DsKind::List, "List<Int32>",
                                              {"C", "M", 1});
    const InstanceId b = s2.register_instance(DsKind::List, "List<Int32>",
                                              {"C", "M", 2});
    for (int i = 0; i < 10; ++i) {
        s1.record(a, OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
        s2.record(b, OpKind::Get, i, 10);
    }
    s1.stop();
    s2.stop();
    EXPECT_EQ(s1.store().events(a).size(), 10u);
    EXPECT_EQ(s2.store().events(b).size(), 10u);
    EXPECT_EQ(s1.store().events(a)[0].op, OpKind::Add);
    EXPECT_EQ(s2.store().events(b)[0].op, OpKind::Get);
}

}  // namespace
}  // namespace dsspy::runtime
