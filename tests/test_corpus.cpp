// Tests for the program models (published statistics) and the workload
// drivers (each must produce exactly its advertised classification).
#include <gtest/gtest.h>

#include "core/dsspy.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"

namespace dsspy::corpus {
namespace {

using core::AnalysisResult;
using core::Dsspy;
using core::UseCaseKind;
using runtime::DsKind;
using runtime::ProfilingSession;

// ------------------------- program models ---------------------------------

TEST(ProgramModel, Figure1HasExactly37Programs) {
    EXPECT_EQ(figure1_programs().size(), 37u);
}

TEST(ProgramModel, TotalInstancesMatchPaper) {
    std::size_t total = 0;
    for (const ProgramModel* m : figure1_programs())
        total += m->total_instances;
    EXPECT_EQ(total, 1960u);  // Table I total
}

TEST(ProgramModel, Table1RowsMatchPaper) {
    const auto rows = table1_rows();
    ASSERT_EQ(rows.size(), 11u);
    std::size_t programs = 0;
    std::size_t instances = 0;
    std::size_t loc = 0;
    for (const DomainRow& row : rows) {
        programs += row.programs;
        instances += row.instances;
        loc += row.loc;
    }
    EXPECT_EQ(programs, 37u);
    EXPECT_EQ(instances, 1960u);
    EXPECT_EQ(loc, 936'356u);  // Table I LOC total

    // Spot-check the published per-domain numbers.
    EXPECT_EQ(rows[0].domain, Domain::Search);
    EXPECT_EQ(rows[0].instances, 11u);
    EXPECT_EQ(rows[0].loc, 1046u);
    EXPECT_EQ(rows[10].domain, Domain::DsLib);
    EXPECT_EQ(rows[10].instances, 718u);
    EXPECT_EQ(rows[10].loc, 529'164u);
}

TEST(ProgramModel, PerTypeTotalsMatchFigure1Series) {
    const auto& series = figure1_type_totals();
    std::array<std::size_t, runtime::kDsKindCount> sums{};
    for (const ProgramModel* m : figure1_programs())
        for (std::size_t k = 0; k < runtime::kDsKindCount; ++k)
            sums[k] += m->instances[k];
    for (std::size_t k = 0; k < runtime::kDsKindCount; ++k)
        EXPECT_EQ(sums[k], series[k]) << runtime::ds_kind_name(
            static_cast<DsKind>(k));
    EXPECT_EQ(series[static_cast<size_t>(DsKind::List)], 1275u);
    EXPECT_EQ(series[static_cast<size_t>(DsKind::Dictionary)], 324u);
    EXPECT_EQ(series[static_cast<size_t>(DsKind::ArrayList)], 192u);
    EXPECT_EQ(series[static_cast<size_t>(DsKind::Stack)], 49u);
    EXPECT_EQ(series[static_cast<size_t>(DsKind::Queue)], 41u);
}

TEST(ProgramModel, PerProgramTypeCountsSumToSigma) {
    for (const ProgramModel* m : figure1_programs()) {
        std::size_t sum = 0;
        for (std::size_t k = 0; k < runtime::kDsKindCount; ++k)
            sum += m->instances[k];
        EXPECT_EQ(sum, m->total_instances) << m->name;
    }
}

TEST(ProgramModel, ArraysApportionedToStudyTotal) {
    std::size_t arrays = 0;
    for (const ProgramModel* m : figure1_programs()) arrays += m->arrays;
    EXPECT_EQ(arrays, kStudyArrayTotal);
}

TEST(ProgramModel, Study15MatchesTable2Totals) {
    const auto programs = study15_programs();
    ASSERT_EQ(programs.size(), 15u);
    std::size_t loc = 0;
    std::size_t regularities = 0;
    std::size_t parallel = 0;
    for (const ProgramModel* m : programs) {
        loc += m->loc;
        regularities += m->recurring_regularities;
        parallel += m->parallel_use_cases;
    }
    // Note: the paper prints a 72,613 LOC total for Table II, but its own
    // per-row LOC values sum to 116,581; we keep the per-row values (which
    // are also cross-referenced by Tables I and IV) and assert their sum.
    EXPECT_EQ(loc, 116'581u);
    EXPECT_EQ(regularities, 81u);
    EXPECT_EQ(parallel, 41u);
}

TEST(ProgramModel, EvalProgramsMatchTable3Totals) {
    const auto programs = eval_programs();
    ASSERT_EQ(programs.size(), 24u);  // Table III rows
    std::array<std::size_t, static_cast<size_t>(EvalUseCase::Count)>
        totals{};
    std::size_t grand_total = 0;
    for (const ProgramModel* m : programs) {
        for (std::size_t c = 0; c < totals.size(); ++c)
            totals[c] += m->eval_use_cases[c];
        grand_total += m->eval_use_case_total();
    }
    EXPECT_EQ(totals[static_cast<size_t>(EvalUseCase::LI)], 49u);
    EXPECT_EQ(totals[static_cast<size_t>(EvalUseCase::IQ)], 3u);
    EXPECT_EQ(totals[static_cast<size_t>(EvalUseCase::SAI)], 1u);
    EXPECT_EQ(totals[static_cast<size_t>(EvalUseCase::FS)], 3u);
    EXPECT_EQ(totals[static_cast<size_t>(EvalUseCase::FLR)], 10u);
    EXPECT_EQ(grand_total, 66u);
}

TEST(ProgramModel, DomainNamesAreComplete) {
    for (std::size_t d = 0; d < static_cast<size_t>(Domain::Count); ++d) {
        EXPECT_NE(domain_name(static_cast<Domain>(d)), "?");
        EXPECT_NE(domain_short_name(static_cast<Domain>(d)), "?");
    }
}

// ------------------------- workload drivers -------------------------------

struct DriverResult {
    std::vector<core::UseCaseKind> use_cases;
    std::size_t patterns = 0;
};

/// Run one driver in a fresh session and classify its (single) instance.
template <typename Driver>
DriverResult run_driver(Driver driver) {
    ProfilingSession session;
    support::Rng rng(1);
    driver(&session, support::SourceLoc{"T", "M", 1}, rng);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    DriverResult out;
    for (const auto& ia : analysis.instances()) {
        out.patterns += ia.patterns.size();
        for (const auto& uc : ia.use_cases) out.use_cases.push_back(uc.kind);
    }
    return out;
}

TEST(Drivers, LongInsertYieldsExactlyOneLi) {
    const auto r = run_driver(drive_long_insert);
    ASSERT_EQ(r.use_cases.size(), 1u);
    EXPECT_EQ(r.use_cases[0], UseCaseKind::LongInsert);
    EXPECT_GT(r.patterns, 0u);
}

TEST(Drivers, LongInsertArrayYieldsExactlyOneLi) {
    const auto r = run_driver(drive_long_insert_array);
    ASSERT_EQ(r.use_cases.size(), 1u);
    EXPECT_EQ(r.use_cases[0], UseCaseKind::LongInsert);
}

TEST(Drivers, ImplementQueueYieldsExactlyOneIq) {
    const auto r = run_driver(drive_implement_queue);
    ASSERT_EQ(r.use_cases.size(), 1u);
    EXPECT_EQ(r.use_cases[0], UseCaseKind::ImplementQueue);
}

TEST(Drivers, SortAfterInsertYieldsExactlyOneSai) {
    const auto r = run_driver(drive_sort_after_insert);
    ASSERT_EQ(r.use_cases.size(), 1u);
    EXPECT_EQ(r.use_cases[0], UseCaseKind::SortAfterInsert);
}

TEST(Drivers, FrequentSearchYieldsExactlyOneFs) {
    const auto r = run_driver(drive_frequent_search);
    ASSERT_EQ(r.use_cases.size(), 1u);
    EXPECT_EQ(r.use_cases[0], UseCaseKind::FrequentSearch);
}

TEST(Drivers, FrequentLongReadYieldsExactlyOneFlr) {
    const auto r = run_driver(drive_frequent_long_read);
    ASSERT_EQ(r.use_cases.size(), 1u);
    EXPECT_EQ(r.use_cases[0], UseCaseKind::FrequentLongRead);
}

TEST(Drivers, LiFlrComboYieldsExactlyBoth) {
    const auto r = run_driver(drive_li_flr_combo);
    ASSERT_EQ(r.use_cases.size(), 2u);
    EXPECT_TRUE((r.use_cases[0] == UseCaseKind::LongInsert &&
                 r.use_cases[1] == UseCaseKind::FrequentLongRead) ||
                (r.use_cases[1] == UseCaseKind::LongInsert &&
                 r.use_cases[0] == UseCaseKind::FrequentLongRead));
}

TEST(Drivers, StackImplYieldsOnlySequentialUseCase) {
    const auto r = run_driver(drive_stack_impl);
    ASSERT_EQ(r.use_cases.size(), 1u);
    EXPECT_EQ(r.use_cases[0], UseCaseKind::StackImplementation);
}

TEST(Drivers, WriteWithoutReadYieldsOnlyWwr) {
    const auto r = run_driver(drive_write_without_read);
    ASSERT_EQ(r.use_cases.size(), 1u);
    EXPECT_EQ(r.use_cases[0], UseCaseKind::WriteWithoutRead);
}

TEST(Drivers, RegularityOnlyHasPatternsButNoUseCase) {
    const auto r = run_driver(drive_regularity_only);
    EXPECT_TRUE(r.use_cases.empty());
    EXPECT_GT(r.patterns, 0u);
}

TEST(Drivers, NoiseListHasNoPatternsAtAll) {
    const auto r = run_driver(drive_noise_list);
    EXPECT_TRUE(r.use_cases.empty());
    EXPECT_EQ(r.patterns, 0u);
}

TEST(Drivers, NoiseDictionaryHasNoPatterns) {
    const auto r = run_driver(drive_noise_dictionary);
    EXPECT_TRUE(r.use_cases.empty());
    EXPECT_EQ(r.patterns, 0u);
}

TEST(Drivers, DeterministicForFixedSeed) {
    auto run = [] {
        ProfilingSession session;
        support::Rng rng(9);
        drive_long_insert(&session, {"T", "M", 1}, rng);
        session.stop();
        return session.store().total_events();
    };
    EXPECT_EQ(run(), run());
}

// ------------------------- program plans ----------------------------------

TEST(Study15Workload, ReproducesRegularityAndUseCaseCounts) {
    for (const ProgramModel* program : study15_programs()) {
        ProfilingSession session;
        run_study15_workload(*program, &session, 7);
        session.stop();
        const AnalysisResult analysis = Dsspy{}.analyze(session);

        std::size_t regularities = 0;
        std::size_t parallel_ucs = 0;
        for (const auto& ia : analysis.instances()) {
            if (!ia.patterns.empty()) ++regularities;
            for (const auto& uc : ia.use_cases)
                if (uc.parallel_potential()) ++parallel_ucs;
        }
        EXPECT_EQ(regularities, program->recurring_regularities)
            << program->name;
        EXPECT_EQ(parallel_ucs, program->parallel_use_cases)
            << program->name;
    }
}

TEST(EvalWorkload, ReproducesUseCaseCategoryCounts) {
    // Spot-check three representative programs (the full sweep is the
    // Table III bench).
    for (const char* name : {"gpdotnet", "QIT", "wordSorter"}) {
        const ProgramModel* program = nullptr;
        for (const ProgramModel* m : eval_programs())
            if (m->name == name) program = m;
        ASSERT_NE(program, nullptr);

        ProfilingSession session;
        run_eval_workload(*program, &session, 3);
        session.stop();
        const AnalysisResult analysis = Dsspy{}.analyze(session);
        const auto counts = analysis.use_case_counts();

        EXPECT_EQ(counts[static_cast<size_t>(UseCaseKind::LongInsert)],
                  program->eval_use_cases[static_cast<size_t>(
                      EvalUseCase::LI)])
            << name;
        EXPECT_EQ(counts[static_cast<size_t>(UseCaseKind::ImplementQueue)],
                  program->eval_use_cases[static_cast<size_t>(
                      EvalUseCase::IQ)])
            << name;
        EXPECT_EQ(
            counts[static_cast<size_t>(UseCaseKind::SortAfterInsert)],
            program->eval_use_cases[static_cast<size_t>(EvalUseCase::SAI)])
            << name;
        EXPECT_EQ(counts[static_cast<size_t>(UseCaseKind::FrequentSearch)],
                  program->eval_use_cases[static_cast<size_t>(
                      EvalUseCase::FS)])
            << name;
        EXPECT_EQ(
            counts[static_cast<size_t>(UseCaseKind::FrequentLongRead)],
            program->eval_use_cases[static_cast<size_t>(EvalUseCase::FLR)])
            << name;
    }
}

TEST(EvalWorkload, FullCorpusSweepMatchesTable3Exactly) {
    // Run all 24 evaluation programs (the Table III bench as a test).
    std::array<std::size_t, 5> totals{};
    for (const ProgramModel* program : eval_programs()) {
        ProfilingSession session;
        run_eval_workload(*program, &session, 42);
        session.stop();
        const auto counts = Dsspy{}.analyze(session).use_case_counts();
        totals[0] +=
            counts[static_cast<size_t>(UseCaseKind::LongInsert)];
        totals[1] +=
            counts[static_cast<size_t>(UseCaseKind::ImplementQueue)];
        totals[2] +=
            counts[static_cast<size_t>(UseCaseKind::SortAfterInsert)];
        totals[3] +=
            counts[static_cast<size_t>(UseCaseKind::FrequentSearch)];
        totals[4] +=
            counts[static_cast<size_t>(UseCaseKind::FrequentLongRead)];
    }
    EXPECT_EQ(totals[0], 49u);  // LI
    EXPECT_EQ(totals[1], 3u);   // IQ
    EXPECT_EQ(totals[2], 1u);   // SAI
    EXPECT_EQ(totals[3], 3u);   // FS
    EXPECT_EQ(totals[4], 10u);  // FLR
}

TEST(Workloads, NoiseKeepsSearchSpaceRealistic) {
    const ProgramModel* program = nullptr;
    for (const ProgramModel* m : eval_programs())
        if (m->name == "gpdotnet") program = m;
    ASSERT_NE(program, nullptr);
    ProfilingSession session;
    run_eval_workload(*program, &session, 3);
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    EXPECT_GT(analysis.search_space_reduction(), 0.3);
    EXPECT_GT(analysis.total_instances(),
              static_cast<std::size_t>(program->eval_use_case_total()));
}

}  // namespace
}  // namespace dsspy::corpus
