// Tests for the eight-access-pattern detector.
#include <gtest/gtest.h>

#include <vector>

#include "core/patterns.hpp"

namespace dsspy::core {
namespace {

using runtime::AccessEvent;
using runtime::DsKind;
using runtime::InstanceInfo;
using runtime::OpKind;

struct ProfileBuilder {
    std::vector<AccessEvent> events;
    std::uint64_t seq = 0;

    ProfileBuilder& ev(OpKind op, std::int64_t pos, std::uint32_t size,
                       runtime::ThreadId thread = 0) {
        AccessEvent e;
        e.seq = seq;
        e.time_ns = seq * 100;
        e.position = pos;
        e.instance = 0;
        e.size = size;
        e.op = op;
        e.thread = thread;
        events.push_back(e);
        ++seq;
        return *this;
    }

    /// n appends (pos == size-1 afterwards).
    ProfileBuilder& append_run(int n, std::uint32_t start_size = 0,
                               runtime::ThreadId thread = 0) {
        for (int i = 0; i < n; ++i)
            ev(OpKind::Add, start_size + static_cast<std::uint32_t>(i),
               start_size + static_cast<std::uint32_t>(i) + 1, thread);
        return *this;
    }

    /// Forward read sweep over [0, n) at container size `size`.
    ProfileBuilder& read_forward(int n, std::uint32_t size,
                                 runtime::ThreadId thread = 0) {
        for (int i = 0; i < n; ++i) ev(OpKind::Get, i, size, thread);
        return *this;
    }

    [[nodiscard]] RuntimeProfile build(DsKind kind = DsKind::List) const {
        InstanceInfo info;
        info.id = 0;
        info.kind = kind;
        info.type_name = "List<Int32>";
        info.location = {"C", "M", 1};
        return RuntimeProfile(info, events);
    }
};

std::vector<Pattern> detect(const RuntimeProfile& profile) {
    return PatternDetector{}.detect(profile);
}

TEST(PatternDetector, EmptyProfileHasNoPatterns) {
    ProfileBuilder b;
    const auto profile = b.build();
    EXPECT_TRUE(detect(profile).empty());
}

TEST(PatternDetector, ReadForward) {
    ProfileBuilder b;
    b.read_forward(10, 10);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].kind, PatternKind::ReadForward);
    EXPECT_EQ(patterns[0].length, 10u);
    EXPECT_EQ(patterns[0].start_pos, 0);
    EXPECT_EQ(patterns[0].end_pos, 9);
    EXPECT_DOUBLE_EQ(patterns[0].coverage, 1.0);
    EXPECT_FALSE(patterns[0].synthetic);
}

TEST(PatternDetector, ReadBackward) {
    ProfileBuilder b;
    for (int i = 9; i >= 0; --i) b.ev(OpKind::Get, i, 10);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].kind, PatternKind::ReadBackward);
    EXPECT_EQ(patterns[0].length, 10u);
}

TEST(PatternDetector, WriteForwardAndBackward) {
    ProfileBuilder b;
    for (int i = 0; i < 6; ++i) b.ev(OpKind::Set, i, 6);
    b.ev(OpKind::Clear, -1, 0);  // break
    for (int i = 5; i >= 0; --i) b.ev(OpKind::Set, i, 6);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 2u);
    EXPECT_EQ(patterns[0].kind, PatternKind::WriteForward);
    EXPECT_EQ(patterns[1].kind, PatternKind::WriteBackward);
}

TEST(PatternDetector, InsertBackViaAppends) {
    ProfileBuilder b;
    b.append_run(50);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].kind, PatternKind::InsertBack);
    EXPECT_EQ(patterns[0].length, 50u);
}

TEST(PatternDetector, InsertFrontRun) {
    ProfileBuilder b;
    for (int i = 0; i < 8; ++i)
        b.ev(OpKind::InsertAt, 0, static_cast<std::uint32_t>(i + 1));
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].kind, PatternKind::InsertFront);
}

TEST(PatternDetector, DeleteFrontRun) {
    ProfileBuilder b;
    // Deleting the front of a shrinking container: size after removal.
    for (int i = 0; i < 6; ++i)
        b.ev(OpKind::RemoveAt, 0, static_cast<std::uint32_t>(5 - i));
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].kind, PatternKind::DeleteFront);
}

TEST(PatternDetector, DeleteBackRun) {
    ProfileBuilder b;
    // Back removal: position == size-after.
    for (int i = 0; i < 6; ++i)
        b.ev(OpKind::RemoveAt, 5 - i, static_cast<std::uint32_t>(5 - i));
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].kind, PatternKind::DeleteBack);
}

TEST(PatternDetector, MinimumRunLengthIsConfigurable) {
    ProfileBuilder b;
    b.read_forward(2, 10);  // below default min of 3
    const auto profile = b.build();
    EXPECT_TRUE(detect(profile).empty());

    DetectorConfig config;
    config.min_pattern_events = 2;
    const auto patterns = PatternDetector(config).detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].length, 2u);
}

TEST(PatternDetector, DirectionChangeSplitsRuns) {
    ProfileBuilder b;
    // 0,1,2,3 then 2,1,0: one forward run, one backward run.
    for (int i = 0; i < 4; ++i) b.ev(OpKind::Get, i, 4);
    for (int i = 2; i >= 0; --i) b.ev(OpKind::Get, i, 4);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 2u);
    EXPECT_EQ(patterns[0].kind, PatternKind::ReadForward);
    EXPECT_EQ(patterns[0].length, 4u);
    EXPECT_EQ(patterns[1].kind, PatternKind::ReadBackward);
    EXPECT_EQ(patterns[1].length, 3u);
}

TEST(PatternDetector, RepeatedPositionBreaksRun) {
    ProfileBuilder b;
    b.ev(OpKind::Get, 0, 8).ev(OpKind::Get, 1, 8).ev(OpKind::Get, 2, 8);
    b.ev(OpKind::Get, 2, 8);  // repeat
    b.ev(OpKind::Get, 3, 8).ev(OpKind::Get, 4, 8);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    // First run of 3 emitted; repeat starts run {2,3,4} of length 3.
    ASSERT_EQ(patterns.size(), 2u);
    EXPECT_EQ(patterns[0].length, 3u);
    EXPECT_EQ(patterns[1].length, 3u);
}

TEST(PatternDetector, JumpReadsProduceNoPattern) {
    ProfileBuilder b;
    int pos = 0;
    for (int i = 0; i < 40; ++i) {
        b.ev(OpKind::Get, pos, 15);
        pos = (pos + 7) % 15;
    }
    const auto profile = b.build();
    EXPECT_TRUE(detect(profile).empty());
}

TEST(PatternDetector, SearchEventBreaksReadRun) {
    ProfileBuilder b;
    b.read_forward(4, 8);
    b.ev(OpKind::IndexOf, 5, 8);
    b.read_forward(4, 8);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 2u);
    EXPECT_EQ(patterns[0].length, 4u);
    EXPECT_EQ(patterns[1].length, 4u);
}

TEST(PatternDetector, ForAllSynthesizesFullReadSweep) {
    ProfileBuilder b;
    b.ev(OpKind::ForEach, -1, 20);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].kind, PatternKind::ReadForward);
    EXPECT_TRUE(patterns[0].synthetic);
    EXPECT_EQ(patterns[0].length, 20u);
    EXPECT_DOUBLE_EQ(patterns[0].coverage, 1.0);
}

TEST(PatternDetector, ForAllOnEmptyContainerIgnored) {
    ProfileBuilder b;
    b.ev(OpKind::ForEach, -1, 0);
    const auto profile = b.build();
    EXPECT_TRUE(detect(profile).empty());
}

TEST(PatternDetector, PerThreadSeparation) {
    ProfileBuilder b;
    // Interleave two threads, each reading forward; a thread-agnostic
    // detector would see position jumps and find nothing.
    for (int i = 0; i < 10; ++i) {
        b.ev(OpKind::Get, i, 10, 0);
        b.ev(OpKind::Get, 9 - i, 10, 1);
    }
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 2u);
    EXPECT_EQ(patterns[0].kind, PatternKind::ReadForward);
    EXPECT_EQ(patterns[0].thread, 0);
    EXPECT_EQ(patterns[1].kind, PatternKind::ReadBackward);
    EXPECT_EQ(patterns[1].thread, 1);
}

TEST(PatternDetector, CoverageIsPartialForShortSweeps) {
    ProfileBuilder b;
    b.read_forward(5, 20);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_DOUBLE_EQ(patterns[0].coverage, 0.25);
}

TEST(PatternDetector, MixedEndInsertsEmitNothing) {
    ProfileBuilder b;
    // Alternating front/back inserts: neither all-front nor all-back.
    b.ev(OpKind::InsertAt, 0, 1);   // both (size 1)
    b.ev(OpKind::Add, 1, 2);        // back
    b.ev(OpKind::InsertAt, 0, 3);   // front -> run no longer all-back...
    b.ev(OpKind::Add, 3, 4);        // back -> breaks
    b.ev(OpKind::InsertAt, 2, 5);   // middle
    const auto profile = b.build();
    for (const Pattern& p : detect(profile))
        EXPECT_GE(p.length, PatternDetector{}.config().min_pattern_events);
}

TEST(PatternDetector, Figure2Profile) {
    // The paper's Figure 2: fill 10 front-to-back, then read back-to-front.
    ProfileBuilder b;
    b.append_run(10);
    for (int i = 9; i >= 0; --i) b.ev(OpKind::Get, i, 10);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 2u);
    EXPECT_EQ(patterns[0].kind, PatternKind::InsertBack);
    EXPECT_EQ(patterns[0].length, 10u);
    EXPECT_EQ(patterns[1].kind, PatternKind::ReadBackward);
    EXPECT_EQ(patterns[1].length, 10u);
}

TEST(PatternDetector, CountByKind) {
    ProfileBuilder b;
    b.append_run(5);
    b.read_forward(5, 5);
    const auto profile = b.build();
    const auto counts = count_by_kind(detect(profile));
    EXPECT_EQ(counts[static_cast<size_t>(PatternKind::InsertBack)], 1u);
    EXPECT_EQ(counts[static_cast<size_t>(PatternKind::ReadForward)], 1u);
    EXPECT_EQ(counts[static_cast<size_t>(PatternKind::DeleteBack)], 0u);
}

TEST(PatternDetector, PatternsSortedByFirstEvent) {
    ProfileBuilder b;
    b.append_run(5);
    b.read_forward(5, 5);
    b.append_run(5, 5);
    const auto profile = b.build();
    const auto patterns = detect(profile);
    ASSERT_EQ(patterns.size(), 3u);
    EXPECT_LT(patterns[0].first, patterns[1].first);
    EXPECT_LT(patterns[1].first, patterns[2].first);
}

}  // namespace
}  // namespace dsspy::core
