// Tests for the use-case engine: each of the eight rules fires exactly on
// its documented evidence and respects its thresholds.
#include <gtest/gtest.h>

#include <vector>

#include "core/use_cases.hpp"

namespace dsspy::core {
namespace {

using runtime::AccessEvent;
using runtime::DsKind;
using runtime::InstanceInfo;
using runtime::OpKind;

struct ProfileBuilder {
    std::vector<AccessEvent> events;
    std::uint64_t seq = 0;

    ProfileBuilder& ev(OpKind op, std::int64_t pos, std::uint32_t size,
                       runtime::ThreadId thread = 0) {
        AccessEvent e;
        e.seq = seq;
        e.time_ns = seq * 100;
        e.position = pos;
        e.instance = 0;
        e.size = size;
        e.op = op;
        e.thread = thread;
        events.push_back(e);
        ++seq;
        return *this;
    }

    ProfileBuilder& append_run(int n, std::uint32_t start_size = 0) {
        for (int i = 0; i < n; ++i)
            ev(OpKind::Add, start_size + static_cast<std::uint32_t>(i),
               start_size + static_cast<std::uint32_t>(i) + 1);
        return *this;
    }

    ProfileBuilder& read_forward(int n, std::uint32_t size) {
        for (int i = 0; i < n; ++i) ev(OpKind::Get, i, size);
        return *this;
    }

    ProfileBuilder& jump_reads(int n, std::uint32_t size) {
        int pos = 0;
        for (int i = 0; i < n; ++i) {
            ev(OpKind::Get, pos, size);
            pos = (pos + 7) % static_cast<int>(size);
        }
        return *this;
    }

    [[nodiscard]] RuntimeProfile build(DsKind kind = DsKind::List) const {
        InstanceInfo info;
        info.id = 0;
        info.kind = kind;
        info.type_name = "List<Int32>";
        info.location = {"C", "M", 1};
        return RuntimeProfile(info, events);
    }
};

std::vector<UseCase> classify(const RuntimeProfile& profile,
                              DetectorConfig config = {}) {
    const auto patterns = PatternDetector(config).detect(profile);
    return UseCaseEngine(config).classify(profile, patterns);
}

bool has(const std::vector<UseCase>& ucs, UseCaseKind kind) {
    for (const UseCase& uc : ucs)
        if (uc.kind == kind) return true;
    return false;
}

// ------------------------------- metadata ---------------------------------

TEST(UseCaseMeta, NamesCodesAndParallelFlags) {
    EXPECT_EQ(use_case_name(UseCaseKind::LongInsert), "Long-Insert");
    EXPECT_EQ(use_case_code(UseCaseKind::LongInsert), "LI");
    EXPECT_EQ(use_case_code(UseCaseKind::FrequentLongRead), "FLR");
    EXPECT_TRUE(has_parallel_potential(UseCaseKind::LongInsert));
    EXPECT_TRUE(has_parallel_potential(UseCaseKind::ImplementQueue));
    EXPECT_TRUE(has_parallel_potential(UseCaseKind::SortAfterInsert));
    EXPECT_TRUE(has_parallel_potential(UseCaseKind::FrequentSearch));
    EXPECT_TRUE(has_parallel_potential(UseCaseKind::FrequentLongRead));
    EXPECT_FALSE(has_parallel_potential(UseCaseKind::InsertDeleteFront));
    EXPECT_FALSE(has_parallel_potential(UseCaseKind::StackImplementation));
    EXPECT_FALSE(has_parallel_potential(UseCaseKind::WriteWithoutRead));
    for (std::size_t k = 0; k < kUseCaseKindCount; ++k)
        EXPECT_FALSE(
            recommended_action(static_cast<UseCaseKind>(k)).empty());
}

// ------------------------------- Long-Insert ------------------------------

TEST(ShareBasis, TimeBasisUsesWallClockSpans) {
    // 120 inserts over a LONG wall-clock span followed by 300 reads packed
    // into a short span: by event count the insertion share is ~28%
    // (below threshold), by time it is ~90% (above threshold).
    ProfileBuilder b;
    for (int i = 0; i < 120; ++i) {
        AccessEvent e;
        e.seq = b.seq;
        e.time_ns = b.seq * 1000;  // 1 us per insert
        e.position = i;
        e.instance = 0;
        e.size = static_cast<std::uint32_t>(i + 1);
        e.op = OpKind::Add;
        e.thread = 0;
        b.events.push_back(e);
        ++b.seq;
    }
    const std::uint64_t insert_end_ns = (b.seq - 1) * 1000;
    int pos = 0;
    for (int i = 0; i < 300; ++i) {
        AccessEvent e;
        e.seq = b.seq;
        e.time_ns = insert_end_ns + 40 * (static_cast<std::uint64_t>(i) + 1);
        e.position = pos;
        e.instance = 0;
        e.size = 120;
        e.op = OpKind::Get;
        e.thread = 0;
        b.events.push_back(e);
        ++b.seq;
        pos = (pos + 7) % 120;
    }
    const auto profile = b.build();

    DetectorConfig by_events;
    EXPECT_FALSE(has(classify(profile, by_events), UseCaseKind::LongInsert));

    DetectorConfig by_time;
    by_time.share_basis = ShareBasis::Time;
    EXPECT_TRUE(has(classify(profile, by_time), UseCaseKind::LongInsert));
}

TEST(LongInsert, FiresOnLongDominantInsertPhases) {
    ProfileBuilder b;
    b.append_run(150);
    b.jump_reads(30, 150);
    const auto profile = b.build();
    const auto ucs = classify(profile);
    ASSERT_EQ(ucs.size(), 1u);
    EXPECT_EQ(ucs[0].kind, UseCaseKind::LongInsert);
    EXPECT_TRUE(ucs[0].parallel_potential());
    EXPECT_FALSE(ucs[0].reason().empty());
    EXPECT_EQ(ucs[0].recommendation(),
              std::string(recommended_action(UseCaseKind::LongInsert)));
}

TEST(LongInsert, DoesNotFireBelowPhaseLength) {
    ProfileBuilder b;
    b.append_run(99);  // just below the 100-event threshold
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::LongInsert));
}

TEST(LongInsert, FiresAtExactThresholdLength) {
    ProfileBuilder b;
    b.append_run(100);
    const auto profile = b.build();
    EXPECT_TRUE(has(classify(profile), UseCaseKind::LongInsert));
}

TEST(LongInsert, DoesNotFireBelowShare) {
    ProfileBuilder b;
    b.append_run(120);
    b.jump_reads(300, 120);  // insertions are only ~28% of the profile
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::LongInsert));
}

TEST(LongInsert, ArrayWriteForwardCountsAsInsertion) {
    ProfileBuilder b;
    for (int i = 0; i < 150; ++i) b.ev(OpKind::Set, i, 150);
    b.jump_reads(20, 150);
    const auto profile = b.build(DsKind::Array);
    EXPECT_TRUE(has(classify(profile), UseCaseKind::LongInsert));
}

TEST(LongInsert, ListWriteForwardDoesNotCount) {
    // On a dynamic list a write streak is not an insertion.
    ProfileBuilder b;
    for (int i = 0; i < 150; ++i) b.ev(OpKind::Set, i, 150);
    const auto profile = b.build(DsKind::List);
    EXPECT_FALSE(has(classify(profile), UseCaseKind::LongInsert));
}

TEST(LongInsert, NotOnDictionaries) {
    ProfileBuilder b;
    for (int i = 0; i < 200; ++i) b.ev(OpKind::Add, -1, 0);
    const auto profile = b.build(DsKind::Dictionary);
    EXPECT_FALSE(has(classify(profile), UseCaseKind::LongInsert));
}

TEST(LongInsert, ThresholdsAreConfigurable) {
    ProfileBuilder b;
    b.append_run(50);
    const auto profile = b.build();
    DetectorConfig config;
    config.li_min_phase_events = 40;
    EXPECT_TRUE(has(classify(profile, config), UseCaseKind::LongInsert));
}

// --------------------------- Implement-Queue ------------------------------

TEST(ImplementQueue, FiresOnTwoEndTraffic) {
    ProfileBuilder b;
    // Interleaved enqueue-at-back / read+dequeue-at-front on a list.
    std::uint32_t count = 5;
    b.append_run(5);
    for (int i = 0; i < 120; ++i) {
        b.ev(OpKind::Add, count, count + 1);       // back insert
        ++count;
        b.ev(OpKind::Get, 0, count);               // front read
        b.ev(OpKind::RemoveAt, 0, count - 1);      // front delete
        --count;
    }
    const auto profile = b.build();
    const auto ucs = classify(profile);
    EXPECT_TRUE(has(ucs, UseCaseKind::ImplementQueue));
    EXPECT_FALSE(has(ucs, UseCaseKind::StackImplementation));
    EXPECT_FALSE(has(ucs, UseCaseKind::LongInsert));
}

TEST(ImplementQueue, NotOnActualQueues) {
    ProfileBuilder b;
    std::uint32_t count = 0;
    for (int i = 0; i < 120; ++i) {
        b.ev(OpKind::Add, count, count + 1);
        ++count;
        b.ev(OpKind::RemoveAt, 0, count - 1);
        --count;
    }
    const auto profile = b.build(DsKind::Queue);
    EXPECT_FALSE(has(classify(profile), UseCaseKind::ImplementQueue));
}

TEST(ImplementQueue, NotOnTinyLists) {
    // A handful of accesses is not "a high amount" — the rule needs
    // iq_min_events total accesses before it applies.
    ProfileBuilder b;
    b.append_run(4);
    b.ev(OpKind::Get, 0, 4);
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::ImplementQueue));
}

TEST(ImplementQueue, NotWhenMiddleTrafficDominates) {
    ProfileBuilder b;
    b.append_run(10);
    b.jump_reads(200, 10);  // mid-structure reads dominate
    for (int i = 0; i < 10; ++i) b.ev(OpKind::RemoveAt, 0, 9 - i);
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::ImplementQueue));
}

// --------------------------- Sort-After-Insert ----------------------------

TEST(SortAfterInsert, FiresAndSuppressesLongInsert) {
    ProfileBuilder b;
    b.append_run(150);
    b.ev(OpKind::Sort, -1, 150);
    b.jump_reads(20, 150);
    const auto profile = b.build();
    const auto ucs = classify(profile);
    EXPECT_TRUE(has(ucs, UseCaseKind::SortAfterInsert));
    EXPECT_FALSE(has(ucs, UseCaseKind::LongInsert));
}

TEST(SortAfterInsert, GapTooLargeFallsBackToLongInsert) {
    ProfileBuilder b;
    b.append_run(150);
    b.jump_reads(30, 150);  // 30 events between insertion end and sort
    b.ev(OpKind::Sort, -1, 150);
    const auto profile = b.build();
    const auto ucs = classify(profile);
    EXPECT_FALSE(has(ucs, UseCaseKind::SortAfterInsert));
    EXPECT_TRUE(has(ucs, UseCaseKind::LongInsert));
}

TEST(SortAfterInsert, ShortInsertPhaseDoesNotQualify) {
    ProfileBuilder b;
    b.append_run(50);
    b.ev(OpKind::Sort, -1, 50);
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::SortAfterInsert));
}

// ----------------------------- Frequent-Search ----------------------------

TEST(FrequentSearch, FiresAboveSearchCountWithReadPatterns) {
    ProfileBuilder b;
    b.append_run(64);
    for (int i = 0; i < 1100; ++i) {
        b.ev(OpKind::IndexOf, i % 64, 64);
        if (i % 250 == 0) b.read_forward(64, 64);
    }
    const auto profile = b.build();
    EXPECT_TRUE(has(classify(profile), UseCaseKind::FrequentSearch));
}

TEST(FrequentSearch, RequiresMoreThanThousandSearches) {
    ProfileBuilder b;
    b.append_run(64);
    for (int i = 0; i < 900; ++i) {
        b.ev(OpKind::IndexOf, i % 64, 64);
        if (i % 250 == 0) b.read_forward(64, 64);
    }
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::FrequentSearch));
}

TEST(FrequentSearch, RequiresReadPatternEvidence) {
    ProfileBuilder b;
    b.append_run(64);
    for (int i = 0; i < 1200; ++i) b.ev(OpKind::IndexOf, i % 64, 64);
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::FrequentSearch));
}

// --------------------------- Frequent-Long-Read ---------------------------

TEST(FrequentLongRead, FiresOnRepeatedFullSweeps) {
    ProfileBuilder b;
    b.append_run(100);
    for (int sweep = 0; sweep < 12; ++sweep) b.read_forward(100, 100);
    const auto profile = b.build();
    const auto ucs = classify(profile);
    EXPECT_TRUE(has(ucs, UseCaseKind::FrequentLongRead));
}

TEST(FrequentLongRead, TenSweepsAreNotEnough) {
    ProfileBuilder b;
    b.append_run(20);
    for (int sweep = 0; sweep < 10; ++sweep) b.read_forward(20, 20);
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::FrequentLongRead));
}

TEST(FrequentLongRead, ShortSweepsDoNotCount) {
    ProfileBuilder b;
    b.append_run(10);
    // 15 sweeps that each cover only 30% of the structure.
    for (int sweep = 0; sweep < 15; ++sweep) b.read_forward(30, 100);
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::FrequentLongRead));
}

TEST(FrequentLongRead, ForEachSweepsCount) {
    ProfileBuilder b;
    b.append_run(50);
    for (int i = 0; i < 12; ++i) b.ev(OpKind::ForEach, -1, 50);
    const auto profile = b.build();
    EXPECT_TRUE(has(classify(profile), UseCaseKind::FrequentLongRead));
}

// --------------------------- Insert/Delete-Front --------------------------

TEST(InsertDeleteFront, FiresOnRepeatedArrayResizes) {
    ProfileBuilder b;
    for (int i = 0; i < 12; ++i)
        b.ev(OpKind::Resize, -1, static_cast<std::uint32_t>(100 + i));
    const auto profile = b.build(DsKind::Array);
    const auto ucs = classify(profile);
    EXPECT_TRUE(has(ucs, UseCaseKind::InsertDeleteFront));
    EXPECT_FALSE(ucs.empty());
    EXPECT_FALSE(ucs[0].parallel_potential());
}

TEST(InsertDeleteFront, FewResizesDoNotFire) {
    ProfileBuilder b;
    for (int i = 0; i < 5; ++i) b.ev(OpKind::Resize, -1, 100);
    const auto profile = b.build(DsKind::Array);
    EXPECT_FALSE(has(classify(profile), UseCaseKind::InsertDeleteFront));
}

TEST(InsertDeleteFront, FiresOnListFrontChurn) {
    ProfileBuilder b;
    // Keep the container large so front accesses are unambiguous (a front
    // insert on a 1-element list is also a back insert).
    std::uint32_t count = 20;
    b.append_run(20);
    for (int i = 0; i < 60; ++i) {
        b.ev(OpKind::InsertAt, 0, ++count);
        b.jump_reads(3, count);
        b.ev(OpKind::RemoveAt, 0, --count);
    }
    const auto profile = b.build();
    EXPECT_TRUE(has(classify(profile), UseCaseKind::InsertDeleteFront));
}

// --------------------------- Stack-Implementation -------------------------

TEST(StackImplementation, FiresOnCommonEndMutations) {
    ProfileBuilder b;
    std::uint32_t count = 0;
    for (int i = 0; i < 40; ++i) {
        b.ev(OpKind::Add, count, count + 1);  // push
        ++count;
        b.ev(OpKind::Add, count, count + 1);  // push
        ++count;
        b.ev(OpKind::RemoveAt, count - 1, count - 1);  // pop (back)
        --count;
    }
    const auto profile = b.build();
    const auto ucs = classify(profile);
    EXPECT_TRUE(has(ucs, UseCaseKind::StackImplementation));
    EXPECT_FALSE(has(ucs, UseCaseKind::ImplementQueue));
}

TEST(StackImplementation, MixedEndsDoNotFire) {
    ProfileBuilder b;
    // Keep the container large so front and back removals are distinct.
    std::uint32_t count = 20;
    b.append_run(20);
    for (int i = 0; i < 40; ++i) {
        b.ev(OpKind::Add, count, count + 1);
        ++count;
        // Pop alternating between front and back.
        if (i % 2 == 0) {
            b.ev(OpKind::RemoveAt, count - 1, count - 1);
        } else {
            b.ev(OpKind::RemoveAt, 0, count - 1);
        }
        --count;
    }
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::StackImplementation));
}

TEST(StackImplementation, RequiresDeletes) {
    ProfileBuilder b;
    b.append_run(40);
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::StackImplementation));
}

// ---------------------------- Write-Without-Read --------------------------

TEST(WriteWithoutRead, FiresOnTrailingWritePhase) {
    ProfileBuilder b;
    b.append_run(50);
    b.jump_reads(30, 50);
    for (int i = 0; i < 30; ++i) b.ev(OpKind::Set, i, 50);  // cleanup
    const auto profile = b.build();
    const auto ucs = classify(profile);
    EXPECT_TRUE(has(ucs, UseCaseKind::WriteWithoutRead));
}

TEST(WriteWithoutRead, NotWhenWritesAreReadBack) {
    ProfileBuilder b;
    b.append_run(50);
    for (int i = 0; i < 30; ++i) b.ev(OpKind::Set, i, 50);
    b.jump_reads(10, 50);  // profile ends with reads
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::WriteWithoutRead));
}

TEST(WriteWithoutRead, ShortTrailingPhaseDoesNotFire) {
    ProfileBuilder b;
    b.append_run(50);
    for (int i = 0; i < 5; ++i) b.ev(OpKind::Set, i, 50);
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::WriteWithoutRead));
}

TEST(WriteWithoutRead, LowCoverageDoesNotFire) {
    ProfileBuilder b;
    b.append_run(100);
    for (int i = 0; i < 12; ++i) b.ev(OpKind::Set, i, 100);  // 12% coverage
    const auto profile = b.build();
    EXPECT_FALSE(has(classify(profile), UseCaseKind::WriteWithoutRead));
}

// ------------------------------ combinations ------------------------------

TEST(Combinations, PopulationListGetsBothLiAndFlr) {
    // The GPdotNET population profile: rebuilt every generation and fully
    // swept by fitness evaluation (Table V use cases two and three).
    ProfileBuilder b;
    for (int gen = 0; gen < 12; ++gen) {
        b.append_run(150);
        b.read_forward(150, 150);  // fitness evaluation sweep
        b.read_forward(150, 150);  // parent-selection sweep
        b.ev(OpKind::Clear, -1, 0);
    }
    const auto profile = b.build();
    const auto ucs = classify(profile);
    EXPECT_TRUE(has(ucs, UseCaseKind::LongInsert));
    EXPECT_TRUE(has(ucs, UseCaseKind::FrequentLongRead));
}

TEST(Combinations, EmptyProfileYieldsNothing) {
    ProfileBuilder b;
    const auto profile = b.build();
    EXPECT_TRUE(classify(profile).empty());
}

}  // namespace
}  // namespace dsspy::core
