// Tests for RuntimeProfile: access-type derivation, counts, phases.
#include <gtest/gtest.h>

#include <vector>

#include "core/profile.hpp"

namespace dsspy::core {
namespace {

using runtime::AccessEvent;
using runtime::DsKind;
using runtime::InstanceInfo;
using runtime::OpKind;

/// Builds event sequences by hand; the profile references the builder's
/// storage, so keep the builder alive while using the profile.
struct ProfileBuilder {
    std::vector<AccessEvent> events;
    std::uint64_t seq = 0;

    ProfileBuilder& ev(OpKind op, std::int64_t pos, std::uint32_t size,
                       runtime::ThreadId thread = 0) {
        AccessEvent e;
        e.seq = seq;
        e.time_ns = seq * 100;
        e.position = pos;
        e.instance = 0;
        e.size = size;
        e.op = op;
        e.thread = thread;
        events.push_back(e);
        ++seq;
        return *this;
    }

    [[nodiscard]] RuntimeProfile build(DsKind kind = DsKind::List) const {
        InstanceInfo info;
        info.id = 0;
        info.kind = kind;
        info.type_name = "List<Int32>";
        info.location = {"C", "M", 1};
        return RuntimeProfile(info, events);
    }
};

TEST(AccessTypeDerivation, MapsEveryOp) {
    EXPECT_EQ(derive_access_type(OpKind::Get), AccessType::Read);
    EXPECT_EQ(derive_access_type(OpKind::Set), AccessType::Write);
    EXPECT_EQ(derive_access_type(OpKind::Add), AccessType::Insert);
    EXPECT_EQ(derive_access_type(OpKind::InsertAt), AccessType::Insert);
    EXPECT_EQ(derive_access_type(OpKind::RemoveAt), AccessType::Delete);
    EXPECT_EQ(derive_access_type(OpKind::Clear), AccessType::Clear);
    EXPECT_EQ(derive_access_type(OpKind::IndexOf), AccessType::Search);
    EXPECT_EQ(derive_access_type(OpKind::Sort), AccessType::Sort);
    EXPECT_EQ(derive_access_type(OpKind::Reverse), AccessType::Reverse);
    EXPECT_EQ(derive_access_type(OpKind::CopyTo), AccessType::Copy);
    EXPECT_EQ(derive_access_type(OpKind::ForEach), AccessType::ForAll);
    EXPECT_EQ(derive_access_type(OpKind::Resize), AccessType::Copy);
}

TEST(AccessTypeDerivation, ReadWriteClassification) {
    EXPECT_TRUE(is_read_like(AccessType::Read));
    EXPECT_TRUE(is_read_like(AccessType::Search));
    EXPECT_TRUE(is_read_like(AccessType::Copy));
    EXPECT_TRUE(is_read_like(AccessType::ForAll));
    EXPECT_TRUE(is_write_like(AccessType::Write));
    EXPECT_TRUE(is_write_like(AccessType::Insert));
    EXPECT_TRUE(is_write_like(AccessType::Delete));
    EXPECT_TRUE(is_write_like(AccessType::Clear));
    EXPECT_TRUE(is_write_like(AccessType::Sort));
    EXPECT_TRUE(is_write_like(AccessType::Reverse));
}

TEST(RuntimeProfile, EmptyProfile) {
    ProfileBuilder b;
    const RuntimeProfile p = b.build();
    EXPECT_EQ(p.total_events(), 0u);
    EXPECT_TRUE(p.phases().empty());
    EXPECT_DOUBLE_EQ(p.share(AccessType::Read), 0.0);
    EXPECT_DOUBLE_EQ(p.read_like_share(), 0.0);
    EXPECT_EQ(p.duration_ns(), 0u);
}

TEST(RuntimeProfile, CountsAndShares) {
    ProfileBuilder b;
    b.ev(OpKind::Add, 0, 1).ev(OpKind::Add, 1, 2);
    b.ev(OpKind::Get, 0, 2).ev(OpKind::Get, 1, 2);
    b.ev(OpKind::IndexOf, 1, 2);
    b.ev(OpKind::Clear, -1, 0);
    const RuntimeProfile p = b.build();
    EXPECT_EQ(p.total_events(), 6u);
    EXPECT_EQ(p.count(AccessType::Insert), 2u);
    EXPECT_EQ(p.count(AccessType::Read), 2u);
    EXPECT_EQ(p.count(AccessType::Search), 1u);
    EXPECT_EQ(p.count(AccessType::Clear), 1u);
    EXPECT_DOUBLE_EQ(p.share(AccessType::Insert), 2.0 / 6.0);
    EXPECT_DOUBLE_EQ(p.read_like_share(), 3.0 / 6.0);  // 2 reads + 1 search
    EXPECT_EQ(p.max_size(), 2u);
}

TEST(RuntimeProfile, PhaseSegmentation) {
    ProfileBuilder b;
    for (int i = 0; i < 5; ++i)
        b.ev(OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    for (int i = 0; i < 3; ++i) b.ev(OpKind::Get, i, 5);
    b.ev(OpKind::Sort, -1, 5);
    for (int i = 0; i < 2; ++i) b.ev(OpKind::Set, i, 5);
    const RuntimeProfile p = b.build();
    const auto& phases = p.phases();
    ASSERT_EQ(phases.size(), 4u);
    EXPECT_EQ(phases[0].type, AccessType::Insert);
    EXPECT_EQ(phases[0].length(), 5u);
    EXPECT_EQ(phases[1].type, AccessType::Read);
    EXPECT_EQ(phases[1].length(), 3u);
    EXPECT_EQ(phases[2].type, AccessType::Sort);
    EXPECT_EQ(phases[2].length(), 1u);
    EXPECT_EQ(phases[3].type, AccessType::Write);
    EXPECT_EQ(phases[3].length(), 2u);
    EXPECT_EQ(phases[3].first, 9u);
    EXPECT_EQ(phases[3].last, 10u);
}

TEST(RuntimeProfile, PhaseShareWithMinimumLength) {
    ProfileBuilder b;
    // Insert phase of 10, read phase of 5, insert phase of 3.
    for (int i = 0; i < 10; ++i)
        b.ev(OpKind::Add, i, static_cast<std::uint32_t>(i + 1));
    for (int i = 0; i < 5; ++i) b.ev(OpKind::Get, i, 10);
    for (int i = 0; i < 3; ++i)
        b.ev(OpKind::Add, 10 + i, static_cast<std::uint32_t>(11 + i));
    const RuntimeProfile p = b.build();
    EXPECT_DOUBLE_EQ(p.phase_share(AccessType::Insert), 13.0 / 18.0);
    // Only the first insert phase has >= 10 events.
    EXPECT_DOUBLE_EQ(p.phase_share(AccessType::Insert, 10), 10.0 / 18.0);
    EXPECT_TRUE(p.has_long_phase(AccessType::Insert, 10));
    EXPECT_FALSE(p.has_long_phase(AccessType::Insert, 11));
    EXPECT_TRUE(p.has_long_phase(AccessType::Read, 5));
    EXPECT_FALSE(p.has_long_phase(AccessType::Write, 1));
}

TEST(RuntimeProfile, ThreadCountAndDuration) {
    ProfileBuilder b;
    b.ev(OpKind::Add, 0, 1, 0);
    b.ev(OpKind::Add, 1, 2, 1);
    b.ev(OpKind::Add, 2, 3, 2);
    b.ev(OpKind::Get, 0, 3, 0);
    const RuntimeProfile p = b.build();
    EXPECT_EQ(p.thread_count(), 3u);
    EXPECT_EQ(p.duration_ns(), 300u);  // time_ns = seq*100
}

}  // namespace
}  // namespace dsspy::core
