// Tests for the ASCII and SVG profile renderers.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ds/profiled_list.hpp"
#include "viz/ascii_chart.hpp"
#include "viz/svg.hpp"

namespace dsspy::viz {
namespace {

using runtime::ProfilingSession;

/// Build the Figure 2 profile: fill 10 values front-to-back, read them
/// back-to-front.
core::RuntimeProfile figure2_profile(ProfilingSession& session) {
    ds::ProfiledList<int> list(&session, {"Example", "Main", 1}, 10);
    for (int i = 0; i < 10; ++i) list.add(i);
    for (int i = 9; i >= 0; --i) (void)list.get(static_cast<size_t>(i));
    const auto id = list.instance_id();
    session.stop();
    return core::RuntimeProfile(session.registry().info(id),
                                session.store().events(id));
}

TEST(AsciiChart, RendersBarsWithMarksAndAxis) {
    ProfilingSession session;
    const auto profile = figure2_profile(session);
    const std::string chart = render_profile_bars(profile);
    EXPECT_NE(chart.find('I'), std::string::npos);  // insert marks
    EXPECT_NE(chart.find('R'), std::string::npos);  // read marks
    EXPECT_NE(chart.find("> time"), std::string::npos);
    EXPECT_NE(chart.find("20 events"), std::string::npos);
    EXPECT_NE(chart.find("legend:"), std::string::npos);
}

TEST(AsciiChart, ScatterOmitsBars) {
    ProfilingSession session;
    const auto profile = figure2_profile(session);
    ChartOptions options;
    options.show_legend = false;
    const std::string chart = render_profile_scatter(profile, options);
    EXPECT_EQ(chart.find("legend:"), std::string::npos);
    EXPECT_NE(chart.find('R'), std::string::npos);
}

TEST(AsciiChart, EmptyProfile) {
    core::RuntimeProfile profile;
    EXPECT_EQ(render_profile_bars(profile), "(empty profile)\n");
}

TEST(AsciiChart, DownsamplesWideProfiles) {
    ProfilingSession session;
    ds::ProfiledList<int> list(&session, {"E", "M", 1});
    for (int i = 0; i < 5000; ++i) list.add(i);
    const auto id = list.instance_id();
    session.stop();
    const core::RuntimeProfile profile(session.registry().info(id),
                                       session.store().events(id));
    ChartOptions options;
    options.max_width = 80;
    const std::string chart = render_profile_scatter(profile, options);
    // No line longer than the axis line + margin.
    std::istringstream in(chart);
    std::string line;
    while (std::getline(in, line)) EXPECT_LE(line.size(), 130u);
}

TEST(AsciiChart, PrintProfileIncludesHeader) {
    ProfilingSession session;
    const auto profile = figure2_profile(session);
    std::ostringstream os;
    print_profile(os, profile);
    EXPECT_NE(os.str().find("List<Int32>"), std::string::npos);
    EXPECT_NE(os.str().find("Example.Main:1"), std::string::npos);
}

TEST(SvgWriter, ProducesWellFormedDocument) {
    SvgWriter svg(100, 50);
    svg.rect(0, 0, 10, 10, "#ff0000");
    svg.line(0, 0, 100, 50, "#000");
    svg.text(5, 5, "hello");
    svg.circle(50, 25, 3, "#00ff00");
    const std::string doc = svg.finish();
    EXPECT_NE(doc.find("<svg"), std::string::npos);
    EXPECT_NE(doc.find("</svg>"), std::string::npos);
    EXPECT_NE(doc.find("<rect"), std::string::npos);
    EXPECT_NE(doc.find("<line"), std::string::npos);
    EXPECT_NE(doc.find("hello"), std::string::npos);
    EXPECT_NE(doc.find("<circle"), std::string::npos);
}

TEST(SvgExport, ProfileChartHasBarsForEveryDownsampledEvent) {
    ProfilingSession session;
    const auto profile = figure2_profile(session);
    const std::string svg = profile_to_svg(profile);
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    // Reads green, writes/inserts red, size bars grey.
    EXPECT_NE(svg.find("#2e9e4f"), std::string::npos);
    EXPECT_NE(svg.find("#d62728"), std::string::npos);
    EXPECT_NE(svg.find("#cccccc"), std::string::npos);
    EXPECT_NE(svg.find("20 access events"), std::string::npos);
}

TEST(SvgExport, StackedBarsChart) {
    std::vector<StackedBar> bars;
    bars.push_back({"alpha", {10.0, 5.0, 1.0}});
    bars.push_back({"beta", {2.0, 0.0, 3.0}});
    const std::string svg =
        stacked_bars_to_svg(bars, {"List", "Dictionary", "Rest"});
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("alpha"), std::string::npos);
    EXPECT_NE(svg.find("beta"), std::string::npos);
    EXPECT_NE(svg.find("Dictionary"), std::string::npos);
    EXPECT_NE(svg.find("rotate(60"), std::string::npos);
    // Zero segments are skipped: count rects (2 background + bars + legend).
    // alpha has 3 segments, beta has 2 non-zero, legend has 3 swatches.
    const std::size_t rects = [&svg] {
        std::size_t n = 0;
        std::size_t pos = 0;
        while ((pos = svg.find("<rect", pos)) != std::string::npos) {
            ++n;
            pos += 5;
        }
        return n;
    }();
    EXPECT_EQ(rects, 1u + 3u + 2u + 3u);  // background + alpha + beta + legend
}

TEST(SvgExport, StackedBarsEmptyInput) {
    const std::string svg = stacked_bars_to_svg({}, {});
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgExport, WriteFileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/dsspy_test.svg";
    EXPECT_TRUE(write_file(path, "<svg></svg>"));
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[32] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buf, n), "<svg></svg>");
}

}  // namespace
}  // namespace dsspy::viz
