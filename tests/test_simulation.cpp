// Tests for the virtual-time parallel-execution simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "parallel/simulation.hpp"

namespace dsspy::par {
namespace {

TEST(SimulatedSchedule, SingleWorkerEqualsTotalWork) {
    SimulatedSchedule schedule({100, 200, 300});
    EXPECT_EQ(schedule.total_work_ns(), 600u);
    EXPECT_EQ(schedule.makespan_ns(1), 600u);
    EXPECT_DOUBLE_EQ(schedule.region_speedup(1), 1.0);
}

TEST(SimulatedSchedule, UniformChunksScaleLinearly) {
    SimulatedSchedule schedule(std::vector<std::uint64_t>(8, 100));
    EXPECT_EQ(schedule.makespan_ns(2), 400u);
    EXPECT_EQ(schedule.makespan_ns(4), 200u);
    EXPECT_EQ(schedule.makespan_ns(8), 100u);
    // More workers than chunks cannot help further.
    EXPECT_EQ(schedule.makespan_ns(16), 100u);
    EXPECT_DOUBLE_EQ(schedule.region_speedup(8), 8.0);
}

TEST(SimulatedSchedule, ImbalanceTailBindsMakespan) {
    // One giant chunk dominates: no worker count beats it.
    SimulatedSchedule schedule({1000, 10, 10, 10});
    EXPECT_EQ(schedule.critical_chunk_ns(), 1000u);
    EXPECT_EQ(schedule.makespan_ns(4), 1000u);
    EXPECT_GE(schedule.makespan_ns(2), 1000u);
}

TEST(SimulatedSchedule, GreedyListSchedulingInSubmissionOrder) {
    // Chunks 50,50,80 on 2 workers: w1={50,80}=130, w2={50}=50 -> 130.
    SimulatedSchedule schedule({50, 50, 80});
    EXPECT_EQ(schedule.makespan_ns(2), 130u);
    // Chunks 80,50,50: w1={80}, w2={50,50} -> 100.
    SimulatedSchedule reordered({80, 50, 50});
    EXPECT_EQ(reordered.makespan_ns(2), 100u);
}

TEST(SimulatedSchedule, ZeroWorkersFallsBackToSequential) {
    SimulatedSchedule schedule({5, 5});
    EXPECT_EQ(schedule.makespan_ns(0), 10u);
}

TEST(SimulatedSchedule, EmptySchedule) {
    SimulatedSchedule schedule;
    EXPECT_EQ(schedule.total_work_ns(), 0u);
    EXPECT_EQ(schedule.makespan_ns(8), 0u);
    EXPECT_DOUBLE_EQ(schedule.region_speedup(8), 1.0);
}

TEST(SimulateChunks, ExecutesEveryIndexExactlyOnce) {
    std::vector<int> hits(1000, 0);
    const SimulatedSchedule schedule = simulate_chunks(
        0, hits.size(), 7, [&hits](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) ++hits[i];
        });
    for (const int h : hits) EXPECT_EQ(h, 1);
    EXPECT_EQ(schedule.chunk_count(), 7u);
}

TEST(SimulateChunks, ClampsChunkCount) {
    std::atomic<int> calls{0};
    const SimulatedSchedule schedule = simulate_chunks(
        0, 3, 100, [&calls](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(schedule.chunk_count(), 3u);
    EXPECT_EQ(calls.load(), 3);

    const SimulatedSchedule empty = simulate_chunks(
        5, 5, 4, [](std::size_t, std::size_t) { FAIL(); });
    EXPECT_EQ(empty.chunk_count(), 0u);
}

TEST(SimulatedProgramSpeedup, AmdahlLimitWithSequentialRemainder) {
    // 900 units of perfectly parallel work + 100 sequential remainder.
    SimulatedSchedule schedule(std::vector<std::uint64_t>(9, 100));
    const double at9 = simulated_program_speedup(100, schedule, 9);
    EXPECT_NEAR(at9, 1000.0 / 200.0, 1e-9);
    const double at1 = simulated_program_speedup(100, schedule, 1);
    EXPECT_NEAR(at1, 1.0, 1e-9);
}

}  // namespace
}  // namespace dsspy::par
