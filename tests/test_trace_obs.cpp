// Tests for the span-tracing layer (src/obs/trace*, DESIGN.md §13):
// parent/root linkage of nested and cross-thread spans, the manual
// begin/end path, the span cap and slow-op accounting, the live
// open-span view, concurrent writers racing live snapshot() readers
// (the `trace_obs_tsan` ctest entry re-runs that suite under
// ThreadSanitizer), the Chrome trace-event exporter (validated with a
// real JSON parser, not substring luck), the critical-path estimate,
// and the pipeline wiring: an analyze run writes a loadable span file
// and — the differential guarantee — produces byte-identical reports
// with tracing on and off.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "apps/app_registry.hpp"
#include "json_check.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "pipeline/run_plan.hpp"
#include "pipeline/runner.hpp"
#include "runtime/session.hpp"
#include "runtime/trace_io.hpp"

namespace {

using namespace dsspy;
using dsspy_test::json_valid;

/// Enables the global trace recorder for one test and restores the
/// disabled default (empty buffers, default cap, no slow-op threshold)
/// on exit, keeping tests order-independent.
class GlobalTraceGuard {
public:
    GlobalTraceGuard() {
        obs::TraceRecorder::global().reset();
        obs::TraceRecorder::global().set_enabled(true);
    }
    ~GlobalTraceGuard() {
        obs::TraceRecorder& rec = obs::TraceRecorder::global();
        rec.set_enabled(false);
        rec.set_slow_op_threshold_ns(0);
        rec.set_span_cap(obs::TraceRecorder::kDefaultSpanCap);
        rec.reset();
    }
};

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& spans,
                                 std::string_view name) {
    for (const obs::SpanRecord& rec : spans)
        if (rec.name == name) return &rec;
    return nullptr;
}

std::size_t count_substr(const std::string& text, const std::string& what) {
    std::size_t count = 0;
    for (std::size_t pos = text.find(what); pos != std::string::npos;
         pos = text.find(what, pos + what.size()))
        ++count;
    return count;
}

// --- recorder semantics -------------------------------------------------

TEST(TraceSpans, DisabledRecorderRecordsNothing) {
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    rec.set_enabled(false);
    rec.reset();
    ASSERT_FALSE(obs::trace_enabled());
    {
        DSSPY_TRACE_SPAN("test.disabled");
        EXPECT_FALSE(obs::current_trace_context().valid());
    }
    const obs::ManualSpan manual = rec.begin_span("test.disabled_manual");
    EXPECT_FALSE(manual.ctx.valid());
    rec.end_span(manual);  // must be a no-op, not a crash
    EXPECT_TRUE(rec.snapshot().empty());
    EXPECT_EQ(rec.spans_recorded(), 0u);
    EXPECT_EQ(rec.slowest_open_span().name, nullptr);
}

TEST(TraceSpans, NestedScopedSpansLinkParentAndRoot) {
    GlobalTraceGuard guard;
    {
        obs::ScopedSpan outer("test.outer");
        outer.annotate("key", "value");
        outer.annotate("k2", "v2");
        EXPECT_EQ(obs::current_trace_context().span_id,
                  outer.context().span_id);
        {
            DSSPY_TRACE_SPAN("test.inner");
        }
    }
    EXPECT_FALSE(obs::current_trace_context().valid());

    const std::vector<obs::SpanRecord> spans =
        obs::TraceRecorder::global().snapshot();
    ASSERT_EQ(spans.size(), 2u);
    const obs::SpanRecord* outer = find_span(spans, "test.outer");
    const obs::SpanRecord* inner = find_span(spans, "test.inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_NE(outer->id, 0u);
    EXPECT_EQ(outer->parent, 0u);
    EXPECT_EQ(outer->root, outer->id);
    EXPECT_EQ(outer->annotations, "key=value k2=v2");
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_EQ(inner->root, outer->id);
    EXPECT_EQ(inner->thread, outer->thread);
    EXPECT_GE(inner->start_ns, outer->start_ns);
    EXPECT_LE(inner->end_ns, outer->end_ns);
    EXPECT_EQ(obs::TraceRecorder::global().spans_recorded(), 2u);
}

TEST(TraceSpans, CrossThreadFanOutParentsUnderCapturedContext) {
    GlobalTraceGuard guard;
    constexpr unsigned kWorkers = 4;
    obs::TraceContext root_ctx;
    {
        obs::ScopedSpan root("test.fanout");
        root_ctx = root.context();
        std::vector<std::thread> workers;
        workers.reserve(kWorkers);
        for (unsigned t = 0; t < kWorkers; ++t)
            workers.emplace_back([root_ctx] {
                // Pool/worker threads start with no inherited context;
                // the tree arrives only through the explicit parent.
                EXPECT_FALSE(obs::current_trace_context().valid());
                DSSPY_TRACE_SPAN_UNDER("test.shard", root_ctx);
            });
        for (std::thread& w : workers) w.join();
    }

    const std::vector<obs::SpanRecord> spans =
        obs::TraceRecorder::global().snapshot();
    ASSERT_EQ(spans.size(), kWorkers + 1);
    const obs::SpanRecord* root = find_span(spans, "test.fanout");
    ASSERT_NE(root, nullptr);
    std::set<std::uint32_t> shard_threads;
    for (const obs::SpanRecord& rec : spans) {
        if (rec.name != std::string_view("test.shard")) continue;
        EXPECT_EQ(rec.parent, root->id);
        EXPECT_EQ(rec.root, root->id);
        EXPECT_NE(rec.thread, root->thread);
        shard_threads.insert(rec.thread);
    }
    EXPECT_EQ(shard_threads.size(), kWorkers);
}

TEST(TraceSpans, ManualSpanBeginsAndEndsOnDifferentThreads) {
    GlobalTraceGuard guard;
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const obs::ManualSpan session = rec.begin_span("test.session");
    ASSERT_TRUE(session.ctx.valid());
    EXPECT_EQ(session.ctx.root_id, session.ctx.span_id);
    {
        // A child under the manual span joins its tree.
        DSSPY_TRACE_SPAN_UNDER("test.session_child", session.ctx);
    }
    std::thread finisher(
        [&rec, session] { rec.end_span(session, "state=finished"); });
    finisher.join();

    const std::vector<obs::SpanRecord> spans = rec.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    const obs::SpanRecord* root = find_span(spans, "test.session");
    const obs::SpanRecord* child = find_span(spans, "test.session_child");
    ASSERT_NE(root, nullptr);
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(root->id, session.ctx.span_id);
    EXPECT_EQ(root->parent, 0u);
    EXPECT_EQ(root->annotations, "state=finished");
    EXPECT_GE(root->end_ns, root->start_ns);
    EXPECT_EQ(child->parent, root->id);
    EXPECT_EQ(child->root, root->id);
}

TEST(TraceSpans, SpanCapDropsPastCapAndCounts) {
    GlobalTraceGuard guard;
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    rec.set_span_cap(4);
    for (int i = 0; i < 10; ++i) {
        obs::ScopedSpan span("test.capped");
    }
    EXPECT_EQ(rec.snapshot().size(), 4u);
    EXPECT_EQ(rec.spans_recorded(), 4u);
    EXPECT_EQ(rec.spans_dropped(), 6u);
}

TEST(TraceSpans, SlowOpThresholdCountsOnlySlowSpans) {
    GlobalTraceGuard guard;
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    rec.set_slow_op_threshold_ns(1'000'000);  // 1 ms
    {
        obs::ScopedSpan slow("test.slow");
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(rec.slow_ops(), 1u);
    {
        obs::ScopedSpan fast("test.fast");
    }
    EXPECT_EQ(rec.slow_ops(), 1u) << "a sub-threshold span was logged";
    EXPECT_EQ(rec.snapshot().size(), 2u);
}

TEST(TraceSpans, OpenSpanViewTracksDepthAndEarliestStart) {
    GlobalTraceGuard guard;
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    {
        obs::ScopedSpan outer("test.open_outer");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        obs::ScopedSpan inner("test.open_inner");
        const obs::OpenSpanInfo info = rec.slowest_open_span();
        EXPECT_EQ(info.depth, 2u);
        ASSERT_NE(info.name, nullptr);
        EXPECT_STREQ(info.name, "test.open_outer");
        EXPECT_NE(info.start_ns, 0u);
    }
    const obs::OpenSpanInfo after = rec.slowest_open_span();
    EXPECT_EQ(after.depth, 0u);
    EXPECT_EQ(after.name, nullptr);
}

TEST(TraceSpans, ConcurrentWritersWithLiveSnapshotReaders) {
    GlobalTraceGuard guard;
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    constexpr unsigned kThreads = 8;
    constexpr unsigned kSpansPerThread = 1000;

    // A live reader races the writers the whole time, like the serve
    // daemon's /tenants/<id>/trace endpoint does against stream threads.
    std::atomic<bool> stop{false};
    std::thread reader([&rec, &stop] {
        while (!stop.load(std::memory_order_acquire)) {
            const std::vector<obs::SpanRecord> live = rec.snapshot();
            for (const obs::SpanRecord& span : live)
                ASSERT_NE(span.id, 0u);
            (void)rec.slowest_open_span();
        }
    });
    {
        std::vector<std::thread> writers;
        writers.reserve(kThreads);
        for (unsigned t = 0; t < kThreads; ++t)
            writers.emplace_back([] {
                for (unsigned i = 0; i < kSpansPerThread; ++i) {
                    obs::ScopedSpan outer("test.mt_outer");
                    obs::ScopedSpan inner("test.mt_inner");
                }
            });
        for (std::thread& w : writers) w.join();
    }
    stop.store(true, std::memory_order_release);
    reader.join();

    const std::vector<obs::SpanRecord> spans = rec.snapshot();
    ASSERT_EQ(spans.size(), kThreads * kSpansPerThread * 2);
    std::map<obs::SpanId, const obs::SpanRecord*> by_id;
    for (const obs::SpanRecord& rec_span : spans) {
        EXPECT_TRUE(by_id.emplace(rec_span.id, &rec_span).second)
            << "duplicate span id " << rec_span.id;
    }
    for (const obs::SpanRecord& span : spans) {
        if (span.name == std::string_view("test.mt_outer")) {
            EXPECT_EQ(span.parent, 0u);
            EXPECT_EQ(span.root, span.id);
            continue;
        }
        // Every inner nests under an outer on the same thread.
        const auto parent = by_id.find(span.parent);
        ASSERT_NE(parent, by_id.end());
        EXPECT_EQ(parent->second->name, std::string_view("test.mt_outer"));
        EXPECT_EQ(parent->second->thread, span.thread);
        EXPECT_EQ(span.root, parent->second->id);
    }
}

// --- exporters ----------------------------------------------------------

TEST(TraceExport, ChromeJsonIsStructurallyValidAndDeterministic) {
    GlobalTraceGuard guard;
    {
        obs::ScopedSpan root("test.export_root");
        root.annotate("k", "v\"w\\q");
        const obs::TraceContext ctx = root.context();
        std::thread worker([ctx] {
            DSSPY_TRACE_SPAN_UNDER("test.export_shard", ctx);
        });
        worker.join();
    }

    const std::vector<obs::SpanRecord> spans =
        obs::TraceRecorder::global().snapshot();
    std::ostringstream os;
    obs::write_trace_json(os, spans);
    const std::string doc = os.str();

    EXPECT_TRUE(json_valid(doc)) << doc;
    EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    // Two spans on two threads: 2 complete events + 2 thread-name
    // metadata events, each thread rendered as its own labeled track.
    EXPECT_EQ(count_substr(doc, "\"ph\": \"X\""), 2u);
    EXPECT_EQ(count_substr(doc, "\"ph\": \"M\""), 2u);
    EXPECT_EQ(count_substr(doc, "\"thread_name\""), 2u);
    // Annotations with quotes and backslashes survive, escaped.
    EXPECT_NE(doc.find("\"annotations\": \"k=v\\\"w\\\\q\""),
              std::string::npos)
        << doc;

    // Equal snapshots export byte-identical documents.
    std::ostringstream again;
    obs::write_trace_json(again, spans);
    EXPECT_EQ(doc, again.str());

    // The file path agrees with the stream path.
    const std::string path = testing::TempDir() + "trace_obs_export.json";
    ASSERT_TRUE(obs::write_trace_json_file(path, spans));
    std::ifstream in(path, std::ios::binary);
    std::ostringstream file_body;
    file_body << in.rdbuf();
    EXPECT_EQ(file_body.str(), doc);
}

TEST(TraceExport, EmptySnapshotStillExportsValidJson) {
    std::ostringstream os;
    obs::write_trace_json(os, {});
    EXPECT_TRUE(json_valid(os.str())) << os.str();
}

/// Hand-built tree exercising the critical-path estimate:
///
///   root   [100, 200]
///     A    [110, 150]   overlaps B -> one parallel group
///       G  [115, 145]
///     B    [120, 155]
///     C    [160, 180]   sequential
///
/// Group {A, B}: union 45 ns, longest member critical path 40 ns (A's
/// time outside G plus G).  C contributes its full 20 ns.  Root outside
/// children: 100 - 45 - 20 = 35.  Critical path = 35 + 40 + 20 = 95.
std::vector<obs::SpanRecord> synthetic_tree() {
    auto span = [](obs::SpanId id, obs::SpanId parent, obs::SpanId root,
                   const char* name, std::uint64_t start,
                   std::uint64_t end) {
        obs::SpanRecord rec;
        rec.id = id;
        rec.parent = parent;
        rec.root = root;
        rec.thread = 1;
        rec.name = name;
        rec.start_ns = start;
        rec.end_ns = end;
        return rec;
    };
    return {
        span(1, 0, 1, "root", 100, 200), span(2, 1, 1, "A", 110, 150),
        span(3, 2, 1, "G", 115, 145),    span(4, 1, 1, "B", 120, 155),
        span(5, 1, 1, "C", 160, 180),    span(10, 0, 10, "other", 0, 50),
    };
}

TEST(TraceExport, CriticalPathCollapsesParallelSiblingGroups) {
    const std::vector<obs::SpanRecord> spans = synthetic_tree();
    EXPECT_EQ(obs::critical_path_ns(spans, 1), 95u);
    EXPECT_EQ(obs::critical_path_ns(spans, 10), 50u);  // leaf root
    EXPECT_EQ(obs::critical_path_ns(spans, 999), 0u);  // absent root
}

TEST(TraceExport, SpansForRootFiltersToOneTree) {
    const std::vector<obs::SpanRecord> spans = synthetic_tree();
    const std::vector<obs::SpanRecord> tree = obs::spans_for_root(spans, 1);
    ASSERT_EQ(tree.size(), 5u);
    for (const obs::SpanRecord& rec : tree) EXPECT_EQ(rec.root, 1u);
    EXPECT_EQ(obs::spans_for_root(spans, 10).size(), 1u);
    EXPECT_TRUE(obs::spans_for_root(spans, 999).empty());
}

TEST(TraceExport, SummaryReportsRootsAndAggregates) {
    std::ostringstream os;
    obs::write_trace_summary(os, synthetic_tree());
    const std::string text = os.str();
    EXPECT_NE(text.find("6 spans across 1 threads"), std::string::npos)
        << text;
    EXPECT_NE(text.find("top spans by duration:"), std::string::npos);
    EXPECT_NE(text.find("per-name aggregates"), std::string::npos);
    // Both roots appear with wall and critical-path figures (ns -> ms).
    EXPECT_NE(text.find("root (span 1): 0.000 ms wall, 0.000 ms critical"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("other (span 10)"), std::string::npos);
}

// --- pipeline wiring ----------------------------------------------------

std::string record_app_trace() {
    const apps::AppInfo* app = apps::find_app("WordWheelSolver");
    EXPECT_NE(app, nullptr);
    runtime::ProfilingSession session;
    app->run_sequential(&session);
    session.stop();
    const std::string path = testing::TempDir() + "trace_obs_run.csv";
    EXPECT_TRUE(runtime::write_trace_file(path, session,
                                          runtime::TraceFormat::Csv));
    return path;
}

pipeline::RunPlan analyze_plan(const std::string& trace_path) {
    pipeline::RunPlan plan;
    plan.input = pipeline::InputKind::TraceFile;
    plan.target = trace_path;
    plan.outputs.report = true;
    return plan;
}

TEST(TracePipeline, AnalyzeRunWritesLoadableSpanTree) {
    const std::string trace_path = record_app_trace();
    GlobalTraceGuard guard;

    pipeline::RunPlan plan = analyze_plan(trace_path);
    plan.outputs.trace_spans_out =
        testing::TempDir() + "trace_obs_spans.json";
    std::ostringstream out;
    std::ostringstream err;
    const pipeline::PipelineRunner runner;
    const pipeline::RunOutcome outcome = runner.run(plan, out, err);
    ASSERT_EQ(outcome.exit_code, pipeline::kExitOk) << err.str();
    EXPECT_NE(err.str().find("Wrote trace spans to"), std::string::npos)
        << err.str();

    std::ifstream in(plan.outputs.trace_spans_out, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream body;
    body << in.rdbuf();
    const std::string doc = body.str();
    EXPECT_TRUE(json_valid(doc)) << doc;
    // The run's root span is present, annotated with the target, and
    // every event is a complete or metadata event.
    EXPECT_NE(doc.find("\"name\": \"run\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("target=" + trace_path), std::string::npos);
    EXPECT_GE(count_substr(doc, "\"ph\": \"X\""), 1u);
    EXPECT_GE(count_substr(doc, "\"ph\": \"M\""), 1u);
    EXPECT_EQ(count_substr(doc, "\"ph\": "),
              count_substr(doc, "\"ph\": \"X\"") +
                  count_substr(doc, "\"ph\": \"M\""));

    // The root "run" span parents the whole tree: exactly one root.
    const std::vector<obs::SpanRecord> spans =
        obs::TraceRecorder::global().snapshot();
    std::size_t roots = 0;
    for (const obs::SpanRecord& rec : spans)
        if (rec.parent == 0) ++roots;
    EXPECT_EQ(roots, 1u);
}

TEST(TracePipeline, ReportsAreByteIdenticalWithTracingOnAndOff) {
    const std::string trace_path = record_app_trace();
    const pipeline::RunPlan plan = analyze_plan(trace_path);
    const pipeline::PipelineRunner runner;

    obs::TraceRecorder::global().set_enabled(false);
    obs::TraceRecorder::global().reset();
    std::ostringstream off_out;
    std::ostringstream off_err;
    ASSERT_EQ(runner.run(plan, off_out, off_err).exit_code,
              pipeline::kExitOk);

    std::string on_text;
    {
        GlobalTraceGuard guard;
        std::ostringstream on_out;
        std::ostringstream on_err;
        ASSERT_EQ(runner.run(plan, on_out, on_err).exit_code,
                  pipeline::kExitOk);
        EXPECT_GT(obs::TraceRecorder::global().spans_recorded(), 0u);
        on_text = on_out.str();
    }
    EXPECT_EQ(off_out.str(), on_text)
        << "enabling span tracing changed an analysis report";
}

}  // namespace
