// The adaptive container layer: hysteresis controller damping, strategy
// adoption, correctness differentials against the plain containers, zero
// verdict divergence against offline analysis, and concurrent readers
// racing a strategy migration (the adapt_tsan target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adapt/adaptive_dictionary.hpp"
#include "adapt/adaptive_list.hpp"
#include "adapt/controller.hpp"
#include "core/dsspy.hpp"
#include "ds/list.hpp"
#include "ds/profiled_list.hpp"
#include "runtime/session.hpp"

namespace {

using dsspy::adapt::AdaptConfig;
using dsspy::adapt::AdaptiveDictionary;
using dsspy::adapt::AdaptiveList;
using dsspy::adapt::AdviceSignal;
using dsspy::adapt::ControllerConfig;
using dsspy::adapt::HysteresisController;
using dsspy::adapt::Strategy;
using dsspy::adapt::strategy_for;
using dsspy::core::AdviceAction;
using dsspy::core::UseCaseKind;

// --- controller unit tests ---------------------------------------------------

TEST(AdaptController, StrategyVocabulary) {
    EXPECT_EQ(strategy_for(AdviceAction::BuildIndex), Strategy::Indexed);
    EXPECT_EQ(strategy_for(AdviceAction::ParallelForAll), Strategy::Parallel);
    EXPECT_EQ(strategy_for(AdviceAction::ParallelInsert), Strategy::Parallel);
    EXPECT_EQ(strategy_for(AdviceAction::ParallelPhases), Strategy::Parallel);
    EXPECT_EQ(strategy_for(AdviceAction::UseDeque), Strategy::DequeBacked);
    EXPECT_EQ(strategy_for(AdviceAction::ParallelContainer),
              Strategy::DequeBacked);
    // Source-level advice has no container-side remedy.
    EXPECT_EQ(strategy_for(AdviceAction::UseStack), Strategy::Sequential);
    EXPECT_EQ(strategy_for(AdviceAction::DropWrites), Strategy::Sequential);
    EXPECT_EQ(dsspy::adapt::strategy_name(Strategy::Indexed), "Indexed");
}

TEST(AdaptController, ScoreOfCountSentinelIsZero) {
    HysteresisController ctl;
    const AdviceSignal fs{AdviceAction::BuildIndex, 1.0};
    ctl.observe(&fs, 1, 100, 400);
    EXPECT_GT(ctl.score(AdviceAction::BuildIndex), 0.0);
    // The "no action" sentinel must not read past the score array.
    EXPECT_EQ(ctl.score(AdviceAction::Count), 0.0);
}

TEST(AdaptController, ColdContainerAdoptsFirstVerdictQuickly) {
    HysteresisController ctl;
    const AdviceSignal fs{AdviceAction::BuildIndex, 0.9};
    // One observation is below the enter threshold (EWMA), a couple more
    // cross it; no dwell gate applies before the first switch.
    Strategy s = Strategy::Sequential;
    std::size_t rounds = 0;
    while (s == Strategy::Sequential && rounds < 10) {
        s = ctl.observe(&fs, 1, /*size=*/10'000, /*ops_delta=*/8);
        ++rounds;
    }
    EXPECT_EQ(s, Strategy::Indexed);
    EXPECT_LE(rounds, 3u);  // 0.4*0.9 = 0.36, then 0.576 >= 0.5.
    EXPECT_EQ(ctl.switch_count(), 1u);
}

TEST(AdaptController, OneOutlierVerdictDoesNotFlip) {
    HysteresisController ctl;
    const AdviceSignal fs{AdviceAction::BuildIndex, 1.0};
    for (int i = 0; i < 6; ++i) ctl.observe(&fs, 1, 100, 400);
    ASSERT_EQ(ctl.current(), Strategy::Indexed);
    // A single reclassification with no verdict at all: the incumbent
    // score decays but stays above the exit band.
    ctl.observe(nullptr, 0, 100, 400);
    EXPECT_EQ(ctl.current(), Strategy::Indexed);
    EXPECT_EQ(ctl.switch_count(), 1u);
}

TEST(AdaptController, FlappingVerdictsStayBounded) {
    HysteresisController ctl;
    const AdviceSignal fs{AdviceAction::BuildIndex, 0.8};
    const AdviceSignal deque{AdviceAction::UseDeque, 0.8};
    // 200 reclassifications alternating between two contradictory
    // verdicts every round.  Raw acting would switch ~200 times; the EWMA
    // keeps both scores in the middle band and the dual thresholds keep
    // the incumbent.
    for (int i = 0; i < 200; ++i)
        ctl.observe(i % 2 == 0 ? &fs : &deque, 1, 1'000, 300);
    EXPECT_LE(ctl.switch_count(), 3u);
}

TEST(AdaptController, PhaseChangeSwitchesAtMostThreeTimes) {
    // The closed-loop bound: insert-heavy -> search-heavy -> insert-heavy
    // -> search-heavy, 25 reclassifications × 40 ops per phase.  The
    // escalating dwell (256, 512, 1024, 2048 ...) lets the controller
    // follow the first phase changes but suppresses the last one: at most
    // 3 switches for 4 phases instead of chasing every one.
    ControllerConfig config;
    config.switch_cost_factor = 0.0;  // Isolate the dwell escalation.
    HysteresisController ctl(config);
    const AdviceSignal li{AdviceAction::ParallelInsert, 0.9};
    const AdviceSignal fs{AdviceAction::BuildIndex, 0.9};
    for (int phase = 0; phase < 4; ++phase) {
        const AdviceSignal& sig = phase % 2 == 0 ? li : fs;
        for (int i = 0; i < 25; ++i) ctl.observe(&sig, 1, 5'000, 40);
    }
    EXPECT_GE(ctl.switch_count(), 1u);
    EXPECT_LE(ctl.switch_count(), 3u);
    EXPECT_GT(ctl.suppressed_count(), 0u);
}

TEST(AdaptController, DwellGateSuppressesEagerSecondSwitch) {
    ControllerConfig config;
    config.min_dwell_ops = 1'000;
    HysteresisController ctl(config);
    const AdviceSignal fs{AdviceAction::BuildIndex, 1.0};
    for (int i = 0; i < 4; ++i) ctl.observe(&fs, 1, 10, 10);
    ASSERT_EQ(ctl.current(), Strategy::Indexed);
    // The verdict flips to deque traffic immediately; too few operations
    // have passed to amortize another migration.
    const AdviceSignal deque{AdviceAction::UseDeque, 1.0};
    for (int i = 0; i < 8; ++i) ctl.observe(&deque, 1, 10, 10);
    EXPECT_EQ(ctl.current(), Strategy::Indexed);
    EXPECT_GT(ctl.suppressed_count(), 0u);
    // After the dwell, the sideways switch is allowed.
    for (int i = 0; i < 8; ++i) ctl.observe(&deque, 1, 10, 500);
    EXPECT_EQ(ctl.current(), Strategy::DequeBacked);
}

TEST(AdaptController, RetreatsToSequentialWhenVerdictFades) {
    HysteresisController ctl;
    const AdviceSignal fs{AdviceAction::BuildIndex, 1.0};
    for (int i = 0; i < 5; ++i) ctl.observe(&fs, 1, 100, 400);
    ASSERT_EQ(ctl.current(), Strategy::Indexed);
    for (int i = 0; i < 20; ++i) ctl.observe(nullptr, 0, 100, 400);
    EXPECT_EQ(ctl.current(), Strategy::Sequential);
    EXPECT_EQ(ctl.switch_count(), 2u);
}

// --- AdaptiveList: strategy adoption -----------------------------------------

/// Small intervals/dwell so unit-test-sized workloads cross phases.
AdaptConfig fast_config() {
    AdaptConfig config;
    config.reclassify_interval = 64;
    config.controller.min_dwell_ops = 64;
    config.controller.switch_cost_factor = 0.0;
    return config;
}

TEST(AdaptList, SearchHeavyWorkloadAdoptsIndex) {
    AdaptiveList<int> list(fast_config());
    for (int i = 0; i < 200; ++i) list.add(i * 3);
    // The Frequent-Search shape from the paper apps: sequential point
    // reads (the Read-Forward patterns) interleaved with heavy index_of
    // traffic (the search operations).
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 200; ++i)
            ASSERT_EQ(list.get(static_cast<std::size_t>(i)), i * 3);
        for (int i = 0; i < 200; ++i)
            ASSERT_EQ(list.index_of(i * 3), i);
    }
    EXPECT_EQ(list.strategy(), Strategy::Indexed);
    // Index answers stay correct, including misses and duplicates.
    EXPECT_EQ(list.index_of(1), -1);
    list.add(0);  // Duplicate of the first element.
    EXPECT_EQ(list.index_of(0), 0);  // First occurrence, like ds::List.
}

TEST(AdaptList, FrontTrafficAdoptsDeque) {
    AdaptiveList<int> list(fast_config());
    for (int i = 0; i < 600; ++i) {
        list.insert(0, i);
        if (i % 2 == 1) list.remove_at(list.count() - 1);
    }
    EXPECT_EQ(list.strategy(), Strategy::DequeBacked);
    // Order must survive the migration: inserts at the front mean the
    // newest odd-survivor ordering is descending from the front.
    ASSERT_GT(list.count(), 0u);
    EXPECT_EQ(list.get(0), 599);
}

TEST(AdaptList, WholeReadsAdoptParallelTraversal) {
    AdaptiveList<std::int64_t> list(fast_config());
    for (int i = 0; i < 4'096; ++i) list.add(i);
    std::int64_t expected = 0;
    for (int i = 0; i < 4'096; ++i) expected += i;
    for (int round = 0; round < 40; ++round) {
        std::atomic<std::int64_t> sum{0};
        list.for_each([&sum](std::int64_t v) {
            sum.fetch_add(v, std::memory_order_relaxed);
        });
        ASSERT_EQ(sum.load(), expected);
    }
    EXPECT_EQ(list.strategy(), Strategy::Parallel);
}

TEST(AdaptList, PhaseChangeWorkloadSwitchesAtMostThreeTimes) {
    AdaptiveList<int> list(fast_config());
    for (int phase = 0; phase < 4; ++phase) {
        if (phase % 2 == 0) {
            for (int i = 0; i < 2'000; ++i) list.add(phase * 10'000 + i);
        } else {
            for (int i = 0; i < 2'000; ++i)
                (void)list.index_of(i % 977);
        }
    }
    EXPECT_LE(list.switch_count(), 3u);
}

// --- AdaptiveList: correctness differential ----------------------------------

TEST(AdaptList, DifferentialAgainstPlainListAcrossStrategies) {
    AdaptiveList<int> adaptive(fast_config());
    dsspy::ds::List<int> plain;
    std::uint64_t rng = 0x2545F4914F6CDD1Dull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int i = 0; i < 6'000; ++i) {
        const auto r = next();
        const int value = static_cast<int>(r % 997);
        switch (r % 10) {
            case 0:
            case 1:
            case 2:
                adaptive.add(value);
                plain.add(value);
                break;
            case 3:
                adaptive.insert(0, value);
                plain.insert(0, value);
                break;
            case 4:
                if (plain.count() > 0) {
                    const std::size_t idx = r % plain.count();
                    adaptive.remove_at(idx);
                    plain.remove_at(idx);
                }
                break;
            case 5:
                if (plain.count() > 0) {
                    const std::size_t idx = r % plain.count();
                    adaptive.set(idx, value);
                    plain.set(idx, value);
                }
                break;
            case 6:
                ASSERT_EQ(adaptive.index_of(value), plain.index_of(value));
                break;
            case 7:
                ASSERT_EQ(adaptive.remove(value), plain.remove(value));
                break;
            default:
                if (plain.count() > 0) {
                    const std::size_t idx = r % plain.count();
                    ASSERT_EQ(adaptive.get(idx), plain.get(idx));
                }
                break;
        }
    }
    ASSERT_EQ(adaptive.count(), plain.count());
    for (std::size_t i = 0; i < plain.count(); ++i)
        ASSERT_EQ(adaptive.get(i), plain.get(i));
}

// --- AdaptiveList: zero verdict divergence -----------------------------------

/// One workload, one container API — driven identically against a
/// ProfiledList (offline analysis) and an AdaptiveList (embedded
/// analyzer).  Mixes inserts, point reads, searches, and traversals so
/// several detectors are exercised.
template <typename ListT>
void drive_verdict_workload(ListT& list) {
    for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 300; ++i) list.add(round * 1'000 + i);
        for (int i = 0; i < 400; ++i)
            (void)list.index_of(i % 1'700);
        long sum = 0;
        list.for_each([&sum](long v) { sum += v; });
        ASSERT_GT(sum, 0);
    }
}

std::multiset<UseCaseKind> verdict_kinds(
    const std::vector<dsspy::core::UseCase>& use_cases) {
    std::multiset<UseCaseKind> kinds;
    for (const auto& uc : use_cases) kinds.insert(uc.kind);
    return kinds;
}

TEST(AdaptList, VerdictsMatchOfflineAnalysisOfSameStream) {
    // Offline: the instrumented container records into a session, the
    // post-mortem engine classifies afterwards.
    dsspy::runtime::ProfilingSession session;
    dsspy::ds::ProfiledList<long> profiled(&session, {"Adapt", "Drive", 1});
    drive_verdict_workload(profiled);
    session.stop();
    const dsspy::core::AnalysisResult offline =
        dsspy::core::Dsspy{}.analyze(session);
    std::multiset<UseCaseKind> offline_kinds;
    for (const auto& inst : offline.instances())
        for (const auto& uc : inst.use_cases)
            offline_kinds.insert(uc.kind);

    // Closed loop: the adaptive container folds the same access stream
    // into its embedded analyzer as it executes.
    AdaptiveList<long> adaptive(fast_config());
    drive_verdict_workload(adaptive);

    EXPECT_EQ(verdict_kinds(adaptive.verdicts()), offline_kinds)
        << "adaptive container verdicts diverged from offline analysis";
    EXPECT_GT(adaptive.events_folded(), 0u);
}

// --- AdaptiveList: concurrent readers during switches (adapt_tsan) -----------

TEST(AdaptConcurrency, ReadersRaceStrategyMigrations) {
    AdaptConfig config = fast_config();
    config.reclassify_interval = 32;  // Migrate as often as possible.
    AdaptiveList<int> list(config);
    for (int i = 0; i < 512; ++i) list.add(i);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::vector<std::jthread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&list, &stop, &reads] {
            std::uint64_t local = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const std::size_t n = list.count();
                if (n > 0) (void)list.get(local % n);
                (void)list.index_of(static_cast<int>(local % 700));
                long sum = 0;
                list.for_each([&sum](int v) { sum += v; });
                ++local;
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    // The writer alternates phases to force migrations while the readers
    // hammer the container; it keeps mutating until every reader has made
    // real progress, so reads genuinely race migrations.
    for (int phase = 0; reads.load(std::memory_order_relaxed) < 200 ||
                        phase < 6; ++phase) {
        if (phase % 2 == 0) {
            for (int i = 0; i < 400; ++i) list.insert(0, 512 + i);
        } else {
            for (int i = 0; i < 400; ++i)
                if (list.count() > 256) list.remove_at(0);
        }
    }
    stop.store(true);
    readers.clear();
    EXPECT_GE(reads.load(), 200u);
    EXPECT_GT(list.count(), 0u);
}

TEST(AdaptConcurrency, ConcurrentRemovesByValueStayInBounds) {
    // remove(value) must search and erase in one critical section: with a
    // released lock between them, concurrent removers see stale indices
    // and erase out of bounds once the container shrinks underneath them
    // (the adapt_tsan sweep runs this under TSan).
    AdaptConfig config = fast_config();
    config.reclassify_interval = 32;
    AdaptiveList<int> list(config);
    constexpr int kValues = 256;
    for (int round = 0; round < 4; ++round)
        for (int i = 0; i < kValues; ++i) list.add(i);
    std::atomic<int> removed{0};
    {
        std::vector<std::jthread> removers;
        for (int t = 0; t < 4; ++t) {
            removers.emplace_back([&list, &removed, t] {
                // All threads chase the same values, so most races are
                // search-hit vs concurrent-shrink.
                for (int i = 0; i < kValues; ++i)
                    if (list.remove((i + t * 64) % kValues))
                        removed.fetch_add(1, std::memory_order_relaxed);
            });
        }
    }
    // Every successful remove erased exactly one element.
    EXPECT_EQ(list.count() + static_cast<std::size_t>(removed.load()),
              static_cast<std::size_t>(4 * kValues));
}

// --- AdaptiveDictionary ------------------------------------------------------

TEST(AdaptDictionary, BasicMapSemantics) {
    AdaptiveDictionary<std::string, int> dict;
    dict.set("one", 1);
    dict.set("two", 2);
    dict.set("one", 10);  // Overwrite keeps the entry's position.
    EXPECT_EQ(dict.count(), 2u);
    EXPECT_EQ(dict.get("one"), 10);
    int out = 0;
    EXPECT_TRUE(dict.try_get("two", out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(dict.try_get("three", out));
    EXPECT_TRUE(dict.contains_key("one"));
    EXPECT_THROW((void)dict.get("three"), std::out_of_range);
    EXPECT_TRUE(dict.remove("one"));
    EXPECT_FALSE(dict.remove("one"));
    EXPECT_EQ(dict.count(), 1u);
    dict.clear();
    EXPECT_TRUE(dict.empty());
}

TEST(AdaptDictionary, ForEachPreservesInsertionOrderSequentially) {
    AdaptiveDictionary<int, int> dict;
    for (int i = 0; i < 50; ++i) dict.set(i, i * i);
    std::vector<int> keys;
    dict.for_each([&keys](int k, int) { keys.push_back(k); });
    ASSERT_EQ(keys.size(), 50u);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(keys[static_cast<size_t>(i)], i);
}

TEST(AdaptDictionary, ValueSearchHeavyWorkloadAdoptsReverseIndex) {
    AdaptiveDictionary<int, int> dict(fast_config());
    for (int i = 0; i < 300; ++i) dict.set(i, 100'000 + i);
    // Insertion-order gets give the Read-Forward patterns, find_key gives
    // the search operations — the Frequent-Search shape on the dense
    // entry view.
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 300; ++i)
            ASSERT_EQ(dict.get(i), 100'000 + i);
        for (int i = 0; i < 300; ++i) {
            const auto key = dict.find_key(100'000 + i);
            ASSERT_TRUE(key.has_value());
            ASSERT_EQ(*key, i);
        }
    }
    EXPECT_EQ(dict.strategy(), Strategy::Indexed);
    EXPECT_FALSE(dict.find_key(42).has_value());
    // Mutations keep the reverse index honest.
    dict.set(7, 999'999);
    EXPECT_EQ(dict.find_key(999'999).value_or(-1), 7);
    EXPECT_FALSE(dict.find_key(100'007).has_value());
    dict.remove(7);
    EXPECT_FALSE(dict.find_key(999'999).has_value());
}

TEST(AdaptDictionary, FailedRemovesAreNotFrontDeleteTraffic) {
    // A remove() miss is a failed key lookup, not a front delete; a
    // workload of misses must not synthesize Insert-Delete-Front /
    // Implement-Queue traffic the real access stream never had.
    AdaptiveDictionary<int, int> dict(fast_config());
    for (int i = 0; i < 64; ++i) dict.set(i, i);
    for (int round = 0; round < 40; ++round)
        for (int i = 1'000; i < 1'064; ++i) EXPECT_FALSE(dict.remove(i));
    for (const auto& uc : dict.verdicts()) {
        EXPECT_NE(uc.kind, UseCaseKind::InsertDeleteFront);
        EXPECT_NE(uc.kind, UseCaseKind::ImplementQueue);
    }
    EXPECT_NE(dict.strategy(), Strategy::DequeBacked);
}

TEST(AdaptDictionary, ReverseIndexStaysExactUnderDuplicateChurn) {
    // Exercises the incremental reverse-index maintenance: overwrites and
    // removals that hit (and miss) the canonical key of duplicated
    // values, cross-checked against a linear first-key-wins scan.
    AdaptConfig config = fast_config();
    AdaptiveDictionary<int, int> dict(config);
    std::vector<std::pair<int, int>> shadow;  // Insertion-ordered truth.
    auto shadow_find = [&shadow](int value) {
        for (const auto& [k, v] : shadow)
            if (v == value) return std::optional<int>(k);
        return std::optional<int>();
    };
    for (int i = 0; i < 200; ++i) {
        dict.set(i, i % 7);  // Heavily duplicated values.
        shadow.emplace_back(i, i % 7);
    }
    // The Frequent-Search shape: in-order point reads plus heavy
    // find_key traffic until the reverse index is adopted.
    for (int round = 0; round < 3; ++round)
        for (int i = 0; i < 200; ++i) (void)dict.get(i);
    for (int round = 0;
         round < 600 && dict.strategy() != Strategy::Indexed; ++round)
        for (int v = 0; v < 7; ++v) (void)dict.find_key(v);
    ASSERT_EQ(dict.strategy(), Strategy::Indexed);
    std::uint64_t rng = 0x9E3779B97F4A7C15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int i = 0; i < 2'000; ++i) {
        const auto r = next();
        const int key = static_cast<int>(r % 200);
        const int value = static_cast<int>((r >> 8) % 9);
        const auto find_shadow = [&shadow, key] {
            return std::find_if(shadow.begin(), shadow.end(),
                                [key](const auto& e) {
                                    return e.first == key;
                                });
        };
        switch (r % 3) {
            case 0: {  // Overwrite or (re-)insert.
                dict.set(key, value);
                if (auto it = find_shadow(); it != shadow.end())
                    it->second = value;
                else
                    shadow.emplace_back(key, value);
                break;
            }
            case 1: {  // Remove (hit or miss).
                const bool removed = dict.remove(key);
                auto it = find_shadow();
                ASSERT_EQ(removed, it != shadow.end());
                if (it != shadow.end()) shadow.erase(it);
                break;
            }
            default: {  // First-key-wins search on a duplicated value.
                const auto got = dict.find_key(value);
                const auto want = shadow_find(value);
                ASSERT_EQ(got.has_value(), want.has_value());
                if (want) {
                    ASSERT_EQ(*got, *want);
                }
                break;
            }
        }
    }
    ASSERT_EQ(dict.count(), shadow.size());
}

TEST(AdaptList, SearchIndexStaysExactUnderDuplicateChurn) {
    // Same idea for the list's value -> first-index map: set/insert/
    // remove_at/remove churn over duplicated values after the Indexed
    // strategy is adopted, cross-checked against ds::List.
    AdaptiveList<int> adaptive(fast_config());
    dsspy::ds::List<int> plain;
    for (int i = 0; i < 300; ++i) {
        adaptive.add(i % 11);
        plain.add(i % 11);
    }
    for (int round = 0; round < 3; ++round)
        for (std::size_t i = 0; i < plain.count(); ++i)
            (void)adaptive.get(i);
    for (int round = 0;
         round < 600 && adaptive.strategy() != Strategy::Indexed; ++round)
        for (int v = 0; v < 11; ++v) (void)adaptive.index_of(v);
    ASSERT_EQ(adaptive.strategy(), Strategy::Indexed);
    std::uint64_t rng = 0xD1B54A32D192ED03ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int i = 0; i < 4'000; ++i) {
        const auto r = next();
        const int value = static_cast<int>((r >> 8) % 13);
        switch (r % 6) {
            case 0:
                adaptive.set(r % plain.count(), value);
                plain.set(r % plain.count(), value);
                break;
            case 1:
                adaptive.insert(r % (plain.count() + 1), value);
                plain.insert(r % (plain.count() + 1), value);
                break;
            case 2:
                adaptive.add(value);
                plain.add(value);
                break;
            case 3:
                adaptive.remove_at(r % plain.count());
                plain.remove_at(r % plain.count());
                break;
            case 4:
                ASSERT_EQ(adaptive.remove(value), plain.remove(value));
                break;
            default:
                ASSERT_EQ(adaptive.index_of(value), plain.index_of(value));
                break;
        }
        ASSERT_GT(plain.count(), 0u);  // Workload never empties the list.
    }
    ASSERT_EQ(adaptive.count(), plain.count());
    for (int v = 0; v < 13; ++v)
        ASSERT_EQ(adaptive.index_of(v), plain.index_of(v));
}

TEST(AdaptDictionary, FindKeyReturnsFirstInsertedAmongDuplicateValues) {
    AdaptiveDictionary<int, int> dict(fast_config());
    for (int i = 0; i < 40; ++i) dict.set(i, i == 5 || i == 9 ? 77 : i);
    // Sequential scan and reverse index must agree on first-key-wins.
    EXPECT_EQ(dict.find_key(77).value_or(-1), 5);
    // A few in-order scans give the read patterns, then search-dominated
    // traffic drives Frequent-Search (not Frequent-Long-Read) so the
    // reverse index is the strategy that wins.
    for (int round = 0; round < 3; ++round)
        for (int i = 0; i < 40; ++i) (void)dict.get(i);
    for (int round = 0; round < 75; ++round)
        for (int i = 0; i < 40; ++i) (void)dict.find_key(77);
    ASSERT_EQ(dict.strategy(), Strategy::Indexed);
    EXPECT_EQ(dict.find_key(77).value_or(-1), 5);
}

}  // namespace
