// Pipeline service layer tests (DESIGN.md §10).
//
// The load-bearing suites are differential: the PipelineRunner must
// reproduce, byte for byte, what the pre-pipeline CLI wired by hand —
// session capture, analysis, and the exact emission order of every
// report.  The seed wiring is replicated here (against the same core
// emitters) and compared against RunPlan-driven runs for every
// evaluation app, a corpus program, and both trace engines.
//
// PipelineBatch.* additionally pins the concurrency contract: N jobs run
// through the batch driver produce per-job output identical to the same
// plans run sequentially, with genuinely overlapping execution.  The
// `batch_tsan` ctest entry re-runs that suite under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/dsspy.hpp"
#include "core/export.hpp"
#include "core/incremental.hpp"
#include "core/report.hpp"
#include "core/transform_plan.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/run_plan.hpp"
#include "pipeline/runner.hpp"
#include "runtime/session.hpp"
#include "runtime/trace_io.hpp"
#include "support/table.hpp"

namespace {

using namespace dsspy;

struct Text {
    std::string out;
    std::string err;
    int exit_code = 0;
};

/// Execute a plan through the pipeline layer, capturing both streams.
Text run_plan(const pipeline::RunPlan& plan) {
    std::ostringstream out;
    std::ostringstream err;
    const pipeline::PipelineRunner runner;
    const pipeline::RunOutcome outcome = runner.run(plan, out, err);
    return {std::move(out).str(), std::move(err).str(), outcome.exit_code};
}

/// The pre-pipeline CLI's post-mortem emitter, replicated verbatim: the
/// differential tests compare the runner against this exact order.
template <typename Result>
void seed_emit(const pipeline::OutputSelection& o, const Result& analysis,
               std::ostream& out, std::ostream& err) {
    if (o.summary) {
        core::print_instance_summary(out, analysis);
        out << '\n';
    }
    if (o.report) {
        core::print_use_case_report(out, analysis);
        out << "Search space reduction: "
            << support::Table::pct(analysis.search_space_reduction()) << " ("
            << analysis.flagged_instances() << " of "
            << analysis.list_array_instances()
            << " list/array instances flagged)\n";
    }
    if constexpr (std::is_same_v<Result, core::AnalysisResult>) {
        if (o.plan) {
            const core::TransformPlan plan =
                core::plan_transformations(analysis);
            core::print_transform_plan(out, plan);
        }
        if (o.json) core::write_analysis_json(out, analysis);
    }
    if (o.csv_usecases) core::write_use_cases_csv(out, analysis);
    if (o.csv_instances) core::write_instances_csv(out, analysis);
    if constexpr (std::is_same_v<Result, core::AnalysisResult>) {
        if (o.csv_patterns) core::write_patterns_csv(out, analysis);
    }
    (void)err;
}

/// Seed-style `dsspy run <app>`: plain session, workload, post-mortem
/// analysis (no pool — the seed CLI analyzed single-threaded; identical
/// output on the runner's pooled path is part of what the tests pin).
Text seed_run_app(const apps::AppInfo& app,
                  const pipeline::OutputSelection& outputs) {
    std::ostringstream out;
    std::ostringstream err;
    runtime::ProfilingSession session;
    const double checksum = app.run_sequential(&session).checksum;
    session.stop();
    err << app.name << ": checksum " << checksum << ", "
        << session.store().total_events() << " events";
    if (session.orphan_events() > 0)
        err << ", " << session.orphan_events() << " orphan";
    err << '\n';
    const core::Dsspy analyzer{core::DetectorConfig{}};
    const core::AnalysisResult analysis = analyzer.analyze(session);
    seed_emit(outputs, analysis, out, err);
    return {std::move(out).str(), std::move(err).str(), 0};
}

/// Seed-style `dsspy corpus <program>`.
Text seed_run_corpus(const corpus::ProgramModel& program,
                     const pipeline::OutputSelection& outputs) {
    std::ostringstream out;
    std::ostringstream err;
    runtime::ProfilingSession session;
    if (program.in_eval23)
        corpus::run_eval_workload(program, &session);
    else
        corpus::run_study15_workload(program, &session);
    session.stop();
    if (session.orphan_events() > 0)
        err << program.name << ": " << session.orphan_events()
            << " orphan events\n";
    const core::Dsspy analyzer{core::DetectorConfig{}};
    const core::AnalysisResult analysis = analyzer.analyze(session);
    seed_emit(outputs, analysis, out, err);
    return {std::move(out).str(), std::move(err).str(), 0};
}

pipeline::RunPlan app_plan(const std::string& name,
                           pipeline::OutputSelection outputs) {
    pipeline::RunPlan plan;
    plan.input = pipeline::InputKind::App;
    plan.target = name;
    plan.outputs = outputs;
    return plan;
}

pipeline::OutputSelection report_only() {
    pipeline::OutputSelection o;
    o.report = true;
    return o;
}

/// Record one app run to a trace file; returns the path.
std::string record_trace(const std::string& app_name,
                         runtime::TraceFormat format) {
    const apps::AppInfo* app = apps::find_app(app_name);
    EXPECT_NE(app, nullptr);
    runtime::ProfilingSession session;
    app->run_sequential(&session);
    session.stop();
    const std::string path =
        ::testing::TempDir() + "pipeline_trace" +
        (format == runtime::TraceFormat::Binary ? ".dst" : ".csv");
    EXPECT_TRUE(runtime::write_trace_file(path, session, format));
    return path;
}

// ---------------------------------------------------------------------------
// Differential: RunPlan-driven runs vs seed-style hand wiring.

TEST(PipelineDifferential, EveryAppReportMatchesSeedWiring) {
    for (const apps::AppInfo& app : apps::evaluation_apps()) {
        const Text seed = seed_run_app(app, report_only());
        const Text piped = run_plan(app_plan(app.name, report_only()));
        EXPECT_EQ(piped.exit_code, 0) << app.name;
        EXPECT_EQ(piped.out, seed.out) << app.name;
        EXPECT_EQ(piped.err, seed.err) << app.name;
    }
}

TEST(PipelineDifferential, EveryOutputKindMatchesSeedWiring) {
    pipeline::OutputSelection everything;
    everything.summary = true;
    everything.report = true;
    everything.plan = true;
    everything.json = true;
    everything.csv_usecases = true;
    everything.csv_instances = true;
    everything.csv_patterns = true;
    const apps::AppInfo* app = apps::find_app("Mandelbrot");
    ASSERT_NE(app, nullptr);
    const Text seed = seed_run_app(*app, everything);
    const Text piped = run_plan(app_plan(app->name, everything));
    EXPECT_EQ(piped.exit_code, 0);
    EXPECT_EQ(piped.out, seed.out);
    EXPECT_EQ(piped.err, seed.err);
}

TEST(PipelineDifferential, CorpusSampleMatchesSeedWiring) {
    int compared = 0;
    for (const corpus::ProgramModel& program : corpus::all_programs()) {
        if (compared == 3) break;
        ++compared;
        pipeline::OutputSelection outputs = report_only();
        outputs.summary = true;
        const Text seed = seed_run_corpus(program, outputs);
        pipeline::RunPlan plan;
        plan.input = pipeline::InputKind::CorpusProgram;
        plan.target = program.name;
        plan.outputs = outputs;
        const Text piped = run_plan(plan);
        EXPECT_EQ(piped.exit_code, 0) << program.name;
        EXPECT_EQ(piped.out, seed.out) << program.name;
        EXPECT_EQ(piped.err, seed.err) << program.name;
    }
    EXPECT_GT(compared, 0);
}

TEST(PipelineDifferential, TraceIncrementalMatchesSeedStreamWiring) {
    const std::string path =
        record_trace("WordWheelSolver", runtime::TraceFormat::Binary);

    // Seed wiring: stream the file through the incremental analyzer.
    core::IncrementalAnalyzer incremental{core::DetectorConfig{}};
    struct Sink final : runtime::TraceSink {
        explicit Sink(core::IncrementalAnalyzer& a) : analyzer(a) {}
        void on_instance(const runtime::InstanceInfo& info) override {
            instances.push_back(info);
            analyzer.declare_instance(info);
        }
        void on_events(std::span<const runtime::AccessEvent> events) override {
            analyzer.fold(events);
        }
        std::vector<runtime::InstanceInfo> instances;
        core::IncrementalAnalyzer& analyzer;
    } sink{incremental};
    runtime::read_trace_stream_file(path, sink);
    const core::StreamReport report = incremental.finish(sink.instances);
    std::ostringstream seed_out;
    std::ostringstream seed_err;
    pipeline::OutputSelection outputs = report_only();
    outputs.summary = true;
    outputs.csv_usecases = true;
    seed_emit(outputs, report, seed_out, seed_err);

    pipeline::RunPlan plan;
    plan.input = pipeline::InputKind::TraceFile;
    plan.target = path;
    plan.outputs = outputs;
    ASSERT_EQ(plan.resolved_engine(), pipeline::EngineChoice::Incremental);
    const Text piped = run_plan(plan);
    EXPECT_EQ(piped.exit_code, 0);
    EXPECT_EQ(piped.out, seed_out.str());
    EXPECT_EQ(piped.err, seed_err.str());
    std::remove(path.c_str());
}

TEST(PipelineDifferential, TracePostmortemMatchesSeedWiring) {
    const std::string path =
        record_trace("Mandelbrot", runtime::TraceFormat::Csv);

    const runtime::Trace trace = runtime::read_trace_file(path);
    const core::Dsspy analyzer{core::DetectorConfig{}};
    const core::AnalysisResult analysis =
        analyzer.analyze(trace.instances, trace.store);
    pipeline::OutputSelection outputs;
    outputs.report = true;
    outputs.json = true;
    outputs.csv_patterns = true;
    std::ostringstream seed_out;
    std::ostringstream seed_err;
    seed_emit(outputs, analysis, seed_out, seed_err);

    pipeline::RunPlan plan;
    plan.input = pipeline::InputKind::TraceFile;
    plan.target = path;
    plan.outputs = outputs;
    ASSERT_EQ(plan.resolved_engine(), pipeline::EngineChoice::Postmortem);
    const Text piped = run_plan(plan);
    EXPECT_EQ(piped.exit_code, 0);
    EXPECT_EQ(piped.out, seed_out.str());
    EXPECT_EQ(piped.err, seed_err.str());
    std::remove(path.c_str());
}

TEST(PipelineDifferential, LiveIncrementalMatchesPostmortemReport) {
    // The two engines must classify identically on the same workload
    // (engine bit-identity is pinned elsewhere; here: through RunPlans).
    pipeline::RunPlan post = app_plan("WordWheelSolver", report_only());
    pipeline::RunPlan inc = post;
    inc.engine = pipeline::EngineChoice::Incremental;
    const Text a = run_plan(post);
    const Text b = run_plan(inc);
    EXPECT_EQ(a.exit_code, 0);
    EXPECT_EQ(b.exit_code, 0);
    EXPECT_EQ(a.out, b.out);
}

// ---------------------------------------------------------------------------
// Watch plans.

TEST(PipelineWatch, SnapshotsFireAndFinalReportEmits) {
    pipeline::RunPlan plan = app_plan("Mandelbrot", report_only());
    plan.watch = true;
    plan.snapshot_interval_ms = 5;
    int ticks = 0;
    std::uint64_t last_folded = 0;
    std::ostringstream out;
    std::ostringstream err;
    const pipeline::PipelineRunner runner;
    const pipeline::RunOutcome outcome =
        runner.run(plan, out, err, [&](const pipeline::WatchTick& tick) {
            ++ticks;
            EXPECT_GE(tick.events_captured, tick.snapshot.total_instances());
            last_folded = tick.events_folded;
        });
    EXPECT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome.stream.has_value());
    EXPECT_GT(outcome.events, 0u);
    EXPECT_GE(outcome.events, last_folded);
    EXPECT_NE(out.str().find("Use Case"), std::string::npos);
    // Ticks are timing-dependent; zero is possible only if the workload
    // beat the first 5ms interval, which the Mandelbrot render never does.
    EXPECT_GT(ticks, 0);
}

// ---------------------------------------------------------------------------
// Batch driver.

std::vector<pipeline::RunPlan> sample_batch_plans() {
    pipeline::OutputSelection outputs = report_only();
    outputs.summary = true;
    std::vector<pipeline::RunPlan> plans;
    plans.push_back(app_plan("Mandelbrot", outputs));
    plans.push_back(app_plan("WordWheelSolver", outputs));
    plans.push_back(app_plan("Algorithmia", outputs));
    pipeline::RunPlan corpus_plan;
    corpus_plan.input = pipeline::InputKind::CorpusProgram;
    corpus_plan.target = "Contentfinder";
    corpus_plan.outputs = outputs;
    plans.push_back(corpus_plan);
    return plans;
}

TEST(PipelineBatch, ConcurrentJobsMatchSequentialByteForByte) {
    const std::vector<pipeline::RunPlan> plans = sample_batch_plans();
    const pipeline::PipelineRunner runner;

    std::vector<Text> sequential;
    sequential.reserve(plans.size());
    for (const pipeline::RunPlan& plan : plans)
        sequential.push_back(run_plan(plan));

    pipeline::BatchSummary summary;
    const std::vector<pipeline::BatchJobResult> jobs =
        pipeline::run_batch_jobs(runner, plans, 4, summary);

    ASSERT_EQ(jobs.size(), plans.size());
    EXPECT_EQ(summary.exit_code, pipeline::kExitOk);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_GE(summary.max_concurrent, 2u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].outcome.exit_code, sequential[i].exit_code) << i;
        EXPECT_EQ(jobs[i].out_text, sequential[i].out) << i;
        EXPECT_EQ(jobs[i].err_text, sequential[i].err) << i;
    }
}

TEST(PipelineBatch, StdoutIsOrderedConcatenationOfJobOutputs) {
    const std::vector<pipeline::RunPlan> plans = sample_batch_plans();
    const pipeline::PipelineRunner runner;
    std::ostringstream out;
    std::ostringstream err;
    const pipeline::BatchSummary summary =
        pipeline::run_batch(runner, plans, 2, out, err);
    EXPECT_EQ(summary.exit_code, pipeline::kExitOk);
    EXPECT_EQ(summary.jobs, plans.size());

    std::string expected;
    for (const pipeline::RunPlan& plan : plans) expected += run_plan(plan).out;
    EXPECT_EQ(out.str(), expected);
    EXPECT_NE(err.str().find("[batch] job 1/4: Mandelbrot"),
              std::string::npos);
    EXPECT_NE(err.str().find("4 jobs, 0 failed"), std::string::npos);
}

TEST(PipelineBatch, FailedJobPropagatesWithoutPoisoningOthers) {
    std::vector<pipeline::RunPlan> plans;
    plans.push_back(app_plan("Mandelbrot", report_only()));
    pipeline::RunPlan bad;
    bad.input = pipeline::InputKind::TraceFile;
    bad.target = ::testing::TempDir() + "no_such_trace.dst";
    bad.outputs = report_only();
    plans.push_back(bad);

    pipeline::BatchSummary summary;
    const pipeline::PipelineRunner runner;
    const std::vector<pipeline::BatchJobResult> jobs =
        pipeline::run_batch_jobs(runner, plans, 2, summary);
    EXPECT_EQ(summary.exit_code, pipeline::kExitRuntimeError);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(jobs[0].outcome.exit_code, pipeline::kExitOk);
    EXPECT_NE(jobs[0].out_text.find("Use Case"), std::string::npos);
    EXPECT_EQ(jobs[1].outcome.exit_code, pipeline::kExitRuntimeError);
    EXPECT_NE(jobs[1].err_text.find("Cannot read trace"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exit-code and validation conventions.

TEST(PipelineExitCodes, ValidationFailuresExitUsageError) {
    pipeline::RunPlan watch_corpus;
    watch_corpus.input = pipeline::InputKind::CorpusProgram;
    watch_corpus.target = "Contentfinder";
    watch_corpus.watch = true;
    watch_corpus.outputs = report_only();
    EXPECT_EQ(run_plan(watch_corpus).exit_code, pipeline::kExitUsageError);

    pipeline::RunPlan inc_json;
    inc_json.input = pipeline::InputKind::TraceFile;
    inc_json.target = "whatever.dst";
    inc_json.engine = pipeline::EngineChoice::Incremental;
    inc_json.outputs.json = true;
    const Text conflicted = run_plan(inc_json);
    EXPECT_EQ(conflicted.exit_code, pipeline::kExitUsageError);
    EXPECT_NE(conflicted.err.find("need the post-mortem engine"),
              std::string::npos);

    pipeline::RunPlan empty;
    EXPECT_FALSE(pipeline::PipelineRunner::validate(empty).empty());
}

TEST(PipelineExitCodes, RuntimeFailuresExitOne) {
    EXPECT_EQ(run_plan(app_plan("NoSuchApp", report_only())).exit_code,
              pipeline::kExitRuntimeError);

    pipeline::RunPlan missing;
    missing.input = pipeline::InputKind::TraceFile;
    missing.target = ::testing::TempDir() + "definitely_missing.dst";
    missing.outputs = report_only();
    const Text text = run_plan(missing);
    EXPECT_EQ(text.exit_code, pipeline::kExitRuntimeError);
    EXPECT_NE(text.err.find("Cannot read trace"), std::string::npos);
}

TEST(PipelineExitCodes, TraceWriteFailureStillEmitsButExitsOne) {
    pipeline::RunPlan plan = app_plan("WordWheelSolver", report_only());
    plan.trace_out = "/no-such-directory/sub/trace.csv";
    const Text text = run_plan(plan);
    EXPECT_EQ(text.exit_code, pipeline::kExitRuntimeError);
    EXPECT_NE(text.err.find("Failed to write trace to"), std::string::npos);
    EXPECT_NE(text.out.find("Use Case"), std::string::npos);
}

// ---------------------------------------------------------------------------
// --threads plumbing.

TEST(PipelineThreads, ExplicitPoolWidthIsHonored) {
    par::ThreadPool pool(5);
    EXPECT_EQ(pool.thread_count(), 5u);
    par::ThreadPool hw(0);
    EXPECT_GE(hw.thread_count(), 1u);
}

TEST(PipelineThreads, EffectiveDefaultThreadsReflectsThePool) {
    EXPECT_GE(par::ThreadPool::effective_default_threads(), 1u);
    // Once the shared pool exists, the effective width IS its width, and
    // late set_default_threads calls cannot change it.
    const unsigned width = par::ThreadPool::default_pool().thread_count();
    EXPECT_EQ(par::ThreadPool::effective_default_threads(), width);
    par::ThreadPool::set_default_threads(width + 7);
    EXPECT_EQ(par::ThreadPool::effective_default_threads(), width);
    par::ThreadPool::set_default_threads(0);
}

}  // namespace
