// Tests for ParallelList: semantic equivalence with the sequential list on
// both sides of the parallel threshold.
#include <gtest/gtest.h>

#include <string>

#include "parallel/parallel_list.hpp"
#include "support/rng.hpp"

namespace dsspy::par {
namespace {

class ParallelListTest : public ::testing::TestWithParam<std::size_t> {
protected:
    ThreadPool pool_{4};

    /// GetParam() is the element count; the threshold is fixed at 1000, so
    /// small parameters exercise the sequential path and large ones the
    /// parallel path.
    [[nodiscard]] ParallelList<std::int64_t> make_list() {
        ParallelList<std::int64_t> list(pool_, /*parallel_threshold=*/1000);
        support::Rng rng(7);
        for (std::size_t i = 0; i < GetParam(); ++i)
            list.add(static_cast<std::int64_t>(rng.next_below(500)));
        return list;
    }
};

TEST_P(ParallelListTest, IndexOfMatchesSequentialScan) {
    const auto list = make_list();
    for (std::int64_t needle : {0, 123, 499, 777}) {
        std::ptrdiff_t expected = -1;
        for (std::size_t i = 0; i < list.count(); ++i) {
            if (list[i] == needle) {
                expected = static_cast<std::ptrdiff_t>(i);
                break;
            }
        }
        EXPECT_EQ(list.index_of(needle), expected) << needle;
        EXPECT_EQ(list.contains(needle), expected >= 0);
    }
}

TEST_P(ParallelListTest, FindIndexMatchesSequential) {
    const auto list = make_list();
    auto pred = [](std::int64_t v) { return v > 490; };
    std::ptrdiff_t expected = -1;
    for (std::size_t i = 0; i < list.count(); ++i) {
        if (pred(list[i])) {
            expected = static_cast<std::ptrdiff_t>(i);
            break;
        }
    }
    EXPECT_EQ(list.find_index(pred), expected);
}

TEST_P(ParallelListTest, MaxIndexMatchesSequentialArgmax) {
    const auto list = make_list();
    if (list.empty()) {
        EXPECT_EQ(list.max_index(), -1);
        return;
    }
    std::size_t expected = 0;
    for (std::size_t i = 1; i < list.count(); ++i)
        if (list[expected] < list[i]) expected = i;
    EXPECT_EQ(list.max_index(), static_cast<std::ptrdiff_t>(expected));
}

TEST_P(ParallelListTest, SortProducesSortedPermutation) {
    auto list = make_list();
    std::vector<std::int64_t> expected;
    for (std::size_t i = 0; i < list.count(); ++i)
        expected.push_back(list[i]);
    std::sort(expected.begin(), expected.end());

    list.sort();
    ASSERT_EQ(list.count(), expected.size());
    for (std::size_t i = 0; i < list.count(); ++i)
        EXPECT_EQ(list[i], expected[i]);
}

TEST_P(ParallelListTest, ReduceMatchesSequentialSum) {
    const auto list = make_list();
    std::int64_t expected = 0;
    for (std::size_t i = 0; i < list.count(); ++i) expected += list[i];
    const std::int64_t sum = list.reduce(
        std::int64_t{0}, [](std::int64_t v) { return v; },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(sum, expected);
}

TEST_P(ParallelListTest, AppendGeneratedFillsInOrder) {
    ParallelList<std::int64_t> list(pool_, 1000);
    list.add(-5);
    list.append_generated(GetParam(), [](std::size_t i) {
        return static_cast<std::int64_t>(i * 3);
    });
    ASSERT_EQ(list.count(), GetParam() + 1);
    EXPECT_EQ(list[0], -5);
    for (std::size_t i = 0; i < GetParam(); ++i)
        EXPECT_EQ(list[i + 1], static_cast<std::int64_t>(i * 3));
}

INSTANTIATE_TEST_SUITE_P(BelowAndAboveThreshold, ParallelListTest,
                         ::testing::Values(0, 7, 999, 1001, 20'000),
                         [](const auto& info) {
                             return "n" + std::to_string(info.param);
                         });

TEST(ParallelList, MutationInterface) {
    ThreadPool pool(2);
    ParallelList<std::string> list(pool, 8);
    list.add("b");
    list.insert(0, "a");
    list.add("c");
    EXPECT_EQ(list.count(), 3u);
    EXPECT_EQ(list[0], "a");
    list.set(2, "z");
    EXPECT_EQ(list.get(2), "z");
    list.remove_at(1);
    EXPECT_EQ(list.count(), 2u);
    list.clear();
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.parallel_threshold(), 8u);
}

TEST(ParallelList, CustomComparatorSortAndMax) {
    ThreadPool pool(4);
    ParallelList<int> list(pool, 4);
    for (int v : {3, 1, 4, 1, 5, 9, 2, 6}) list.add(v);
    list.sort(std::greater<int>{});
    EXPECT_EQ(list[0], 9);
    EXPECT_EQ(list[7], 1);
    // max under greater<> is the minimum element.
    const auto idx = list.max_index(std::greater<int>{});
    EXPECT_EQ(list[static_cast<std::size_t>(idx)], 1);
}

}  // namespace
}  // namespace dsspy::par
