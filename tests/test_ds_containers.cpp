// Unit tests for the from-scratch containers in dsspy::ds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ds/array.hpp"
#include "ds/dictionary.hpp"
#include "ds/hash_set.hpp"
#include "ds/linked_list.hpp"
#include "ds/list.hpp"
#include "ds/queue.hpp"
#include "ds/sorted_list.hpp"
#include "ds/stack.hpp"
#include "support/rng.hpp"

namespace dsspy::ds {
namespace {

// --------------------------- List -----------------------------------------

TEST(List, StartsEmpty) {
    List<int> list;
    EXPECT_EQ(list.count(), 0u);
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.capacity(), 0u);
}

TEST(List, CapacityConstructorReserves) {
    List<int> list(32);
    EXPECT_EQ(list.count(), 0u);
    EXPECT_EQ(list.capacity(), 32u);
}

TEST(List, AddAndIndex) {
    List<int> list;
    for (int i = 0; i < 100; ++i) list.add(i * 2);
    ASSERT_EQ(list.count(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(list[static_cast<size_t>(i)], i * 2);
}

TEST(List, GrowthPreservesElements) {
    List<std::string> list;
    for (int i = 0; i < 1000; ++i) list.add("v" + std::to_string(i));
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(list[static_cast<size_t>(i)], "v" + std::to_string(i));
}

TEST(List, InsertShiftsTail) {
    List<int> list{1, 2, 4};
    list.insert(2, 3);
    EXPECT_EQ(list, (List<int>{1, 2, 3, 4}));
    list.insert(0, 0);
    EXPECT_EQ(list, (List<int>{0, 1, 2, 3, 4}));
    list.insert(5, 5);  // insert at end == append
    EXPECT_EQ(list, (List<int>{0, 1, 2, 3, 4, 5}));
}

TEST(List, RemoveAtShiftsTail) {
    List<int> list{0, 1, 2, 3, 4};
    list.remove_at(2);
    EXPECT_EQ(list, (List<int>{0, 1, 3, 4}));
    list.remove_at(0);
    EXPECT_EQ(list, (List<int>{1, 3, 4}));
    list.remove_at(2);
    EXPECT_EQ(list, (List<int>{1, 3}));
}

TEST(List, RemoveByValue) {
    List<int> list{5, 7, 5, 9};
    EXPECT_TRUE(list.remove(5));   // removes the first 5
    EXPECT_EQ(list, (List<int>{7, 5, 9}));
    EXPECT_FALSE(list.remove(42));
}

TEST(List, ClearKeepsCapacity) {
    List<int> list{1, 2, 3};
    const std::size_t cap = list.capacity();
    list.clear();
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.capacity(), cap);
}

TEST(List, IndexOfAndContains) {
    List<int> list{4, 8, 15, 16, 23, 42};
    EXPECT_EQ(list.index_of(15), 2);
    EXPECT_EQ(list.index_of(99), -1);
    EXPECT_TRUE(list.contains(42));
    EXPECT_FALSE(list.contains(0));
    EXPECT_EQ(list.find_index([](int v) { return v > 20; }), 4);
}

TEST(List, SortHandlesLargeRandomInput) {
    support::Rng rng(99);
    List<std::int64_t> list;
    for (int i = 0; i < 10'000; ++i)
        list.add(static_cast<std::int64_t>(rng.next_below(1'000'000)));
    list.sort();
    for (std::size_t i = 1; i < list.count(); ++i)
        EXPECT_LE(list[i - 1], list[i]);
}

TEST(List, SortWorstCases) {
    // Already sorted, reverse sorted, all equal.
    List<int> sorted;
    List<int> reversed;
    List<int> equal;
    for (int i = 0; i < 2000; ++i) {
        sorted.add(i);
        reversed.add(2000 - i);
        equal.add(7);
    }
    sorted.sort();
    reversed.sort();
    equal.sort();
    for (std::size_t i = 1; i < 2000; ++i) {
        EXPECT_LE(sorted[i - 1], sorted[i]);
        EXPECT_LE(reversed[i - 1], reversed[i]);
    }
    EXPECT_EQ(equal[0], 7);
    EXPECT_EQ(equal[1999], 7);
}

TEST(List, SortWithCustomComparator) {
    List<int> list{3, 1, 2};
    list.sort(std::greater<int>{});
    EXPECT_EQ(list, (List<int>{3, 2, 1}));
}

TEST(List, Reverse) {
    List<int> odd{1, 2, 3};
    odd.reverse();
    EXPECT_EQ(odd, (List<int>{3, 2, 1}));
    List<int> even{1, 2, 3, 4};
    even.reverse();
    EXPECT_EQ(even, (List<int>{4, 3, 2, 1}));
    List<int> empty;
    empty.reverse();
    EXPECT_TRUE(empty.empty());
}

TEST(List, CopyToAndForEach) {
    List<int> list{1, 2, 3};
    std::vector<int> out(3);
    list.copy_to(out);
    EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
    int sum = 0;
    list.for_each([&sum](int v) { sum += v; });
    EXPECT_EQ(sum, 6);
}

TEST(List, CopyAndMoveSemantics) {
    List<std::string> a{"x", "y"};
    List<std::string> b(a);  // copy
    b.add("z");
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(b.count(), 3u);
    List<std::string> c(std::move(b));
    EXPECT_EQ(c.count(), 3u);
    EXPECT_EQ(b.count(), 0u);  // NOLINT(bugprone-use-after-move)
    a = c;
    EXPECT_EQ(a.count(), 3u);
    a = std::move(c);
    EXPECT_EQ(a.count(), 3u);
}

TEST(List, SetCountAfterParallelBuildCommitsElements) {
    List<int> list(10);
    for (int i = 0; i < 10; ++i) std::construct_at(list.data() + i, i * 3);
    list.set_count_after_parallel_build(10);
    EXPECT_EQ(list.count(), 10u);
    EXPECT_EQ(list[9], 27);
}

// --------------------------- Array ----------------------------------------

TEST(Array, ValueInitialized) {
    Array<int> arr(16);
    for (std::size_t i = 0; i < arr.length(); ++i) EXPECT_EQ(arr[i], 0);
}

TEST(Array, SetGet) {
    Array<double> arr(8);
    arr.set(3, 2.5);
    EXPECT_DOUBLE_EQ(arr.get(3), 2.5);
    EXPECT_DOUBLE_EQ(arr[0], 0.0);
}

TEST(Array, ResizeGrowAndShrink) {
    Array<int> arr(4);
    for (std::size_t i = 0; i < 4; ++i) arr.set(i, static_cast<int>(i) + 1);
    arr.resize(6);
    EXPECT_EQ(arr.length(), 6u);
    EXPECT_EQ(arr[3], 4);
    EXPECT_EQ(arr[5], 0);  // tail value-initialized
    arr.resize(2);
    EXPECT_EQ(arr.length(), 2u);
    EXPECT_EQ(arr[1], 2);
}

TEST(Array, FillIndexOfSortReverse) {
    Array<int> arr(5);
    arr.fill(9);
    EXPECT_EQ(arr.index_of(9), 0);
    arr.set(2, 1);
    arr.set(4, 5);
    EXPECT_EQ(arr.index_of(1), 2);
    EXPECT_EQ(arr.index_of(123), -1);
    arr.sort();
    EXPECT_EQ(arr[0], 1);
    arr.reverse();
    EXPECT_EQ(arr[arr.length() - 1], 1);
    EXPECT_TRUE(arr.contains(5));
}

TEST(Array, CopyAndMove) {
    Array<int> a(3);
    a.set(0, 1);
    Array<int> b(a);
    b.set(0, 2);
    EXPECT_EQ(a[0], 1);
    EXPECT_EQ(b[0], 2);
    Array<int> c(std::move(b));
    EXPECT_EQ(c[0], 2);
    EXPECT_EQ(b.length(), 0u);  // NOLINT(bugprone-use-after-move)
}

// --------------------------- Dictionary -----------------------------------

TEST(Dictionary, AddGetRemove) {
    Dictionary<std::string, int> dict;
    dict.add("a", 1);
    dict.add("b", 2);
    EXPECT_EQ(dict.count(), 2u);
    EXPECT_EQ(dict.get("a"), 1);
    EXPECT_TRUE(dict.contains_key("b"));
    EXPECT_FALSE(dict.contains_key("c"));
    EXPECT_TRUE(dict.remove("a"));
    EXPECT_FALSE(dict.remove("a"));
    EXPECT_EQ(dict.count(), 1u);
}

TEST(Dictionary, AddDuplicateThrows) {
    Dictionary<int, int> dict;
    dict.add(1, 1);
    EXPECT_THROW(dict.add(1, 2), std::invalid_argument);
}

TEST(Dictionary, GetMissingThrows) {
    Dictionary<int, int> dict;
    EXPECT_THROW((void)dict.get(5), std::out_of_range);
}

TEST(Dictionary, SetOverwritesAndTryGet) {
    Dictionary<int, std::string> dict;
    dict.set(1, "x");
    dict.set(1, "y");
    EXPECT_EQ(dict.count(), 1u);
    std::string out;
    EXPECT_TRUE(dict.try_get(1, out));
    EXPECT_EQ(out, "y");
    EXPECT_FALSE(dict.try_get(2, out));
}

TEST(Dictionary, SurvivesManyInsertsAndRehashes) {
    Dictionary<std::int64_t, std::int64_t> dict;
    for (std::int64_t i = 0; i < 20'000; ++i) dict.set(i * 7, i);
    EXPECT_EQ(dict.count(), 20'000u);
    for (std::int64_t i = 0; i < 20'000; ++i) EXPECT_EQ(dict.get(i * 7), i);
}

TEST(Dictionary, TombstonesDoNotBreakLookup) {
    Dictionary<int, int> dict;
    for (int i = 0; i < 1000; ++i) dict.set(i, i);
    for (int i = 0; i < 1000; i += 2) EXPECT_TRUE(dict.remove(i));
    for (int i = 1; i < 1000; i += 2) EXPECT_EQ(dict.get(i), i);
    EXPECT_EQ(dict.count(), 500u);
    // Reinsert over tombstones.
    for (int i = 0; i < 1000; i += 2) dict.set(i, -i);
    for (int i = 0; i < 1000; i += 2) EXPECT_EQ(dict.get(i), -i);
}

TEST(Dictionary, ForEachVisitsAll) {
    Dictionary<int, int> dict;
    for (int i = 0; i < 50; ++i) dict.set(i, 1);
    int sum = 0;
    dict.for_each([&sum](int, int v) { sum += v; });
    EXPECT_EQ(sum, 50);
    dict.clear();
    EXPECT_TRUE(dict.empty());
}

// --------------------------- HashSet --------------------------------------

TEST(HashSet, AddContainsRemove) {
    HashSet<std::string> set;
    EXPECT_TRUE(set.add("x"));
    EXPECT_FALSE(set.add("x"));
    EXPECT_TRUE(set.contains("x"));
    EXPECT_TRUE(set.remove("x"));
    EXPECT_FALSE(set.contains("x"));
    EXPECT_EQ(set.count(), 0u);
}

TEST(HashSet, ManyElements) {
    HashSet<std::int64_t> set;
    for (std::int64_t i = 0; i < 10'000; ++i) EXPECT_TRUE(set.add(i));
    for (std::int64_t i = 0; i < 10'000; ++i) EXPECT_TRUE(set.contains(i));
    EXPECT_FALSE(set.contains(10'001));
    std::size_t visited = 0;
    set.for_each([&visited](std::int64_t) { ++visited; });
    EXPECT_EQ(visited, 10'000u);
}

// --------------------------- Stack / Queue --------------------------------

TEST(Stack, LifoOrder) {
    Stack<int> stack;
    stack.push(1);
    stack.push(2);
    stack.push(3);
    EXPECT_EQ(stack.peek(), 3);
    EXPECT_EQ(stack.pop(), 3);
    EXPECT_EQ(stack.pop(), 2);
    EXPECT_EQ(stack.count(), 1u);
    EXPECT_TRUE(stack.contains(1));
    stack.clear();
    EXPECT_TRUE(stack.empty());
}

TEST(Queue, FifoOrder) {
    Queue<int> queue;
    for (int i = 0; i < 100; ++i) queue.enqueue(i);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(queue.dequeue(), i);
    EXPECT_TRUE(queue.empty());
}

TEST(Queue, WrapsAroundCircularBuffer) {
    Queue<int> queue(4);
    for (int round = 0; round < 10; ++round) {
        queue.enqueue(round);
        queue.enqueue(round + 100);
        EXPECT_EQ(queue.dequeue(), round);
        EXPECT_EQ(queue.dequeue(), round + 100);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(Queue, GrowthPreservesOrder) {
    Queue<int> queue(2);
    // Force wrap + growth.
    queue.enqueue(0);
    queue.enqueue(1);
    EXPECT_EQ(queue.dequeue(), 0);
    for (int i = 2; i < 50; ++i) queue.enqueue(i);
    for (int i = 1; i < 50; ++i) EXPECT_EQ(queue.dequeue(), i);
}

TEST(Queue, PeekAtAndContains) {
    Queue<std::string> queue;
    queue.enqueue("a");
    queue.enqueue("b");
    EXPECT_EQ(queue.peek(), "a");
    EXPECT_EQ(queue.at(1), "b");
    EXPECT_TRUE(queue.contains("b"));
    EXPECT_FALSE(queue.contains("c"));
}

TEST(Queue, CopySemantics) {
    Queue<int> a;
    a.enqueue(1);
    a.enqueue(2);
    Queue<int> b(a);
    EXPECT_EQ(b.dequeue(), 1);
    EXPECT_EQ(a.count(), 2u);
}

// --------------------------- LinkedList -----------------------------------

TEST(LinkedList, AddFirstLastRemoveFirstLast) {
    LinkedList<int> list;
    list.add_last(2);
    list.add_first(1);
    list.add_last(3);
    EXPECT_EQ(list.count(), 3u);
    EXPECT_EQ(list.first(), 1);
    EXPECT_EQ(list.last(), 3);
    EXPECT_EQ(list.remove_first(), 1);
    EXPECT_EQ(list.remove_last(), 3);
    EXPECT_EQ(list.remove_first(), 2);
    EXPECT_TRUE(list.empty());
}

TEST(LinkedList, FindAndContains) {
    LinkedList<int> list;
    for (int i = 0; i < 10; ++i) list.add_last(i);
    EXPECT_TRUE(list.contains(7));
    EXPECT_FALSE(list.contains(42));
    EXPECT_NE(list.find(3), nullptr);
    EXPECT_EQ(list.find(3)->value, 3);
}

TEST(LinkedList, LargeClearDoesNotOverflowStack) {
    LinkedList<int> list;
    for (int i = 0; i < 200'000; ++i) list.add_last(i);
    list.clear();  // iterative unlink must not recurse
    EXPECT_TRUE(list.empty());
}

TEST(LinkedList, CopyPreservesOrder) {
    LinkedList<int> a;
    a.add_last(1);
    a.add_last(2);
    LinkedList<int> b(a);
    EXPECT_EQ(b.remove_first(), 1);
    EXPECT_EQ(a.count(), 2u);
}

// --------------------------- SortedList -----------------------------------

TEST(SortedList, KeepsKeysSorted) {
    SortedList<int, std::string> sl;
    sl.add(5, "five");
    sl.add(1, "one");
    sl.add(3, "three");
    EXPECT_EQ(sl.count(), 3u);
    EXPECT_EQ(sl.key_at(0), 1);
    EXPECT_EQ(sl.key_at(1), 3);
    EXPECT_EQ(sl.key_at(2), 5);
    EXPECT_EQ(sl.value_at(1), "three");
}

TEST(SortedList, LookupAndRemove) {
    SortedList<int, int> sl;
    for (int i = 0; i < 100; ++i) sl.add(i * 2, i);
    EXPECT_EQ(sl.index_of_key(40), 20);
    EXPECT_EQ(sl.index_of_key(41), -1);
    EXPECT_EQ(sl.get(40), 20);
    EXPECT_TRUE(sl.contains_key(0));
    EXPECT_TRUE(sl.remove(0));
    EXPECT_FALSE(sl.contains_key(0));
    int out = 0;
    EXPECT_TRUE(sl.try_get(98 * 2, out));
    EXPECT_EQ(out, 98);
    EXPECT_FALSE(sl.try_get(1, out));
}

TEST(SortedList, DuplicateAddThrowsSetOverwrites) {
    SortedList<int, int> sl;
    sl.add(1, 10);
    EXPECT_THROW(sl.add(1, 20), std::invalid_argument);
    sl.set(1, 20);
    EXPECT_EQ(sl.get(1), 20);
    EXPECT_THROW((void)sl.get(2), std::out_of_range);
}

}  // namespace
}  // namespace dsspy::ds
