// Tests for the CSV/JSON analysis exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "core/export.hpp"
#include "ds/ds.hpp"
#include "support/strings.hpp"

namespace dsspy::core {
namespace {

AnalysisResult make_analysis(runtime::ProfilingSession& session) {
    {
        ds::ProfiledList<int> hot(&session, {"Export.Test", "Hot", 1});
        for (int i = 0; i < 200; ++i) hot.add(i);
        for (std::size_t i = 0; i < hot.count(); ++i) (void)hot.get(i);

        ds::ProfiledList<int> cold(&session, {"Export, \"Test\"", "Cold", 2});
        cold.add(1);
    }
    session.stop();
    return Dsspy{}.analyze(session);
}

TEST(ExportCsv, UseCasesHaveHeaderAndRows) {
    runtime::ProfilingSession session;
    const AnalysisResult analysis = make_analysis(session);

    std::ostringstream os;
    write_use_cases_csv(os, analysis);
    const auto lines = support::split(os.str(), '\n');
    EXPECT_EQ(lines[0],
              "class,method,position,type,use_case,code,parallel,action,"
              "confidence,reason,recommendation");
    // The hot list carries at least the Long-Insert use case.
    EXPECT_NE(os.str().find("Long-Insert"), std::string::npos);
    EXPECT_NE(os.str().find(",ParallelInsert,"), std::string::npos);
    EXPECT_NE(os.str().find("Export.Test,Hot,1"), std::string::npos);
}

TEST(ExportCsv, InstancesRowPerInstance) {
    runtime::ProfilingSession session;
    const AnalysisResult analysis = make_analysis(session);

    std::ostringstream os;
    write_instances_csv(os, analysis);
    const auto lines = support::split(os.str(), '\n');
    // header + 2 instances + trailing empty.
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_TRUE(support::starts_with(lines[1], "0,Export.Test,Hot,1,List"));
    // Quoted class name with comma and quotes survives escaping.
    EXPECT_NE(lines[2].find("\"Export, \"\"Test\"\"\""), std::string::npos);
}

TEST(ExportCsv, PatternsRowsMatchAnalysis) {
    runtime::ProfilingSession session;
    const AnalysisResult analysis = make_analysis(session);

    std::size_t pattern_count = 0;
    for (const auto& ia : analysis.instances())
        pattern_count += ia.patterns.size();

    std::ostringstream os;
    write_patterns_csv(os, analysis);
    const auto lines = support::split(os.str(), '\n');
    EXPECT_EQ(lines.size(), pattern_count + 2);  // header + rows + empty
    EXPECT_NE(os.str().find("Insert-Back"), std::string::npos);
}

TEST(ExportJson, ContainsSummaryAndNestedObjects) {
    runtime::ProfilingSession session;
    const AnalysisResult analysis = make_analysis(session);

    std::ostringstream os;
    write_analysis_json(os, analysis);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"total_instances\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"search_space_reduction\":"), std::string::npos);
    EXPECT_NE(json.find("\"patterns\": ["), std::string::npos);
    EXPECT_NE(json.find("\"use_cases\": ["), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"Long-Insert\""), std::string::npos);
    // Escaped quotes in the class name.
    EXPECT_NE(json.find("Export, \\\"Test\\\""), std::string::npos);

    // Brace/bracket balance as a cheap well-formedness check.
    std::ptrdiff_t braces = 0;
    std::ptrdiff_t brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char ch = json[i];
        if (in_string) {
            if (ch == '\\') {
                ++i;
            } else if (ch == '"') {
                in_string = false;
            }
            continue;
        }
        if (ch == '"') in_string = true;
        if (ch == '{') ++braces;
        if (ch == '}') --braces;
        if (ch == '[') ++brackets;
        if (ch == ']') --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(ExportJson, EmptyAnalysisIsValid) {
    runtime::ProfilingSession session;
    session.stop();
    const AnalysisResult analysis = Dsspy{}.analyze(session);
    std::ostringstream os;
    write_analysis_json(os, analysis);
    EXPECT_NE(os.str().find("\"instances\": [\n\n  ]"), std::string::npos);
}

}  // namespace
}  // namespace dsspy::core
