// Stress tests for the rewritten capture path: per-thread sequence blocks,
// amortized timestamps, lock-free channel registration, and the parallel
// post-mortem pipeline.  These are the tests the DSSPY_SANITIZE=thread
// build runs under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/dsspy.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/profile_store.hpp"
#include "runtime/session.hpp"

namespace dsspy::runtime {
namespace {

// 8+ producers against deliberately tiny rings: the collector must apply
// backpressure (capacity 256 << events) yet lose nothing, and the
// reconciled order must stay deterministic.
TEST(CaptureStress, StreamingEightProducersTinyRingsLoseNothing) {
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50'000;
    ProfilingSession session(CaptureMode::Streaming, /*ring_capacity=*/256);
    std::vector<InstanceId> ids;
    ids.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        ids.push_back(session.register_instance(
            DsKind::List, "List<Int64>",
            {"Stress", "M", static_cast<std::uint32_t>(t)}));

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&session, &ids, t] {
            for (int i = 0; i < kPerThread; ++i)
                session.record(ids[static_cast<std::size_t>(t)], OpKind::Add,
                               i, static_cast<std::uint32_t>(i + 1));
        });
    }
    for (auto& th : threads) th.join();
    session.stop();

    // Zero loss, per-thread program order, and globally unique sequence
    // numbers (the reconciled total order is a valid interleaving).
    std::set<std::uint64_t> all_seqs;
    for (const InstanceId id : ids) {
        const auto events = session.store().events(id);
        ASSERT_EQ(events.size(), static_cast<std::size_t>(kPerThread));
        for (std::size_t i = 0; i < events.size(); ++i) {
            EXPECT_EQ(events[i].position, static_cast<std::int64_t>(i));
            if (i > 0) {
                EXPECT_LT(events[i - 1].seq, events[i].seq);
                EXPECT_LE(events[i - 1].time_ns, events[i].time_ns);
            }
            all_seqs.insert(events[i].seq);
        }
    }
    EXPECT_EQ(all_seqs.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    EXPECT_EQ(session.events_recorded(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(session.thread_count(), static_cast<std::size_t>(kThreads));
}

class ReconciliationTest : public ::testing::TestWithParam<CaptureMode> {};

// Several threads interleave on ONE shared instance.  After finalize() the
// instance's merged sequence must contain every thread's events as a
// subsequence in program order — the per-thread sequence blocks must never
// reorder a thread against itself.
TEST_P(ReconciliationTest, SharedInstancePreservesPerThreadProgramOrder) {
    constexpr int kThreads = 6;
    // > kSeqBlockSize events per thread so every thread crosses several
    // block boundaries.
    constexpr int kPerThread = 3 * 1024 + 257;
    ProfilingSession session(GetParam(), /*ring_capacity=*/512);
    const InstanceId shared = session.register_instance(
        DsKind::List, "List<Int64>", {"Recon", "M", 1});

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&session, shared, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // Encode (thread, op index) in the position so the merged
                // stream can be audited per thread.
                const std::int64_t pos = t * 1'000'000LL + i;
                session.record(shared, OpKind::Add, pos, 1);
            }
        });
    }
    for (auto& th : threads) th.join();
    session.stop();

    const auto events = session.store().events(shared);
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    std::vector<std::int64_t> next_index(kThreads, 0);
    std::uint64_t prev_seq = 0;
    bool first = true;
    for (const AccessEvent& ev : events) {
        if (!first) EXPECT_LT(prev_seq, ev.seq);  // strict total order
        prev_seq = ev.seq;
        first = false;
        const auto t = static_cast<std::size_t>(ev.position / 1'000'000LL);
        const std::int64_t i = ev.position % 1'000'000LL;
        ASSERT_LT(t, static_cast<std::size_t>(kThreads));
        EXPECT_EQ(i, next_index[t]) << "thread " << t
                                    << " reordered against itself";
        ++next_index[t];
    }
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(next_index[static_cast<std::size_t>(t)], kPerThread);
}

INSTANTIATE_TEST_SUITE_P(BothModes, ReconciliationTest,
                         ::testing::Values(CaptureMode::Buffered,
                                           CaptureMode::Streaming),
                         [](const auto& info) {
                             return info.param == CaptureMode::Buffered
                                        ? "Buffered"
                                        : "Streaming";
                         });

// Amortized timestamps must stay monotonic per thread and move forward
// across stride boundaries.
TEST(CaptureStress, AmortizedTimestampsAreMonotonicAndAdvance) {
    ProfilingSession session(CaptureMode::Buffered);
    const InstanceId id = session.register_instance(
        DsKind::List, "List<Int64>", {"Ts", "M", 1});
    constexpr int kEvents = 64 * 1024;
    for (int i = 0; i < kEvents; ++i)
        session.record(id, OpKind::Add, i, 1);
    session.stop();

    const auto events = session.store().events(id);
    ASSERT_EQ(events.size(), static_cast<std::size_t>(kEvents));
    std::set<std::uint64_t> distinct;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0) EXPECT_LE(events[i - 1].time_ns, events[i].time_ns);
        distinct.insert(events[i].time_ns);
    }
    // The clock is read once per kTimestampStride events plus once per
    // sequence-block boundary, so there must be multiple distinct readings
    // over 64K events — but far fewer than one per event.
    EXPECT_GT(distinct.size(), 1u);
    EXPECT_LE(distinct.size(),
              events.size() / ProfilingSession::kTimestampStride +
                  events.size() / ProfilingSession::kSeqBlockSize + 2);
}

// Parallel finalize must produce byte-for-byte the same store as the
// sequential one.
TEST(CaptureStress, ParallelFinalizeMatchesSequential) {
    auto build = [] {
        ProfileStore store;
        // Unsorted appends across 33 instances, seqs deliberately shuffled
        // by striding.
        std::vector<AccessEvent> batch;
        for (std::uint64_t s = 0; s < 40'000; ++s) {
            AccessEvent ev;
            ev.seq = (s * 7919) % 40'000;  // permutation of [0, 40000)
            ev.time_ns = ev.seq * 10;
            ev.instance = static_cast<InstanceId>(s % 33);
            ev.position = static_cast<std::int64_t>(s);
            ev.size = 1;
            ev.op = OpKind::Add;
            ev.thread = static_cast<ThreadId>(s % 5);
            batch.push_back(ev);
        }
        ProfileStore out;
        out.append(batch);
        return out;
    };
    ProfileStore sequential = build();
    ProfileStore parallel = build();
    sequential.finalize(nullptr);
    par::ThreadPool pool(4);
    parallel.finalize(&pool);

    ASSERT_EQ(sequential.instance_slots(), parallel.instance_slots());
    ASSERT_EQ(sequential.total_events(), parallel.total_events());
    for (std::size_t id = 0; id < sequential.instance_slots(); ++id) {
        const auto a = sequential.events(static_cast<InstanceId>(id));
        const auto b = parallel.events(static_cast<InstanceId>(id));
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
}

// Parallel analyze must be bit-identical to sequential analyze over the
// full study corpus (every program model's workload).
TEST(CaptureStress, ParallelAnalyzeMatchesSequentialOnCorpus) {
    par::ThreadPool pool(4);
    const core::Dsspy analyzer;
    for (const corpus::ProgramModel* program : corpus::study15_programs()) {
        ProfilingSession session;
        corpus::run_study15_workload(*program, &session, 7);
        session.stop();

        const core::AnalysisResult seq = analyzer.analyze(session);
        const core::AnalysisResult par_res = analyzer.analyze(session, &pool);

        ASSERT_EQ(seq.instances().size(), par_res.instances().size())
            << program->name;
        for (std::size_t i = 0; i < seq.instances().size(); ++i) {
            const core::InstanceAnalysis& a = seq.instances()[i];
            const core::InstanceAnalysis& b = par_res.instances()[i];
            EXPECT_EQ(a.patterns, b.patterns) << program->name;
            EXPECT_EQ(a.use_cases, b.use_cases) << program->name;
            EXPECT_EQ(a.profile.info(), b.profile.info()) << program->name;
        }
        EXPECT_EQ(seq.flagged_instances(), par_res.flagged_instances());
        EXPECT_EQ(seq.total_events(), par_res.total_events());
        EXPECT_EQ(seq.search_space_reduction(),
                  par_res.search_space_reduction());
    }
}

// Buffered stop() handshake: all events recorded by quiesced threads are
// merged, and counts agree across the acquire/release boundary.
TEST(CaptureStress, BufferedQuiesceHandshakeMergesEverything) {
    constexpr int kThreads = 8;
    constexpr int kPerThread = 30'000;  // crosses several chunk boundaries
    ProfilingSession session(CaptureMode::Buffered);
    const InstanceId id = session.register_instance(
        DsKind::List, "List<Int64>", {"Quiesce", "M", 1});
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&session, id] {
            for (int i = 0; i < kPerThread; ++i)
                session.record(id, OpKind::Get, i, 100);
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(session.events_recorded(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    session.stop();
    EXPECT_EQ(session.store().events(id).size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    // Late records are dropped (and would assert in debug builds if a
    // recording thread were still live — here the thread-local channel is
    // sealed, so the record is silently ignored).
    EXPECT_EQ(session.events_recorded(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace dsspy::runtime
