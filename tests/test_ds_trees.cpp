// Tests for the AVL-backed SortedSet and SortedDictionary.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ds/sorted_dictionary.hpp"
#include "ds/sorted_set.hpp"
#include "support/rng.hpp"

namespace dsspy::ds {
namespace {

TEST(SortedSet, AddContainsRemove) {
    SortedSet<int> set;
    EXPECT_TRUE(set.add(5));
    EXPECT_FALSE(set.add(5));
    EXPECT_TRUE(set.add(1));
    EXPECT_TRUE(set.add(9));
    EXPECT_EQ(set.count(), 3u);
    EXPECT_TRUE(set.contains(5));
    EXPECT_FALSE(set.contains(2));
    EXPECT_TRUE(set.remove(5));
    EXPECT_FALSE(set.remove(5));
    EXPECT_EQ(set.count(), 2u);
    EXPECT_TRUE(set.validate());
}

TEST(SortedSet, MinMaxCeiling) {
    SortedSet<int> set;
    EXPECT_EQ(set.min(), nullptr);
    EXPECT_EQ(set.max(), nullptr);
    for (int v : {40, 10, 30, 20}) set.add(v);
    EXPECT_EQ(*set.min(), 10);
    EXPECT_EQ(*set.max(), 40);
    EXPECT_EQ(*set.ceiling(15), 20);
    EXPECT_EQ(*set.ceiling(20), 20);
    EXPECT_EQ(set.ceiling(41), nullptr);
}

TEST(SortedSet, ForEachIsAscending) {
    SortedSet<int> set;
    support::Rng rng(3);
    for (int i = 0; i < 500; ++i)
        set.add(static_cast<int>(rng.next_below(10'000)));
    std::vector<int> seen;
    set.for_each([&seen](int v) { seen.push_back(v); });
    EXPECT_EQ(seen.size(), set.count());
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_LT(seen[i - 1], seen[i]);
}

TEST(SortedSet, StaysBalancedUnderSequentialInsertion) {
    SortedSet<int> set;
    // Ascending insertion is the classic unbalanced-BST killer.
    for (int i = 0; i < 4096; ++i) set.add(i);
    EXPECT_TRUE(set.validate());
    // AVL height bound: < 1.44 * log2(n+2) ~= 17.3 for n=4096.
    EXPECT_LE(set.tree_height(), 18);
}

TEST(SortedSet, RandomChurnAgainstStdSet) {
    SortedSet<std::int64_t> set;
    std::set<std::int64_t> reference;
    support::Rng rng(77);
    for (int step = 0; step < 20'000; ++step) {
        const auto v = static_cast<std::int64_t>(rng.next_below(400));
        if (rng.next_bool(0.6)) {
            EXPECT_EQ(set.add(v), reference.insert(v).second);
        } else {
            EXPECT_EQ(set.remove(v), reference.erase(v) > 0);
        }
    }
    EXPECT_EQ(set.count(), reference.size());
    EXPECT_TRUE(set.validate());
    std::vector<std::int64_t> seen;
    set.for_each([&seen](std::int64_t v) { seen.push_back(v); });
    std::vector<std::int64_t> expected(reference.begin(), reference.end());
    EXPECT_EQ(seen, expected);
}

TEST(SortedSet, ClearAndCustomComparator) {
    SortedSet<int, std::greater<int>> set;
    for (int v : {1, 2, 3}) set.add(v);
    std::vector<int> seen;
    set.for_each([&seen](int v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<int>{3, 2, 1}));  // descending order
    set.clear();
    EXPECT_TRUE(set.empty());
    EXPECT_TRUE(set.validate());
}

TEST(SortedDictionary, AddGetSetRemove) {
    SortedDictionary<std::string, int> dict;
    dict.add("b", 2);
    dict.add("a", 1);
    EXPECT_THROW(dict.add("a", 9), std::invalid_argument);
    EXPECT_EQ(dict.get("a"), 1);
    EXPECT_THROW((void)dict.get("z"), std::out_of_range);
    dict.set("a", 10);
    EXPECT_EQ(dict.get("a"), 10);
    int out = 0;
    EXPECT_TRUE(dict.try_get("b", out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(dict.try_get("c", out));
    EXPECT_TRUE(dict.remove("a"));
    EXPECT_FALSE(dict.contains_key("a"));
    EXPECT_EQ(dict.count(), 1u);
    EXPECT_TRUE(dict.validate());
}

TEST(SortedDictionary, OrderedTraversalAndMinMax) {
    SortedDictionary<int, std::string> dict;
    for (int v : {3, 1, 4, 1 + 10, 5, 9, 2, 6}) dict.set(v, "v");
    EXPECT_EQ(*dict.min_key(), 1);
    EXPECT_EQ(*dict.max_key(), 11);
    std::vector<int> keys;
    dict.for_each([&keys](int k, const std::string&) { keys.push_back(k); });
    for (std::size_t i = 1; i < keys.size(); ++i)
        EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(SortedDictionary, ManyKeysStayConsistent) {
    SortedDictionary<std::int64_t, std::int64_t> dict;
    for (std::int64_t i = 0; i < 10'000; ++i) dict.set(i * 7 % 9973, i);
    EXPECT_TRUE(dict.validate());
    // Later writes win for colliding keys (i*7 mod 9973 cycles).
    std::int64_t out = 0;
    EXPECT_TRUE(dict.try_get(0, out));
    EXPECT_EQ(dict.count(), 9973u);
}

TEST(SortedDictionary, CopySemanticsViaTree) {
    SortedDictionary<int, int> a;
    a.set(1, 10);
    a.set(2, 20);
    SortedDictionary<int, int> b(a);
    b.set(1, 99);
    EXPECT_EQ(a.get(1), 10);
    EXPECT_EQ(b.get(1), 99);
    EXPECT_TRUE(b.validate());
}

}  // namespace
}  // namespace dsspy::ds
