// Tests for textual DetectorConfig overrides.
#include <gtest/gtest.h>

#include "core/config_parse.hpp"

namespace dsspy::core {
namespace {

TEST(ConfigParse, AppliesSizeFields) {
    DetectorConfig config;
    EXPECT_TRUE(apply_config_override(config, "li_min_phase_events=42"));
    EXPECT_EQ(config.li_min_phase_events, 42u);
    EXPECT_TRUE(apply_config_override(config, "fs_min_search_ops=5000"));
    EXPECT_EQ(config.fs_min_search_ops, 5000u);
    EXPECT_TRUE(apply_config_override(config, "min_pattern_events=7"));
    EXPECT_EQ(config.min_pattern_events, 7u);
}

TEST(ConfigParse, AppliesDoubleFields) {
    DetectorConfig config;
    EXPECT_TRUE(apply_config_override(config, "li_min_insert_share=0.45"));
    EXPECT_DOUBLE_EQ(config.li_min_insert_share, 0.45);
    EXPECT_TRUE(apply_config_override(config, "flr_min_coverage=0.8"));
    EXPECT_DOUBLE_EQ(config.flr_min_coverage, 0.8);
}

TEST(ConfigParse, RejectsUnknownKey) {
    DetectorConfig config;
    EXPECT_FALSE(apply_config_override(config, "no_such_key=1"));
}

TEST(ConfigParse, RejectsMalformedEntries) {
    DetectorConfig config;
    const DetectorConfig before = config;
    EXPECT_FALSE(apply_config_override(config, "li_min_phase_events"));
    EXPECT_FALSE(apply_config_override(config, "li_min_phase_events=abc"));
    EXPECT_FALSE(apply_config_override(config, "li_min_phase_events=12x"));
    EXPECT_FALSE(apply_config_override(config, "=5"));
    EXPECT_EQ(config.li_min_phase_events, before.li_min_phase_events);
}

TEST(ConfigParse, BatchReportsRejects) {
    DetectorConfig config;
    const auto rejected = apply_config_overrides(
        config, {"li_min_phase_events=10", "bogus=1", "flr_min_coverage=x"});
    ASSERT_EQ(rejected.size(), 2u);
    EXPECT_EQ(rejected[0], "bogus=1");
    EXPECT_EQ(config.li_min_phase_events, 10u);
}

TEST(ConfigParse, RoundTripThroughStrings) {
    DetectorConfig config;
    config.li_min_phase_events = 123;
    config.flr_min_coverage = 0.25;
    const auto lines = config_to_strings(config);
    DetectorConfig restored;
    // Intentionally perturb, then re-apply every line.
    restored.li_min_phase_events = 1;
    restored.flr_min_coverage = 0.9;
    for (const std::string& line : lines)
        EXPECT_TRUE(apply_config_override(restored, line)) << line;
    EXPECT_EQ(restored.li_min_phase_events, 123u);
    EXPECT_DOUBLE_EQ(restored.flr_min_coverage, 0.25);
}

TEST(ConfigParse, EveryFieldIsListed) {
    const auto lines = config_to_strings(DetectorConfig{});
    // Keep in sync with DetectorConfig: 21 numeric tunables + share_basis.
    EXPECT_EQ(lines.size(), 22u);
}

TEST(ConfigParse, ShareBasisEnum) {
    DetectorConfig config;
    EXPECT_TRUE(apply_config_override(config, "share_basis=time"));
    EXPECT_EQ(config.share_basis, ShareBasis::Time);
    EXPECT_TRUE(apply_config_override(config, "share_basis=events"));
    EXPECT_EQ(config.share_basis, ShareBasis::Events);
    EXPECT_FALSE(apply_config_override(config, "share_basis=bogus"));
}

}  // namespace
}  // namespace dsspy::core
