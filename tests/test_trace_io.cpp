// Tests for trace serialization: CSV and DST1 binary round trips, offline
// analysis, adversarial field content, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "core/dsspy.hpp"
#include "ds/ds.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/trace_binary.hpp"
#include "runtime/trace_io.hpp"
#include "runtime/trace_mmap.hpp"

namespace dsspy::runtime {
namespace {

/// Record a small but classification-rich session.
void drive_session(ProfilingSession& session) {
    ds::ProfiledList<std::string> list(
        &session, {"Trace.Test, with comma", "Run \"quoted\"", 3});
    for (int i = 0; i < 150; ++i)
        list.add("value," + std::to_string(i));
    for (std::size_t i = 0; i < list.count(); ++i) (void)list.get(i);

    ds::ProfiledDictionary<int, int> dict(&session, {"Trace.Test", "Aux", 9});
    dict.set(1, 2);
}

/// Full structural equality of two deserialized traces (instances and the
/// per-instance event sequences).
void expect_traces_equal(const Trace& a, const Trace& b) {
    ASSERT_EQ(a.instances.size(), b.instances.size());
    for (std::size_t i = 0; i < a.instances.size(); ++i)
        EXPECT_EQ(a.instances[i], b.instances[i]) << "instance " << i;
    EXPECT_EQ(a.store.total_events(), b.store.total_events());
    const std::size_t slots =
        std::max(a.store.instance_slots(), b.store.instance_slots());
    for (std::size_t id = 0; id < slots; ++id) {
        const auto ea = a.store.events(static_cast<InstanceId>(id));
        const auto eb = b.store.events(static_cast<InstanceId>(id));
        ASSERT_EQ(ea.size(), eb.size()) << "instance " << id;
        for (std::size_t i = 0; i < ea.size(); ++i)
            EXPECT_EQ(ea[i], eb[i]) << "instance " << id << " event " << i;
    }
}

/// Serialize a session in `format` and parse the result back.
Trace round_trip(const ProfilingSession& session, TraceFormat format,
                 par::ThreadPool* pool = nullptr) {
    std::stringstream buffer;
    write_trace(buffer, session, format);
    return read_trace(buffer, pool);
}

TEST(TraceIo, RoundTripPreservesEverything) {
    ProfilingSession session;
    drive_session(session);
    session.stop();

    std::stringstream buffer;
    const std::size_t written = write_trace(buffer, session);
    EXPECT_EQ(written, session.store().total_events());

    const Trace trace = read_trace(buffer);
    ASSERT_EQ(trace.instances.size(), session.registry().size());
    EXPECT_EQ(trace.store.total_events(), session.store().total_events());

    for (const InstanceInfo& original : session.registry().snapshot()) {
        const InstanceInfo& restored = trace.instances[original.id];
        EXPECT_EQ(restored.id, original.id);
        EXPECT_EQ(restored.kind, original.kind);
        EXPECT_EQ(restored.type_name, original.type_name);
        EXPECT_EQ(restored.location, original.location);
        EXPECT_EQ(restored.deallocated, original.deallocated);

        const auto orig_events = session.store().events(original.id);
        const auto rest_events = trace.store.events(original.id);
        ASSERT_EQ(orig_events.size(), rest_events.size());
        for (std::size_t i = 0; i < orig_events.size(); ++i)
            EXPECT_EQ(orig_events[i], rest_events[i]);
    }
}

TEST(TraceIo, OfflineAnalysisMatchesLiveAnalysis) {
    ProfilingSession session;
    drive_session(session);
    session.stop();

    const core::Dsspy analyzer;
    const auto live = analyzer.analyze(session);

    std::stringstream buffer;
    write_trace(buffer, session);
    const Trace trace = read_trace(buffer);
    const auto offline = analyzer.analyze(trace.instances, trace.store);

    EXPECT_EQ(live.total_instances(), offline.total_instances());
    EXPECT_EQ(live.list_array_instances(), offline.list_array_instances());
    EXPECT_EQ(live.flagged_instances(), offline.flagged_instances());
    EXPECT_EQ(live.use_case_counts(), offline.use_case_counts());
    ASSERT_EQ(live.instances().size(), offline.instances().size());
    for (std::size_t i = 0; i < live.instances().size(); ++i)
        EXPECT_EQ(live.instances()[i].patterns.size(),
                  offline.instances()[i].patterns.size());
}

TEST(TraceIo, EmptySessionRoundTrips) {
    ProfilingSession session;
    session.stop();
    std::stringstream buffer;
    EXPECT_EQ(write_trace(buffer, session), 0u);
    const Trace trace = read_trace(buffer);
    EXPECT_TRUE(trace.instances.empty());
    EXPECT_EQ(trace.store.total_events(), 0u);
}

TEST(TraceIo, FileRoundTrip) {
    ProfilingSession session;
    drive_session(session);
    session.stop();

    const std::string path = ::testing::TempDir() + "/dsspy_trace.csv";
    ASSERT_TRUE(write_trace_file(path, session));
    const Trace trace = read_trace_file(path);
    EXPECT_EQ(trace.store.total_events(), session.store().total_events());
    std::remove(path.c_str());
}

TEST(TraceIo, BinaryFileRoundTrip) {
    ProfilingSession session;
    drive_session(session);
    session.stop();

    const std::string path = ::testing::TempDir() + "/dsspy_trace.dst";
    ASSERT_TRUE(write_trace_file(path, session, TraceFormat::Binary));
    const Trace trace = read_trace_file(path);  // format auto-detected
    expect_traces_equal(trace, round_trip(session, TraceFormat::Csv));
    std::remove(path.c_str());
}

TEST(TraceIo, ReadMissingFileThrows) {
    EXPECT_THROW((void)read_trace_file("/nonexistent/dsspy.csv"),
                 std::runtime_error);
}

TEST(TraceIo, WriteToUnwritablePathReportsFailure) {
    ProfilingSession session;
    session.stop();
    EXPECT_FALSE(write_trace_file("/nonexistent/dir/dsspy.csv", session));
    EXPECT_FALSE(write_trace_file("/nonexistent/dir/dsspy.dst", session,
                                  TraceFormat::Binary));
}

TEST(TraceIo, RejectsUnknownRecordTag) {
    std::stringstream buffer("X,1,2,3\n");
    EXPECT_THROW((void)read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsWrongFieldCount) {
    std::stringstream buffer("E,1,2,3\n");
    EXPECT_THROW((void)read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsNonNumericField) {
    std::stringstream buffer("E,abc,2,0,1,0,1,0\n");
    EXPECT_THROW((void)read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfRangeEnums) {
    std::stringstream bad_op("E,1,2,0,250,0,1,0\n");
    EXPECT_THROW((void)read_trace(bad_op), std::runtime_error);
    std::stringstream bad_kind("I,0,99,List<Int32>,C,M,1,0\n");
    EXPECT_THROW((void)read_trace(bad_kind), std::runtime_error);
}

TEST(TraceIo, RejectsUnterminatedQuote) {
    std::stringstream buffer("I,0,0,\"List<Int32>,C,M,1,0\n");
    EXPECT_THROW((void)read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
    std::stringstream buffer(
        "I,0,0,List<Int32>,C,M,1,0\n\nE,1,10,0,2,0,1,0\n\n");
    const Trace trace = read_trace(buffer);
    EXPECT_EQ(trace.instances.size(), 1u);
    EXPECT_EQ(trace.store.total_events(), 1u);
}

TEST(TraceIo, HandlesQuotedFieldsWithCommasAndQuotes) {
    std::stringstream buffer(
        "I,0,0,\"List<Pair<A, B>>\",\"Cls \"\"X\"\"\",M,1,1\n");
    const Trace trace = read_trace(buffer);
    ASSERT_EQ(trace.instances.size(), 1u);
    EXPECT_EQ(trace.instances[0].type_name, "List<Pair<A, B>>");
    EXPECT_EQ(trace.instances[0].location.class_name, "Cls \"X\"");
    EXPECT_TRUE(trace.instances[0].deallocated);
}

// Regression: escape() quotes fields containing '\n', but the reader used
// to split on physical lines, so a newline inside a name blew up the
// field count on re-import.
TEST(TraceIo, NewlineInNamesRoundTrips) {
    ProfilingSession session;
    ds::ProfiledList<int> list(
        &session, {"Gen\nerated.Cls", "lambda\nat line 7", 42});
    list.add(1);
    session.stop();

    for (const TraceFormat format : {TraceFormat::Csv, TraceFormat::Binary}) {
        const Trace trace = round_trip(session, format);
        ASSERT_EQ(trace.instances.size(), 1u);
        EXPECT_EQ(trace.instances[0].location.class_name, "Gen\nerated.Cls");
        EXPECT_EQ(trace.instances[0].location.method, "lambda\nat line 7");
        EXPECT_EQ(trace.store.total_events(),
                  session.store().total_events());
    }
}

// Store events whose instance id has no registry entry (externally built
// traces) must survive a write/read cycle instead of being dropped.
TEST(TraceIo, OrphanStoreEventsSurviveRoundTrip) {
    std::vector<InstanceInfo> instances;
    InstanceInfo known;
    known.id = 0;
    known.kind = DsKind::List;
    known.type_name = "List<Int32>";
    known.location = {"Cls", "M", 1};
    instances.push_back(known);

    ProfileStore store;
    const AccessEvent known_ev{1, 10, 0, /*instance=*/0, 1, OpKind::Add, 0};
    const AccessEvent orphan_ev{2, 20, 3, /*instance=*/5, 7, OpKind::Get, 1};
    const AccessEvent events[] = {known_ev, orphan_ev};
    store.append(events);
    store.finalize();

    for (const TraceFormat format : {TraceFormat::Csv, TraceFormat::Binary}) {
        std::stringstream buffer;
        EXPECT_EQ(write_trace(buffer, instances, store, format), 2u);
        const Trace trace = read_trace(buffer);
        EXPECT_EQ(trace.store.total_events(), 2u);
        ASSERT_EQ(trace.store.events(5).size(), 1u);
        EXPECT_EQ(trace.store.events(5)[0], orphan_ev);
        ASSERT_EQ(trace.store.events(0).size(), 1u);
        EXPECT_EQ(trace.store.events(0)[0], known_ev);
    }
}

// ------------------------------------------------------------ adversarial

TEST(TraceIoAdversarial, HostileNamesRoundTripInBothFormats) {
    const std::string hostile[] = {
        "plain",
        "comma, separated, name",
        "quote \"in\" the middle",
        "\"fully quoted\"",
        "newline\nin the middle",
        "both, \"and\"\nmore,\n\"even\" this",
        "trailing newline\n",
        "UTF-8: δομή δεδομένων 🚀 ラムダ",
        ",",
        "\"",
        "\n",
        std::string("embedded\0NUL-free? no: keep bytes", 33),
    };
    ProfilingSession session;
    for (const std::string& name : hostile) {
        ds::ProfiledList<int> list(&session, {name, name + "#m", 7});
        list.add(1);
    }
    session.stop();

    for (const TraceFormat format : {TraceFormat::Csv, TraceFormat::Binary}) {
        const Trace trace = round_trip(session, format);
        ASSERT_EQ(trace.instances.size(), std::size(hostile));
        for (std::size_t i = 0; i < std::size(hostile); ++i) {
            EXPECT_EQ(trace.instances[i].location.class_name, hostile[i])
                << "format " << static_cast<int>(format) << " name " << i;
            EXPECT_EQ(trace.instances[i].location.method, hostile[i] + "#m");
        }
    }
}

TEST(TraceIoAdversarial, ExtremeFieldValuesRoundTrip) {
    std::vector<InstanceInfo> instances;
    InstanceInfo info;
    info.id = 0;
    info.kind = DsKind::Array;
    info.type_name = "Int64[]";
    info.location = {"Cls", "M", std::numeric_limits<std::uint32_t>::max()};
    instances.push_back(info);

    constexpr std::uint64_t u64max = std::numeric_limits<std::uint64_t>::max();
    const AccessEvent extremes[] = {
        // seq, time_ns, position, instance, size, op, thread
        {0, 0, std::numeric_limits<std::int64_t>::min(), 0, 0, OpKind::Get, 0},
        {1, u64max, std::numeric_limits<std::int64_t>::max(), 0,
         std::numeric_limits<std::uint32_t>::max(), OpKind::Resize,
         std::numeric_limits<ThreadId>::max()},
        {u64max, 1, kWholeContainer, 0, 1, OpKind::Clear, 1},
    };
    ProfileStore store;
    store.append(extremes);
    store.finalize();

    for (const TraceFormat format : {TraceFormat::Csv, TraceFormat::Binary}) {
        std::stringstream buffer;
        write_trace(buffer, instances, store, format);
        const Trace trace = read_trace(buffer);
        ASSERT_EQ(trace.instances.size(), 1u);
        EXPECT_EQ(trace.instances[0], info);
        const auto events = trace.store.events(0);
        ASSERT_EQ(events.size(), 3u);
        // The store re-sorts by seq on finalize; compare against that order.
        EXPECT_EQ(events[0], extremes[0]);
        EXPECT_EQ(events[1], extremes[1]);
        EXPECT_EQ(events[2], extremes[2]);
    }
}

TEST(TraceIoAdversarial, CrossFormatConversionsAgree) {
    ProfilingSession session;
    drive_session(session);
    session.stop();

    const Trace from_csv = round_trip(session, TraceFormat::Csv);
    const Trace from_binary = round_trip(session, TraceFormat::Binary);
    expect_traces_equal(from_csv, from_binary);

    // And converting the re-read CSV trace to binary (the `dsspy convert`
    // path: explicit instances + store) is still lossless.
    std::stringstream converted;
    write_trace(converted, from_csv.instances, from_csv.store,
                TraceFormat::Binary);
    std::stringstream converted_copy(converted.str());
    expect_traces_equal(read_trace(converted_copy), from_binary);
}

// ------------------------------------------------------------ DST1 binary

/// A multi-chunk session: enough synthetic events to span several 64K
/// chunks without driving real containers.
Trace multi_chunk_trace() {
    Trace trace;
    for (InstanceId id = 0; id < 8; ++id) {
        InstanceInfo info;
        info.id = id;
        info.kind = DsKind::List;
        info.type_name = "List<Int32>";
        info.location = {"Chunky.Cls", "m" + std::to_string(id), id};
        trace.instances.push_back(std::move(info));
    }
    std::vector<AccessEvent> batch;
    constexpr std::size_t kEvents = 3 * kTraceBinaryChunkEvents / 2 + 137;
    batch.reserve(kEvents);
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < kEvents; ++i) {
        AccessEvent ev;
        ev.seq = seq++;
        ev.time_ns = 1'000'000 + i * 17;
        ev.instance = static_cast<InstanceId>(i % 8);
        ev.op = static_cast<OpKind>(i % kOpKindCount);
        ev.position = static_cast<std::int64_t>(i % 1024) - 1;
        ev.size = static_cast<std::uint32_t>(i % 4096);
        ev.thread = static_cast<ThreadId>(i % 4);
        batch.push_back(ev);
    }
    trace.store.append(batch);
    trace.store.finalize();
    return trace;
}

std::string binary_bytes(const Trace& trace) {
    std::ostringstream out;
    write_trace_binary(out, trace.instances, trace.store);
    return std::move(out).str();
}

TEST(TraceIoBinary, MultiChunkRoundTrips) {
    const Trace original = multi_chunk_trace();
    const std::string binary = binary_bytes(original);
    ASSERT_TRUE(is_binary_trace(binary));
    const Trace decoded = read_trace_binary(binary);
    expect_traces_equal(decoded, original);
}

TEST(TraceIoBinary, CompactEncodingBeatsCsvSize) {
    // A realistic capture (append phase + read sweeps, the pattern the
    // control-byte encoding is built for): the acceptance bar for the
    // 1M-event bench is ≥5× smaller than CSV, and a genuine workload must
    // clear it at test scale too.
    ProfilingSession session;
    {
        ds::ProfiledList<int> list(&session, {"Size.Test", "Fill", 1});
        for (int i = 0; i < 20000; ++i) list.add(i);
        for (int sweep = 0; sweep < 2; ++sweep)
            for (std::size_t i = 0; i < list.count(); ++i) (void)list.get(i);
    }
    session.stop();

    std::ostringstream csv;
    write_trace(csv, session, TraceFormat::Csv);
    std::ostringstream binary;
    write_trace(binary, session, TraceFormat::Binary);
    EXPECT_GE(csv.str().size(), 5 * binary.str().size())
        << "csv=" << csv.str().size() << " binary=" << binary.str().size();
}

TEST(TraceIoBinary, ParallelDecodeIsBitIdenticalToSequential) {
    const std::string binary = binary_bytes(multi_chunk_trace());
    const Trace sequential = read_trace_binary(binary, nullptr);
    par::ThreadPool pool(4);
    const Trace parallel = read_trace_binary(binary, &pool);
    expect_traces_equal(sequential, parallel);
}

TEST(TraceIoBinary, AutoDetectsFormatFromStream) {
    const Trace original = multi_chunk_trace();
    std::stringstream buffer;
    write_trace(buffer, original.instances, original.store,
                TraceFormat::Binary);
    const Trace decoded = read_trace(buffer);
    expect_traces_equal(decoded, original);
}

TEST(TraceIoBinary, RejectsBadMagicAndVersion) {
    std::string bytes = binary_bytes(multi_chunk_trace());
    {
        std::string bad = bytes;
        bad[3] = '9';  // "DST9"
        std::stringstream in(bad);
        // Without the DST1 magic the reader falls back to CSV — which
        // rejects the garbage as a malformed record, not a crash.
        EXPECT_THROW((void)read_trace(in), std::runtime_error);
    }
    {
        std::string bad = bytes;
        bad[4] = 0x7F;  // version word
        EXPECT_THROW((void)read_trace_binary(bad), std::runtime_error);
    }
}

TEST(TraceIoBinary, RejectsTruncation) {
    const std::string bytes = binary_bytes(multi_chunk_trace());
    // Chop at every interesting boundary: inside the header, inside the
    // instance table, inside a chunk header, inside a chunk payload, and
    // just before the final byte.
    for (const std::size_t keep :
         {std::size_t{3}, std::size_t{11}, std::size_t{30}, std::size_t{200},
          bytes.size() / 2, bytes.size() - 1}) {
        ASSERT_LT(keep, bytes.size());
        EXPECT_THROW((void)read_trace_binary(bytes.substr(0, keep)),
                     std::runtime_error)
            << "keep=" << keep;
    }
}

TEST(TraceIoBinary, RejectsTrailingGarbage) {
    std::string bytes = binary_bytes(multi_chunk_trace());
    bytes += "extra";
    EXPECT_THROW((void)read_trace_binary(bytes), std::runtime_error);
}

TEST(TraceIoBinary, RejectsBadVarint) {
    // Header declaring one instance, then an id varint that never
    // terminates (11 continuation bytes).
    std::string bytes(kTraceBinaryMagic, sizeof(kTraceBinaryMagic));
    const auto put_u32 = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            bytes += static_cast<char>((v >> (8 * i)) & 0xFF);
    };
    const auto put_u64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            bytes += static_cast<char>((v >> (8 * i)) & 0xFF);
    };
    put_u32(kTraceBinaryVersion);
    put_u64(1);  // instance_count
    put_u64(0);  // event_count
    bytes.append(11, static_cast<char>(0x80));
    EXPECT_THROW((void)read_trace_binary(bytes), std::runtime_error);
}

TEST(TraceIoBinary, RejectsCorruptChunkCounts) {
    const Trace original = multi_chunk_trace();
    std::string bytes = binary_bytes(original);
    // The first chunk header sits right after the instance table.  Find it
    // by re-encoding the instance table length: header is 24 bytes, then
    // instances; chunk count lives at a fixed offset we can recover by
    // scanning for the first chunk's u32 count == kTraceBinaryChunkEvents.
    const std::uint32_t expected =
        static_cast<std::uint32_t>(kTraceBinaryChunkEvents);
    std::size_t off = 24;
    while (off + 4 <= bytes.size()) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{static_cast<unsigned char>(bytes[off + i])}
                 << (8 * i);
        if (v == expected) break;
        ++off;
    }
    ASSERT_LT(off + 4, bytes.size());
    bytes[off] = static_cast<char>(0xFF);  // inflate the chunk event count
    EXPECT_THROW((void)read_trace_binary(bytes), std::runtime_error);
}

// --------------------------------------------------- columnar DST1 decode

/// The column decode must agree row-for-row with the AoS reader on the
/// same bytes: identical per-instance ranges, identical field values in
/// identical order.
void expect_columns_match_trace(const ColumnTrace& cols, const Trace& aos) {
    ASSERT_EQ(cols.instances.size(), aos.instances.size());
    for (std::size_t i = 0; i < cols.instances.size(); ++i)
        EXPECT_EQ(cols.instances[i], aos.instances[i]) << "instance " << i;
    ASSERT_EQ(cols.columns.total_events(), aos.store.total_events());
    const std::size_t slots =
        std::max(cols.columns.instance_slots(), aos.store.instance_slots());
    for (std::size_t id = 0; id < slots; ++id) {
        const auto events = aos.store.events(static_cast<InstanceId>(id));
        const ColumnRange range =
            cols.columns.range(static_cast<InstanceId>(id));
        ASSERT_EQ(range.size(), events.size()) << "instance " << id;
        for (std::size_t i = 0; i < events.size(); ++i) {
            const std::size_t row = range.begin + i;
            EXPECT_EQ(cols.columns.time_ns()[row], events[i].time_ns);
            EXPECT_EQ(cols.columns.position()[row], events[i].position);
            EXPECT_EQ(cols.columns.sizes()[row], events[i].size);
            EXPECT_EQ(cols.columns.op()[row],
                      static_cast<std::uint8_t>(events[i].op));
            EXPECT_EQ(cols.columns.thread()[row], events[i].thread);
        }
    }
}

TEST(TraceIoColumns, GroupedFastPathMatchesAoSReader) {
    // write_trace emits each instance as one contiguous ascending-seq
    // block, so this exercises the zero-copy grouping scan.
    ProfilingSession session;
    drive_session(session);
    session.stop();
    std::ostringstream out;
    write_trace(out, session, TraceFormat::Binary);
    const std::string bytes = std::move(out).str();

    expect_columns_match_trace(read_trace_columns(bytes),
                               read_trace_binary(bytes));
}

TEST(TraceIoColumns, InterleavedTraceTakesArgsortFallback) {
    // Our writers always group events by instance, so an interleaved
    // stream (what an external producer recording in capture order would
    // emit) must be hand-encoded.  Every event uses control byte 0 —
    // all fields explicit — which is valid, just uncompressed.
    std::string bytes(kTraceBinaryMagic, sizeof(kTraceBinaryMagic));
    const auto put_u32 = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            bytes += static_cast<char>((v >> (8 * i)) & 0xFF);
    };
    const auto put_u64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            bytes += static_cast<char>((v >> (8 * i)) & 0xFF);
    };
    const auto put_varint = [&](std::string& out, std::uint64_t v) {
        while (v >= 0x80) {
            out += static_cast<char>((v & 0x7F) | 0x80);
            v >>= 7;
        }
        out += static_cast<char>(v);
    };
    const auto put_delta = [&](std::string& out, std::uint64_t cur,
                               std::uint64_t prev) {
        const auto s = static_cast<std::int64_t>(cur - prev);
        put_varint(out, (static_cast<std::uint64_t>(s) << 1) ^
                            static_cast<std::uint64_t>(s >> 63));
    };
    const auto put_string = [&](const std::string& s) {
        put_varint(bytes, s.size());
        bytes += s;
    };

    constexpr std::uint32_t kEvents = 40;
    put_u32(kTraceBinaryVersion);
    put_u64(2);        // instance_count
    put_u64(kEvents);  // event_count
    for (InstanceId id = 0; id < 2; ++id) {
        put_varint(bytes, id);
        put_varint(bytes, static_cast<std::uint64_t>(DsKind::List));
        put_varint(bytes, 10 + id);  // location.position
        put_string("List<Int32>");
        put_string("Interleaved.Cls");
        put_string("m" + std::to_string(id));
        bytes += static_cast<char>(0);  // deallocated
    }

    std::string payload;
    AccessEvent prev;  // chunk baseline: all-zero fields, instance 0, op Get
    prev.instance = 0;
    prev.op = OpKind::Get;
    for (std::uint32_t i = 0; i < kEvents; ++i) {
        AccessEvent ev;
        ev.seq = i;
        ev.time_ns = 1000 + i * 3;
        ev.instance = i % 2;  // alternating: defeats the grouped fast path
        ev.op = (i % 3 == 0) ? OpKind::Add : OpKind::Get;
        ev.position = static_cast<std::int64_t>(i / 2) - 1;
        ev.size = i / 2;
        ev.thread = static_cast<ThreadId>(i % 3);
        payload += static_cast<char>(0);  // control: everything explicit
        put_delta(payload, ev.seq, prev.seq);
        put_delta(payload, ev.time_ns, prev.time_ns);
        put_delta(payload, ev.instance, prev.instance);
        payload += static_cast<char>(ev.op);
        put_delta(payload, static_cast<std::uint64_t>(ev.position),
                  static_cast<std::uint64_t>(prev.position));
        put_delta(payload, ev.size, prev.size);
        put_delta(payload, ev.thread, prev.thread);
        prev = ev;
    }
    put_u32(kEvents);
    put_u32(static_cast<std::uint32_t>(payload.size()));
    bytes += payload;

    const Trace aos = read_trace_binary(bytes);
    ASSERT_EQ(aos.store.events(0).size(), kEvents / 2);
    expect_columns_match_trace(read_trace_columns(bytes), aos);
}

TEST(TraceIoColumns, ParallelDecodeIsBitIdenticalToSequential) {
    const std::string bytes = binary_bytes(multi_chunk_trace());
    const ColumnTrace sequential = read_trace_columns(bytes);
    par::ThreadPool pool(4);
    const ColumnTrace parallel = read_trace_columns(bytes, &pool);
    ASSERT_EQ(parallel.columns.total_events(),
              sequential.columns.total_events());
    for (std::size_t i = 0; i < sequential.columns.total_events(); ++i)
        EXPECT_EQ(parallel.columns.row(i), sequential.columns.row(i));
}

TEST(TraceIoColumns, FileReadMatchesBufferRead) {
    const Trace original = multi_chunk_trace();
    const std::string path = ::testing::TempDir() + "/dsspy_cols.dst";
    std::ofstream out(path, std::ios::binary);
    write_trace_binary(out, original.instances, original.store);
    out.close();
    ASSERT_TRUE(is_binary_trace_file(path));

    const ColumnTrace mapped = read_trace_columns_file(path);
    expect_columns_match_trace(mapped, original);
    std::remove(path.c_str());
}

TEST(TraceIoColumns, IsBinaryTraceFileSniffs) {
    EXPECT_FALSE(is_binary_trace_file("/nonexistent/dsspy.dst"));
    const std::string path = ::testing::TempDir() + "/dsspy_not_dst.csv";
    std::ofstream(path) << "I,0,0,List<Int32>,C,M,1,0\n";
    EXPECT_FALSE(is_binary_trace_file(path));
    std::remove(path.c_str());
}

TEST(TraceIoColumns, RejectsTruncatedChunkHeader) {
    const Trace original = multi_chunk_trace();
    const std::string bytes = binary_bytes(original);
    // Locate the first chunk header (u32 count == kTraceBinaryChunkEvents)
    // and chop the file inside it.
    const std::uint32_t expected =
        static_cast<std::uint32_t>(kTraceBinaryChunkEvents);
    std::size_t off = 24;
    while (off + 4 <= bytes.size()) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{static_cast<unsigned char>(bytes[off + i])}
                 << (8 * i);
        if (v == expected) break;
        ++off;
    }
    ASSERT_LT(off + 4, bytes.size());
    try {
        (void)read_trace_columns(bytes.substr(0, off + 4));
        FAIL() << "truncated chunk header accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated chunk header"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceIoColumns, RejectsCorruptChunkCounts) {
    std::string bytes = binary_bytes(multi_chunk_trace());
    const std::uint32_t expected =
        static_cast<std::uint32_t>(kTraceBinaryChunkEvents);
    std::size_t off = 24;
    while (off + 4 <= bytes.size()) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{static_cast<unsigned char>(bytes[off + i])}
                 << (8 * i);
        if (v == expected) break;
        ++off;
    }
    ASSERT_LT(off + 4, bytes.size());
    bytes[off] = static_cast<char>(0xFF);  // inflate the chunk event count
    EXPECT_THROW((void)read_trace_columns(bytes), std::runtime_error);
}

TEST(TraceIoColumns, RejectsTruncationAtEveryBoundary) {
    const std::string bytes = binary_bytes(multi_chunk_trace());
    for (const std::size_t keep :
         {std::size_t{3}, std::size_t{11}, std::size_t{30}, std::size_t{200},
          bytes.size() / 2, bytes.size() - 1}) {
        ASSERT_LT(keep, bytes.size());
        EXPECT_THROW((void)read_trace_columns(bytes.substr(0, keep)),
                     std::runtime_error)
            << "keep=" << keep;
    }
}

TEST(TraceIoColumns, RejectsTrailingGarbage) {
    std::string bytes = binary_bytes(multi_chunk_trace());
    bytes += "extra";
    EXPECT_THROW((void)read_trace_columns(bytes), std::runtime_error);
}

TEST(TraceIoColumns, RejectsMisalignedRegion) {
    const std::string bytes = binary_bytes(multi_chunk_trace());
    // An mmapped region is page-aligned by construction; a buffer shifted
    // off 8-byte alignment simulates a broken mapping and must be refused
    // up front, not decoded at a skew.
    std::string padded = "x" + bytes;
    const std::string_view skewed(padded.data() + 1, bytes.size());
    ASSERT_NE(reinterpret_cast<std::uintptr_t>(skewed.data()) %
                  alignof(std::uint64_t),
              0u);
    try {
        (void)read_trace_columns(skewed);
        FAIL() << "misaligned region accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("misaligned mmap region"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceIoColumns, MissingFileThrows) {
    EXPECT_THROW((void)read_trace_columns_file("/nonexistent/dsspy.dst"),
                 std::runtime_error);
}

}  // namespace
}  // namespace dsspy::runtime
