// Tests for trace serialization: round trips, offline analysis, and
// malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "core/dsspy.hpp"
#include "ds/ds.hpp"
#include "runtime/trace_io.hpp"

namespace dsspy::runtime {
namespace {

/// Record a small but classification-rich session.
void drive_session(ProfilingSession& session) {
    ds::ProfiledList<std::string> list(
        &session, {"Trace.Test, with comma", "Run \"quoted\"", 3});
    for (int i = 0; i < 150; ++i)
        list.add("value," + std::to_string(i));
    for (std::size_t i = 0; i < list.count(); ++i) (void)list.get(i);

    ds::ProfiledDictionary<int, int> dict(&session, {"Trace.Test", "Aux", 9});
    dict.set(1, 2);
}

TEST(TraceIo, RoundTripPreservesEverything) {
    ProfilingSession session;
    drive_session(session);
    session.stop();

    std::stringstream buffer;
    const std::size_t written = write_trace(buffer, session);
    EXPECT_EQ(written, session.store().total_events());

    const Trace trace = read_trace(buffer);
    ASSERT_EQ(trace.instances.size(), session.registry().size());
    EXPECT_EQ(trace.store.total_events(), session.store().total_events());

    for (const InstanceInfo& original : session.registry().snapshot()) {
        const InstanceInfo& restored = trace.instances[original.id];
        EXPECT_EQ(restored.id, original.id);
        EXPECT_EQ(restored.kind, original.kind);
        EXPECT_EQ(restored.type_name, original.type_name);
        EXPECT_EQ(restored.location, original.location);
        EXPECT_EQ(restored.deallocated, original.deallocated);

        const auto orig_events = session.store().events(original.id);
        const auto rest_events = trace.store.events(original.id);
        ASSERT_EQ(orig_events.size(), rest_events.size());
        for (std::size_t i = 0; i < orig_events.size(); ++i)
            EXPECT_EQ(orig_events[i], rest_events[i]);
    }
}

TEST(TraceIo, OfflineAnalysisMatchesLiveAnalysis) {
    ProfilingSession session;
    drive_session(session);
    session.stop();

    const core::Dsspy analyzer;
    const auto live = analyzer.analyze(session);

    std::stringstream buffer;
    write_trace(buffer, session);
    const Trace trace = read_trace(buffer);
    const auto offline = analyzer.analyze(trace.instances, trace.store);

    EXPECT_EQ(live.total_instances(), offline.total_instances());
    EXPECT_EQ(live.list_array_instances(), offline.list_array_instances());
    EXPECT_EQ(live.flagged_instances(), offline.flagged_instances());
    EXPECT_EQ(live.use_case_counts(), offline.use_case_counts());
    ASSERT_EQ(live.instances().size(), offline.instances().size());
    for (std::size_t i = 0; i < live.instances().size(); ++i)
        EXPECT_EQ(live.instances()[i].patterns.size(),
                  offline.instances()[i].patterns.size());
}

TEST(TraceIo, EmptySessionRoundTrips) {
    ProfilingSession session;
    session.stop();
    std::stringstream buffer;
    EXPECT_EQ(write_trace(buffer, session), 0u);
    const Trace trace = read_trace(buffer);
    EXPECT_TRUE(trace.instances.empty());
    EXPECT_EQ(trace.store.total_events(), 0u);
}

TEST(TraceIo, FileRoundTrip) {
    ProfilingSession session;
    drive_session(session);
    session.stop();

    const std::string path = ::testing::TempDir() + "/dsspy_trace.csv";
    ASSERT_TRUE(write_trace_file(path, session));
    const Trace trace = read_trace_file(path);
    EXPECT_EQ(trace.store.total_events(), session.store().total_events());
    std::remove(path.c_str());
}

TEST(TraceIo, ReadMissingFileYieldsEmptyTrace) {
    const Trace trace = read_trace_file("/nonexistent/dsspy.csv");
    EXPECT_TRUE(trace.instances.empty());
    EXPECT_EQ(trace.store.total_events(), 0u);
}

TEST(TraceIo, RejectsUnknownRecordTag) {
    std::stringstream buffer("X,1,2,3\n");
    EXPECT_THROW(read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsWrongFieldCount) {
    std::stringstream buffer("E,1,2,3\n");
    EXPECT_THROW(read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsNonNumericField) {
    std::stringstream buffer("E,abc,2,0,1,0,1,0\n");
    EXPECT_THROW(read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfRangeEnums) {
    std::stringstream bad_op("E,1,2,0,250,0,1,0\n");
    EXPECT_THROW(read_trace(bad_op), std::runtime_error);
    std::stringstream bad_kind("I,0,99,List<Int32>,C,M,1,0\n");
    EXPECT_THROW(read_trace(bad_kind), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
    std::stringstream buffer(
        "I,0,0,List<Int32>,C,M,1,0\n\nE,1,10,0,2,0,1,0\n\n");
    const Trace trace = read_trace(buffer);
    EXPECT_EQ(trace.instances.size(), 1u);
    EXPECT_EQ(trace.store.total_events(), 1u);
}

TEST(TraceIo, HandlesQuotedFieldsWithCommasAndQuotes) {
    std::stringstream buffer(
        "I,0,0,\"List<Pair<A, B>>\",\"Cls \"\"X\"\"\",M,1,1\n");
    const Trace trace = read_trace(buffer);
    ASSERT_EQ(trace.instances.size(), 1u);
    EXPECT_EQ(trace.instances[0].type_name, "List<Pair<A, B>>");
    EXPECT_EQ(trace.instances[0].location.class_name, "Cls \"X\"");
    EXPECT_TRUE(trace.instances[0].deallocated);
}

}  // namespace
}  // namespace dsspy::runtime
