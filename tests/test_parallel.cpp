// Tests for the parallel runtime: pool, loops, algorithms, queue.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "parallel/algorithms.hpp"
#include "parallel/concurrent_queue.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/rng.hpp"

namespace dsspy::par {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ThreadCountDefaultsToHardware) {
    ThreadPool pool;
    EXPECT_GE(pool.thread_count(), 1u);
    ThreadPool pool3(3);
    EXPECT_EQ(pool3.thread_count(), 3u);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
    ThreadPool pool(2);
    std::atomic<bool> done{false};
    pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        done.store(true);
    });
    pool.wait_idle();
    EXPECT_TRUE(done.load());
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(10'000);
    parallel_for(pool, 0, hits.size(),
                 [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    parallel_for(pool, 5, 5, [&count](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0);
    parallel_for(pool, 5, 6, [&count](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForChunks, ChunksAreDisjointAndCoverRange) {
    ThreadPool pool(4);
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    parallel_for_chunks(pool, 10, 1010,
                        [&](std::size_t lo, std::size_t hi) {
                            std::scoped_lock lock(mutex);
                            chunks.emplace_back(lo, hi);
                        });
    std::sort(chunks.begin(), chunks.end());
    EXPECT_EQ(chunks.front().first, 10u);
    EXPECT_EQ(chunks.back().second, 1010u);
    for (std::size_t i = 1; i < chunks.size(); ++i)
        EXPECT_EQ(chunks[i - 1].second, chunks[i].first);
}

TEST(ParallelBuild, MatchesSequentialConstruction) {
    ThreadPool pool(4);
    const auto list = parallel_build<std::int64_t>(
        pool, 10'000, [](std::size_t i) {
            return static_cast<std::int64_t>(i * i % 9973);
        });
    ASSERT_EQ(list.count(), 10'000u);
    for (std::size_t i = 0; i < list.count(); ++i)
        EXPECT_EQ(list[i], static_cast<std::int64_t>(i * i % 9973));
}

TEST(ParallelBuild, ZeroElements) {
    ThreadPool pool(2);
    const auto list =
        parallel_build<int>(pool, 0, [](std::size_t) { return 1; });
    EXPECT_EQ(list.count(), 0u);
}

TEST(ParallelAppend, AppendsAfterExistingElements) {
    ThreadPool pool(4);
    ds::List<int> list;
    list.add(-1);
    list.add(-2);
    parallel_append(pool, list, 1000,
                    [](std::size_t i) { return static_cast<int>(i); });
    ASSERT_EQ(list.count(), 1002u);
    EXPECT_EQ(list[0], -1);
    EXPECT_EQ(list[1], -2);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(list[static_cast<std::size_t>(i) + 2], i);
}

TEST(ParallelFindIndex, FindsFirstMatch) {
    ThreadPool pool(4);
    std::vector<int> data(100'000, 0);
    data[70'000] = 1;
    data[90'000] = 1;
    const auto idx = parallel_find_index<int>(
        pool, data, [](int v) { return v == 1; });
    EXPECT_EQ(idx, 70'000);
}

TEST(ParallelFindIndex, ReturnsMinusOneWhenAbsent) {
    ThreadPool pool(4);
    std::vector<int> data(10'000, 0);
    EXPECT_EQ(parallel_index_of<int>(pool, data, 42), -1);
}

TEST(ParallelFindIndex, AgreesWithSequentialOnRandomData) {
    ThreadPool pool(4);
    support::Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::int64_t> data(5000);
        for (auto& v : data)
            v = static_cast<std::int64_t>(rng.next_below(300));
        const std::int64_t needle =
            static_cast<std::int64_t>(rng.next_below(300));
        const auto seq =
            std::find(data.begin(), data.end(), needle) - data.begin();
        const auto expected =
            seq == static_cast<std::ptrdiff_t>(data.size()) ? -1 : seq;
        EXPECT_EQ(parallel_index_of<std::int64_t>(pool, data, needle),
                  expected);
    }
}

TEST(ParallelReduce, SumsCorrectly) {
    ThreadPool pool(4);
    std::vector<std::int64_t> data(100'000);
    std::iota(data.begin(), data.end(), 0);
    const auto sum = parallel_reduce<std::int64_t, std::int64_t>(
        pool, data, 0, [](std::int64_t v) { return v; },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(sum, 100'000LL * 99'999 / 2);
}

TEST(ParallelMaxIndex, MatchesSequentialArgmaxIncludingTies) {
    ThreadPool pool(4);
    support::Rng rng(17);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<int> data(3000);
        for (auto& v : data) v = static_cast<int>(rng.next_below(50));
        std::size_t expected = 0;
        for (std::size_t i = 1; i < data.size(); ++i)
            if (data[expected] < data[i]) expected = i;
        EXPECT_EQ(parallel_max_index<int>(pool, data),
                  static_cast<std::ptrdiff_t>(expected));
    }
}

TEST(ParallelMaxIndex, EmptyReturnsMinusOne) {
    ThreadPool pool(2);
    EXPECT_EQ(parallel_max_index<int>(pool, {}), -1);
}

TEST(ParallelSort, SortsLargeRandomInput) {
    ThreadPool pool(4);
    support::Rng rng(31);
    std::vector<std::int64_t> data(200'000);
    for (auto& v : data) v = static_cast<std::int64_t>(rng.next());
    std::vector<std::int64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    parallel_sort<std::int64_t>(pool, data);
    EXPECT_EQ(data, expected);
}

TEST(ParallelSort, HandlesSmallAndEdgeInputs) {
    ThreadPool pool(4);
    std::vector<int> empty;
    parallel_sort<int>(pool, empty);
    std::vector<int> one{5};
    parallel_sort<int>(pool, one);
    EXPECT_EQ(one[0], 5);
    std::vector<int> sorted{1, 2, 3, 4};
    parallel_sort<int>(pool, sorted);
    EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4}));
    std::vector<int> reversed{4, 3, 2, 1};
    parallel_sort<int>(pool, reversed);
    EXPECT_EQ(reversed, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ParallelSort, CustomComparator) {
    ThreadPool pool(2);
    std::vector<int> data{1, 5, 3};
    parallel_sort<int>(pool, data, std::greater<int>{});
    EXPECT_EQ(data, (std::vector<int>{5, 3, 1}));
}

TEST(ConcurrentQueue, FifoSingleThread) {
    ConcurrentQueue<int> queue;
    queue.push(1);
    queue.push(2);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.try_pop().value(), 1);
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(ConcurrentQueue, CloseWakesConsumers) {
    ConcurrentQueue<int> queue;
    std::thread consumer([&queue] {
        const auto v = queue.pop();
        EXPECT_FALSE(v.has_value());  // closed and drained
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    consumer.join();
    EXPECT_TRUE(queue.closed());
}

TEST(ConcurrentQueue, MpmcDeliversEveryElementExactlyOnce) {
    ConcurrentQueue<std::uint64_t> queue;
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    constexpr std::uint64_t kPerProducer = 20'000;

    std::atomic<std::uint64_t> consumed_sum{0};
    std::atomic<std::uint64_t> consumed_count{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (const auto v = queue.pop()) {
                consumed_sum.fetch_add(*v);
                consumed_count.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i)
                queue.push(static_cast<std::uint64_t>(p) * kPerProducer + i);
        });
    }
    for (auto& t : producers) t.join();
    queue.close();
    for (auto& t : consumers) t.join();

    constexpr std::uint64_t kTotal = kProducers * kPerProducer;
    EXPECT_EQ(consumed_count.load(), kTotal);
    EXPECT_EQ(consumed_sum.load(), kTotal * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace dsspy::par
